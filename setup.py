"""Legacy setup shim.

All project metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517`` in environments without the ``wheel``
package (PEP 660 editable installs need it).
"""

from setuptools import setup

setup()
