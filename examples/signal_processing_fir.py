"""FIR filtering on a fixed-size linear systolic array.

Signal processing was the application domain that motivated the contraflow
arrays the paper builds on (Priester et al. 1981, reference /6/).  An FIR
filter of length ``taps`` applied to a signal of length ``N`` is the
matrix-vector product of a convolution matrix with the signal — a matrix
whose dimensions are set by the workload, not by the hardware.

A real array has a fixed number of cells.  This example filters signals of
several lengths, with several filter lengths, on one and the same 5-cell
array through the :class:`repro.Solver` façade, compares the utilization
with the naive block strategy (also a registered kind), and closes with a
*batch* of same-length signals: one cached plan, pairs of requests
interleaved on the idle contraflow cycles.

Run with:  python examples/signal_processing_fir.py
"""

from __future__ import annotations

import numpy as np

from repro import ArraySpec, Solver


def convolution_matrix(kernel: np.ndarray, signal_length: int) -> np.ndarray:
    """Dense matrix whose product with the signal is the 'valid' convolution."""
    taps = len(kernel)
    output_length = signal_length - taps + 1
    matrix = np.zeros((output_length, signal_length))
    for row in range(output_length):
        matrix[row, row : row + taps] = kernel[::-1]
    return matrix


def main() -> None:
    rng = np.random.default_rng(42)
    w = 5  # the array has five cells, full stop
    solver = Solver(ArraySpec(w=w))

    print(f"One {w}-cell linear contraflow array, many FIR filtering problems")
    print("-" * 76)
    print(f"{'signal':>8} {'taps':>6} {'outputs':>8} {'steps':>7} "
          f"{'DBT util':>9} {'naive util':>11} {'max error':>10}")

    workloads = [
        (24, 4),   # short burst, short filter
        (48, 8),   # medium
        (96, 8),   # long signal, same filter
        (96, 16),  # long signal, long filter
    ]
    for signal_length, taps in workloads:
        signal = rng.normal(size=signal_length)
        kernel = np.hamming(taps) / np.hamming(taps).sum()
        matrix = convolution_matrix(kernel, signal_length)

        solution = solver.solve("matvec", matrix, signal)
        reference = np.convolve(signal, kernel, mode="valid")
        error = float(np.max(np.abs(solution.values - reference)))

        baseline = solver.solve("naive_matvec", matrix, signal)
        print(
            f"{signal_length:>8} {taps:>6} {matrix.shape[0]:>8} "
            f"{solution.measured_steps:>7} {solution.measured_utilization:>9.3f} "
            f"{baseline.measured_utilization:>11.3f} {error:>10.2e}"
        )

    print("-" * 76)
    print("The DBT utilization approaches the paper's 1/2 limit as the signal")
    print("grows; the naive strategy needs a 9-cell array and stays far below it.")

    print()
    print("Overlapped execution (two half-signals interleaved on the idle cycles):")
    signal = rng.normal(size=96)
    kernel = np.hamming(8) / np.hamming(8).sum()
    matrix = convolution_matrix(kernel, 96)
    plain = solver.solve("matvec", matrix, signal)
    overlapped = solver.solve(
        "matvec", matrix, signal, options=solver.options.merged(overlapped=True)
    )
    reference = np.convolve(signal, kernel, mode="valid")
    assert np.allclose(overlapped.values, reference)
    print(
        f"  steps {overlapped.measured_steps} "
        f"(vs {plain.measured_steps} without overlapping), "
        f"utilization {overlapped.measured_utilization:.3f}"
    )

    print()
    print("Streaming batch: 6 same-length signals, one cached plan, paired runs:")
    signals = [rng.normal(size=96) for _ in range(6)]
    results = solver.solve_batch(
        "matvec", [(matrix, entry) for entry in signals]
    )
    for entry, result in zip(signals, results):
        assert np.allclose(result.values, np.convolve(entry, kernel, mode="valid"))
    paired = sum(1 for result in results if result.stats.get("paired"))
    print(
        f"  {paired}/{len(results)} requests ran pairwise-overlapped; "
        f"a paired run spans {results[0].measured_steps} steps vs "
        f"{2 * plain.measured_steps} for two sequential runs"
    )


if __name__ == "__main__":
    main()
