"""FIR filtering on a fixed-size linear systolic array.

Signal processing was the application domain that motivated the contraflow
arrays the paper builds on (Priester et al. 1981, reference /6/).  An FIR
filter of length ``taps`` applied to a signal of length ``N`` is the
matrix-vector product of an ``N x (N + taps - 1)``-ish convolution matrix
with the padded signal — a *dense-band* matrix whose dimensions are set by
the workload, not by the hardware.

A real array has a fixed number of cells.  This example filters signals of
several lengths, with several filter lengths, on one and the same 5-cell
array, using the DBT transformation to adapt every problem to the array,
and compares the utilization with what the naive block strategy achieves.

Run with:  python examples/signal_processing_fir.py
"""

from __future__ import annotations

import numpy as np

from repro import SizeIndependentMatVec
from repro.baselines import NaiveBlockMatVec


def convolution_matrix(kernel: np.ndarray, signal_length: int) -> np.ndarray:
    """Dense matrix whose product with the signal is the 'valid' convolution."""
    taps = len(kernel)
    output_length = signal_length - taps + 1
    matrix = np.zeros((output_length, signal_length))
    for row in range(output_length):
        matrix[row, row : row + taps] = kernel[::-1]
    return matrix


def main() -> None:
    rng = np.random.default_rng(42)
    w = 5  # the array has five cells, full stop
    array = SizeIndependentMatVec(w)
    naive = NaiveBlockMatVec(w)

    print(f"One {w}-cell linear contraflow array, many FIR filtering problems")
    print("-" * 76)
    print(f"{'signal':>8} {'taps':>6} {'outputs':>8} {'steps':>7} "
          f"{'DBT util':>9} {'naive util':>11} {'max error':>10}")

    workloads = [
        (24, 4),   # short burst, short filter
        (48, 8),   # medium
        (96, 8),   # long signal, same filter
        (96, 16),  # long signal, long filter
    ]
    for signal_length, taps in workloads:
        signal = rng.normal(size=signal_length)
        kernel = np.hamming(taps) / np.hamming(taps).sum()
        matrix = convolution_matrix(kernel, signal_length)

        solution = array.solve(matrix, signal)
        reference = np.convolve(signal, kernel, mode="valid")
        error = float(np.max(np.abs(solution.y - reference)))

        baseline = naive.solve(matrix, signal)
        print(
            f"{signal_length:>8} {taps:>6} {matrix.shape[0]:>8} "
            f"{solution.measured_steps:>7} {solution.measured_utilization:>9.3f} "
            f"{baseline.utilization:>11.3f} {error:>10.2e}"
        )

    print("-" * 76)
    print("The DBT utilization approaches the paper's 1/2 limit as the signal")
    print("grows; the naive strategy needs a 9-cell array and stays far below it.")

    print()
    print("Overlapped execution (two half-signals interleaved on the idle cycles):")
    signal = rng.normal(size=96)
    kernel = np.hamming(8) / np.hamming(8).sum()
    matrix = convolution_matrix(kernel, 96)
    overlapped = SizeIndependentMatVec(w, overlapped=True).solve(matrix, signal)
    reference = np.convolve(signal, kernel, mode="valid")
    assert np.allclose(overlapped.y, reference)
    print(
        f"  steps {overlapped.measured_steps} "
        f"(vs {array.solve(matrix, signal).measured_steps} without overlapping), "
        f"utilization {overlapped.measured_utilization:.3f}"
    )


if __name__ == "__main__":
    main()
