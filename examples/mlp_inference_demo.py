"""Quantized MLP inference: the paper's arrays as an NN accelerator.

The linear contraflow array the paper sizes for matrix-vector products is
the same datapath modern NN accelerators build on.  This example closes
that loop end to end:

1. build a small float MLP and calibrate an int8 deployment of it,
2. compile the whole quantized forward pass (quantize -> per layer
   dense/int32 -> dequantize -> bias -> relu -> requantize) into ONE
   plan-cached pipeline program,
3. compare the int8 logits against the float64 reference — and against
   the analytically derived quantization error bound,
4. serve the same graphs through a sharded :class:`repro.SolverService`
   and print the fleet telemetry (graph depth, per-kind stage counts).

Run with:  python examples/mlp_inference_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import ArraySpec, GraphCompiler, Solver, SolverService
from repro.nn import MLP

SIZES = (64, 48, 32, 10)
W = 4


def main() -> None:
    rng = np.random.default_rng(7)
    mlp = MLP(
        [
            (
                rng.normal(size=(fan_out, fan_in)) / np.sqrt(fan_in),
                rng.normal(size=fan_out) * 0.1,
            )
            for fan_in, fan_out in zip(SIZES, SIZES[1:])
        ]
    )
    calibration = [rng.normal(size=SIZES[0]) for _ in range(16)]
    qmlp = mlp.quantized(calibration)
    x = calibration[0]

    print(f"{len(SIZES) - 1}-layer MLP {SIZES} on a {W}-cell linear array")
    print(f"input scale {qmlp.input_params.scale:.5f}, weight scales "
          + ", ".join(f"{p.scale:.5f}" for p in qmlp.weight_params))
    print()

    # -- one compiled pipeline for the whole quantized forward pass -------
    solver = Solver(ArraySpec(w=W))
    compiler = GraphCompiler(solver)
    program = compiler.compile(qmlp.graph(x))
    print("compiled:", program.describe())
    cold = program.run()
    warm = program.run()
    print(f"cold run built {cold.compile_plan_builds} stage plans; "
          f"warm re-run built {warm.plan_builds + warm.compile_plan_builds} "
          f"(warm={warm.warm})")
    print()

    # -- int8 vs float64, against the analytic bound ----------------------
    float_logits = mlp.forward(x)
    int8_logits = warm.output("logits")
    bound = qmlp.error_bounds(x)["logits"]
    print("logit   float64      int8        |drift|    bound")
    for i, (f, q) in enumerate(zip(float_logits, int8_logits)):
        print(f"  {i:>2}  {f:>9.4f}  {q:>9.4f}  {abs(f - q):>9.5f}  "
              f"{bound[i]:>7.3f}")
    assert np.all(np.abs(float_logits - int8_logits) <= bound + 1e-9)
    print("every logit inside the quantization error bound")
    print()

    # -- the same graphs through the sharded serving layer ----------------
    with SolverService(ArraySpec(w=W), n_shards=2) as service:
        for x_client in calibration[:8]:
            served = service.solve_graph(qmlp.graph(x_client))
            direct = compiler.run(qmlp.graph(x_client))
            assert np.array_equal(
                served.output("logits"), direct.output("logits")
            )
        stats = service.stats()
    print("served 8 client inferences, bit-identical to direct execution")
    print()
    print(stats.describe())


if __name__ == "__main__":
    main()
