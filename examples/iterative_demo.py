"""Tour of the plan-cached iterative solver subsystem (`repro.iterative`).

Builds one diagonally dominant SPD system and solves it with every
iterative kind the registry serves — Jacobi, SOR (omega sweep), conjugate
gradient, LU-backed iterative refinement — then finds its dominant
eigenpair by power iteration.  Along the way it prints the part the
subsystem exists to demonstrate: each k-sweep solve compiles its plans
once and reports *zero* plan builds on every warm sweep, with ASCII
convergence curves from the recorded residual histories.

Run with:  python examples/iterative_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import ArraySpec, ConvergenceCriteria, ExecutionOptions, Solver


def spd_system(n: int, seed: int = 7) -> tuple[np.ndarray, np.ndarray]:
    """A seeded SPD, strictly diagonally dominant system ``A x = b``."""
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    matrix = (a + a.T) / 2.0
    matrix += (np.abs(matrix).sum(axis=1).max() + 1.0) * np.eye(n)
    return matrix, rng.normal(size=n)


def convergence_curve(history: list[float], width: int = 44) -> str:
    """Log-scale ASCII sparkline of a residual history."""
    if not history:
        return "(no sweeps)"
    logs = np.log10(np.maximum(np.asarray(history), 1e-300))
    lo, hi = float(logs.min()), float(logs.max())
    span = max(hi - lo, 1e-9)
    lines = []
    for k, value in enumerate(history, start=1):
        bar = "#" * max(1, int(round(width * (np.log10(max(value, 1e-300)) - lo) / span)))
        lines.append(f"      sweep {k:>3}  {value:10.3e}  {bar}")
    return "\n".join(lines)


def main() -> None:
    w, n = 4, 24
    matrix, b = spd_system(n)
    exact = np.linalg.solve(matrix, b)
    solver = Solver(ArraySpec(w=w))

    print(f"SPD diagonally dominant system, n={n}, array size w={w}")
    print(f"iterative kinds registered: "
          f"{', '.join(k for k in solver.kinds() if k in ('jacobi', 'sor', 'cg', 'refine', 'power'))}")
    print("=" * 72)

    for kind, options in (
        ("jacobi", None),
        ("sor", ExecutionOptions(sor_omega=1.4)),
        ("cg", None),
        ("refine", None),
    ):
        label = kind if options is None else f"{kind} (omega={options.sor_omega})"
        solution = solver.solve(kind, matrix, b, options=options)
        result = solution.raw
        print(f"\n[{label}] {'converged' if result.converged else 'did not converge'} "
              f"in {result.iterations} sweep(s), "
              f"max |error| vs direct solve: {np.max(np.abs(solution.values - exact)):.2e}")
        print(f"    plan builds: {result.plan_builds_first_sweep} on the first sweep, "
              f"{result.plan_builds_warm_sweeps} on all warm sweeps; "
              f"inner cache {result.cache.hits} hits / {result.cache.misses} misses")
        shown = result.residual_history[:8]
        print(convergence_curve(shown))
        if len(result.residual_history) > len(shown):
            print(f"      ... {len(result.residual_history) - len(shown)} more sweeps "
                  f"down to {result.residual_norm:.3e}")

    print("\n[power] dominant eigenpair of the same matrix")
    power = solver.solve(
        "power",
        matrix,
        options=ExecutionOptions(
            criteria=ConvergenceCriteria(atol=1e-9, rtol=1e-9, max_iter=5000)
        ),
    )
    top = float(np.max(np.abs(np.linalg.eigvalsh(matrix))))
    print(f"    lambda_max = {power.stats['eigenvalue']:.8f} "
          f"(numpy says {top:.8f}) after {power.stats['iterations']} sweeps")

    print("\nwarm reuse across jobs: solving the same shape again...")
    again = solver.solve("jacobi", matrix, np.roll(b, 1))
    print(f"    from_cache={again.from_cache}, plan builds on any sweep: "
          f"{again.stats['plan_builds_first_sweep'] + again.stats['plan_builds_warm_sweeps']}")
    print(f"\nfacade plan cache after the tour: {solver.cache_stats}")


if __name__ == "__main__":
    main()
