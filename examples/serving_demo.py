"""Serving demo: 200 mixed concurrent requests through ``SolverService``.

The :mod:`repro.service` layer multiplexes many concurrent callers onto
the cached-plan machinery:

* requests are routed to shards by plan key — every distinct
  ``(kind, shapes, w, options)`` compiles once, on its home shard, and
  stays hot in that shard's private plan cache;
* an admission batcher lingers a couple of milliseconds so same-plan
  requests flush together through ``solve_batch`` (matvec pairs ride the
  paper's overlapped contraflow execution automatically);
* bounded per-shard queues give backpressure (here: the ``block``
  policy — no request is ever dropped);
* everything is observable through one ``ServiceStats`` snapshot.

This script drives 200 mixed requests (three matvec shapes, a matmul
shape, a triangular solve) from 8 client threads, verifies every result
against direct ``Solver`` execution, and prints the stats snapshot.

Run with:  PYTHONPATH=src python examples/serving_demo.py
"""

from __future__ import annotations

import threading

import numpy as np

from repro import ArraySpec, Solver, SolverService

N_REQUESTS = 200
N_CLIENTS = 8
N_SHARDS = 4
W = 4


def main() -> None:
    rng = np.random.default_rng(1986)

    # A fixed pool of problems so results can be verified bit-for-bit.
    lower = np.tril(rng.normal(size=(12, 12))) + 6.0 * np.eye(12)
    pool = [
        ("matvec", (rng.normal(size=(48, 48)), rng.normal(size=48)), {}),
        ("matvec", (rng.normal(size=(32, 32)), rng.normal(size=32)), {}),
        ("matvec", (rng.normal(size=(48, 32)), rng.normal(size=32)), {}),
        ("matmul", (rng.normal(size=(9, 9)), rng.normal(size=(9, 9))), {}),
        ("triangular", (lower, rng.normal(size=12)), {"lower": True}),
    ]
    reference = Solver(ArraySpec(W))
    expected = [
        reference.solve(kind, *operands, **kwargs).values
        for kind, operands, kwargs in pool
    ]

    print("=" * 72)
    print(
        f"{N_REQUESTS} mixed requests, {N_CLIENTS} client threads, "
        f"{N_SHARDS} shards, w={W}"
    )
    print("=" * 72)

    service = SolverService(
        ArraySpec(W),
        n_shards=N_SHARDS,
        backpressure="block",
        queue_depth=64,
        max_batch_size=16,
        max_batch_delay=0.002,
    )

    futures: "list[tuple[int, object]]" = []
    futures_lock = threading.Lock()

    def client(client_id: int) -> None:
        for i in range(N_REQUESTS // N_CLIENTS):
            index = (client_id + i) % len(pool)
            kind, operands, kwargs = pool[index]
            future = service.submit(kind, *operands, **kwargs)
            with futures_lock:
                futures.append((index, future))

    threads = [
        threading.Thread(target=client, args=(client_id,))
        for client_id in range(N_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    mismatches = 0
    for index, future in futures:
        solution = future.result(timeout=60)
        if not np.array_equal(solution.values, expected[index]):
            mismatches += 1
    print(f"completed {len(futures)} requests, {mismatches} mismatches "
          f"vs direct Solver execution")
    assert mismatches == 0

    print()
    print(service.stats().describe())
    service.close()
    print()
    print("service closed; every future resolved.")


if __name__ == "__main__":
    main()
