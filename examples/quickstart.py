"""Quickstart: size-independent matrix problems on a fixed-size systolic array.

This script shows the two public pipelines of the library on small dense
problems whose dimensions have nothing to do with the array size:

* ``y = A x + b`` on the w-cell linear contraflow array, and
* ``C = A B + E`` on the w x w hexagonal array,

both transformed with the paper's DBT scheme so that every partial result
is fed back into the array and nothing is computed on the host.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import SizeIndependentMatMul, SizeIndependentMatVec


def main() -> None:
    rng = np.random.default_rng(7)
    w = 4  # the (fixed) systolic array size

    print("=" * 72)
    print("Matrix-vector multiplication: y = A x + b on a 4-cell linear array")
    print("=" * 72)
    # The problem is 10 x 7 — neither dimension is a multiple of w.
    a = rng.normal(size=(10, 7))
    x = rng.normal(size=7)
    b = rng.normal(size=10)

    solver = SizeIndependentMatVec(w)
    solution = solver.solve(a, x, b)
    assert np.allclose(solution.y, a @ x + b)

    print(solution.summary())
    print(f"  max |error| vs NumPy: {np.max(np.abs(solution.y - (a @ x + b))):.2e}")
    print()

    print("=" * 72)
    print("The same problem with overlapping (two halves share the idle cycles)")
    print("=" * 72)
    overlapped = SizeIndependentMatVec(w, overlapped=True).solve(a, x, b)
    assert np.allclose(overlapped.y, a @ x + b)
    print(overlapped.summary())
    print()

    print("=" * 72)
    print("Matrix-matrix multiplication: C = A B + E on a 4x4 hexagonal array")
    print("=" * 72)
    a2 = rng.normal(size=(6, 9))
    b2 = rng.normal(size=(9, 5))
    e2 = rng.normal(size=(6, 5))

    matmul = SizeIndependentMatMul(w)
    product = matmul.solve(a2, b2, e2)
    assert np.allclose(product.c, a2 @ b2 + e2)
    print(product.summary())
    print(f"  max |error| vs NumPy: {np.max(np.abs(product.c - (a2 @ b2 + e2))):.2e}")


if __name__ == "__main__":
    main()
