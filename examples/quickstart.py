"""Quickstart: the unified plan/execute solver façade.

This script shows the ``repro.api`` front door on small dense problems
whose dimensions have nothing to do with the array size:

* ``y = A x + b`` on the w-cell linear contraflow array,
* the same problem with the paper's overlapping optimization,
* ``C = A B + E`` on the w x w hexagonal array,

all through one :class:`repro.Solver`, with the plan cache turning the
second same-shape solve into a values-only execution.

Requests are typed problem objects (``solver.solve(MatVec(a, x, b))``).
The string spelling ``solver.solve("matvec", a, x, b)`` used below for
the later sections keeps working — it is a thin shim that builds the
equivalent typed problem, with bit-identical results and plan keys — and
multi-stage workloads compose typed problems into pipeline graphs (see
``examples/pipeline_demo.py``).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ArraySpec, MatMul, MatVec, Solver


def main() -> None:
    rng = np.random.default_rng(7)
    solver = Solver(ArraySpec(w=4))  # the (fixed) systolic array size

    print("=" * 72)
    print("Matrix-vector multiplication: y = A x + b on a 4-cell linear array")
    print("=" * 72)
    # The problem is 10 x 7 — neither dimension is a multiple of w.
    a = rng.normal(size=(10, 7))
    x = rng.normal(size=7)
    b = rng.normal(size=10)

    solution = solver.solve(MatVec(a, x, b))
    assert np.allclose(solution.values, a @ x + b)
    print(solution.summary())
    print(f"  max |error| vs NumPy: {np.max(np.abs(solution.values - (a @ x + b))):.2e}")
    print()

    print("=" * 72)
    print("Same shape again: the cached plan skips all transform construction")
    print("=" * 72)
    again = solver.solve("matvec", rng.normal(size=(10, 7)), rng.normal(size=7))
    assert again.from_cache
    print(again.summary())
    print(f"  plan cache: {solver.cache_stats}")
    print()

    print("=" * 72)
    print("The same problem with overlapping (two halves share the idle cycles)")
    print("=" * 72)
    overlapped = solver.solve(
        "matvec", a, x, b, options=solver.options.merged(overlapped=True)
    )
    assert np.allclose(overlapped.values, a @ x + b)
    print(overlapped.summary())
    print()

    print("=" * 72)
    print("Matrix-matrix multiplication: C = A B + E on a 4x4 hexagonal array")
    print("=" * 72)
    a2 = rng.normal(size=(6, 9))
    b2 = rng.normal(size=(9, 5))
    e2 = rng.normal(size=(6, 5))

    product = solver.solve(MatMul(a2, b2, e2))
    assert np.allclose(product.values, a2 @ b2 + e2)
    print(product.summary())
    print(f"  max |error| vs NumPy: {np.max(np.abs(product.values - (a2 @ b2 + e2))):.2e}")
    print()

    print("=" * 72)
    print("Batching: pairs of requests interleave on the idle contraflow cycles")
    print("=" * 72)
    batch = [(rng.normal(size=(10, 7)), rng.normal(size=7)) for _ in range(4)]
    results = solver.solve_batch("matvec", batch)
    for (matrix, vector), result in zip(batch, results):
        assert np.allclose(result.values, matrix @ vector)
    pair_steps = results[0].measured_steps
    solo_steps = solver.solve("matvec", *batch[0]).measured_steps
    print(f"  4 requests, one cached plan; a paired run takes {pair_steps} steps")
    print(f"  where two sequential runs would take {2 * solo_steps}.")
    print(f"  every kind available through this façade: {', '.join(solver.kinds())}")
    print()

    print("=" * 72)
    print("Execution backends: vectorized sweeps by default, simulator on demand")
    print("=" * 72)
    # backend="auto" (the default) runs the NumPy diagonal-sweep engine;
    # the register-level simulator produces bit-identical values.
    fast = solver.solve("matvec", a, x, b)
    slow = solver.solve(
        "matvec", a, x, b, options=solver.options.merged(backend="simulate")
    )
    assert np.array_equal(fast.values, slow.values)
    assert fast.measured_steps == slow.measured_steps
    print("  vectorized and simulated solves agree bit-for-bit")
    print("  (request record_trace=True or backend='simulate' for cycle-level detail)")


if __name__ == "__main__":
    main()
