"""Print text renderings of every figure of the paper.

Each section below regenerates the structural content of one figure from
the implementation (see ``repro.analysis.figures``); the benchmark suite
checks the same content with assertions, this script just shows it.

Run with:  python examples/figure_gallery.py
"""

from __future__ import annotations

from repro.analysis import (
    render_fig1_block_structure,
    render_fig2_concrete_case,
    render_fig3_dataflow,
    render_fig4_matmul_blocks,
    render_fig5_spiral_topology,
    render_fig6_recovery_map,
)


def banner(title: str) -> None:
    print()
    print("#" * 78)
    print(f"# {title}")
    print("#" * 78)


def main() -> None:
    banner("Fig. 1 — block structure of the transformed matrix-vector problem")
    print(render_fig1_block_structure(n_bar=2, m_bar=3, w=3))

    banner("Fig. 2 — the concrete case n=6, m=9, w=3 and its overlap partition")
    print(render_fig2_concrete_case(n=6, m=9, w=3))

    banner("Fig. 3 — input/output data flow of the linear array (39 cycles)")
    print(render_fig3_dataflow(n=6, m=9, w=3))

    banner("Fig. 4 — block structure of the transformed matrix-matrix operands")
    print(render_fig4_matmul_blocks(n_bar=2, p_bar=2, m_bar=3, w=3))

    banner("Fig. 5 — spiral feedback topology of the hexagonal array (w=3)")
    print(render_fig5_spiral_topology(w=3))

    banner("Fig. 6 / appendix — output-band recovery map")
    print(render_fig6_recovery_map(n_bar=2, p_bar=2, m_bar=2, w=3))


if __name__ == "__main__":
    main()
