"""Solving a discretized heat-conduction system with the Section 4 applications.

The paper closes by listing the problems the same methodology handles:
triangular systems, the Gauss-Seidel iteration, LU decomposition and
inverses.  This example builds the classic 1-D steady-state heat equation
(a diagonally dominant tridiagonal-plus-coupling system), solves it three
ways through one :class:`repro.Solver` on a single 3-cell / 3x3-cell
array pair —

* Gauss-Seidel iteration (matrix-vector products on the linear array),
* blocked LU factorization followed by triangular solves (trailing updates
  on the hexagonal array), and
* explicit inversion (for the sake of exercising the inverse path),

— and compares all of them against NumPy's direct solver.

Run with:  python examples/iterative_solver.py
"""

from __future__ import annotations

import numpy as np

from repro import ArraySpec, ExecutionOptions, Solver
from repro.extensions import SystolicLU


def heat_system(points: int, conductivity: float = 1.0) -> tuple[np.ndarray, np.ndarray]:
    """Finite-difference system for a heated rod with fixed end temperatures."""
    matrix = np.zeros((points, points))
    rhs = np.zeros(points)
    for i in range(points):
        matrix[i, i] = 2.0 * conductivity + 0.05  # slight diagonal boost
        if i > 0:
            matrix[i, i - 1] = -conductivity
        if i < points - 1:
            matrix[i, i + 1] = -conductivity
    rhs[0] = 100.0 * conductivity      # hot end
    rhs[-1] = 25.0 * conductivity      # cool end
    rhs += 0.5                         # uniform internal heating
    return matrix, rhs


def main() -> None:
    w = 3
    points = 12
    matrix, rhs = heat_system(points)
    exact = np.linalg.solve(matrix, rhs)
    solver = Solver(ArraySpec(w=w))

    print(f"1-D heat equation with {points} interior points, array size w={w}")
    print("=" * 70)

    print("\n[1] Gauss-Seidel iteration (products on the linear array)")
    gs = solver.solve(
        "gauss_seidel",
        matrix,
        rhs,
        options=ExecutionOptions(gs_tolerance=1e-10, gs_max_iterations=500),
    )
    print(f"    converged: {gs.stats['converged']} after {gs.stats['iterations']} sweeps")
    print(f"    final residual: {gs.stats['residual_norm']:.2e}")
    print(f"    array steps spent: {gs.measured_steps}")
    print(f"    max |error| vs direct solve: {np.max(np.abs(gs.values - exact)):.2e}")

    print("\n[2] Blocked LU + triangular solves (updates on the hexagonal array)")
    factorization = solver.solve("lu", matrix)
    lower, upper = factorization.values
    print(f"    ||A - L U|| = {factorization.stats['residual_norm']:.2e}")
    print(f"    trailing updates on the array: {factorization.stats['update_calls']}, "
          f"array share of arithmetic: {factorization.stats['array_share']:.2f}")
    forward = solver.solve("triangular", lower, rhs, lower=True)
    backward = solver.solve("triangular", upper, forward.values, lower=False)
    print(f"    max |error| vs direct solve: {np.max(np.abs(backward.values - exact)):.2e}")

    print("\n[3] Explicit inverse (LU + triangular inverses + one matrix product)")
    inverse = SystolicLU(w).invert(matrix)
    solution = inverse.inverse @ rhs
    print(f"    ||A^-1 A - I|| = {np.linalg.norm(inverse.inverse @ matrix - np.eye(points)):.2e}")
    print(f"    array share of arithmetic: {inverse.array_share:.2f}")
    print(f"    max |error| vs direct solve: {np.max(np.abs(solution - exact)):.2e}")

    print(f"\nplan cache after the three strategies: {solver.cache_stats}")
    print("\nTemperature profile (direct solve):")
    bar_scale = 40.0 / exact.max()
    for i, temperature in enumerate(exact):
        bar = "#" * int(round(temperature * bar_scale))
        print(f"    x={i:>2}  {temperature:8.2f}  {bar}")


if __name__ == "__main__":
    main()
