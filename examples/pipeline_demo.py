"""Pipeline demo: a chained matmul → matvec → refine graph, end to end.

The :mod:`repro.graph` layer replaces one-problem-at-a-time string calls
with typed problems composed into a lazy expression DAG:

* ``MatMul(A, B) @ x`` builds the chain ``y = (A B) x`` without running
  anything — operands that are problems become stage references;
* ``Refine(M, y)`` chains an iterative-refinement solve onto the
  projected vector;
* ``GraphCompiler`` validates the DAG (cycles, cross-stage shapes) and
  lowers it onto the solver's cached ``ExecutionPlan`` machinery: the
  program compiles once, and warm re-executions build **zero** plans;
* ``fuse=True`` applies the associativity rewrite ``(A B) x -> A (B x)``,
  replacing the O(n^3) matmul stage with a second O(n^2) matvec;
* the same graph submits as a single unit to ``SolverService``, landing
  on the one shard that holds all of its stage plans warm.

Every result is verified against plain numpy.

Run with:  PYTHONPATH=src python examples/pipeline_demo.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    ArraySpec,
    ExecutionOptions,
    Graph,
    GraphCompiler,
    MatMul,
    MatVec,
    Refine,
    Solver,
    SolverService,
)
from repro.iterative import ConvergenceCriteria

N = 48
W = 4


def main() -> None:
    rng = np.random.default_rng(1986)
    a = rng.normal(size=(N, N))
    b = rng.normal(size=(N, N))
    x = rng.normal(size=N)
    matrix = rng.normal(size=(N, N)) + N * np.eye(N)
    rhs_options = ExecutionOptions(
        criteria=ConvergenceCriteria(atol=1e-12, max_iter=10)
    )

    # -- build the DAG: matmul -> matvec -> refine ----------------------------
    #
    #      A ----\
    #             [product: matmul] ---\
    #      B ----/                      [projected: matvec] --\
    #      x --------------------------/                       |
    #                                                          v
    #      M -----------------------------------> [refined: refine]
    #
    projected = MatVec(MatMul(a, b, name="product"), x, name="projected")
    refined = Refine(matrix, projected, name="refined")
    graph = Graph(refined)
    print(graph.describe())
    print()

    # -- compile once, run twice: the second run is all-warm ------------------
    solver = Solver(ArraySpec(W), options=rhs_options)
    compiler = GraphCompiler(solver)
    program = compiler.compile(graph)
    print(program.describe())
    print()

    cold = program.run()
    warm = program.run()
    print(f"cold run:  {cold.total_seconds * 1e3:7.2f} ms, "
          f"{cold.compile_plan_builds + cold.plan_builds} plan build(s)")
    print(f"warm run:  {warm.total_seconds * 1e3:7.2f} ms, "
          f"{warm.plan_builds} plan build(s)  (warm={warm.warm})")
    expected = np.linalg.solve(matrix, a @ b @ x)
    assert np.allclose(warm.output("refined"), expected, atol=1e-8)
    print("verified:  refined output matches numpy.linalg.solve")
    print()
    print(warm.describe())
    print()

    # -- fuse: (A B) x  ->  A (B x), no O(n^3) stage --------------------------
    fused_program = GraphCompiler(solver, fuse=True).compile(graph)
    fused_program.run()  # warm the rewritten matvec plans
    start = time.perf_counter()
    fused = fused_program.run()
    fused_seconds = time.perf_counter() - start
    assert np.allclose(fused.output("refined"), expected, atol=1e-8)
    print(f"fused run: {fused_seconds * 1e3:7.2f} ms with "
          f"{fused.fused_rewrites} matmul->matvec rewrite(s) "
          f"(vs {warm.total_seconds * 1e3:.2f} ms unfused)")
    print()

    # -- the same graph through the serving layer -----------------------------
    with SolverService(ArraySpec(W), n_shards=4, options=rhs_options) as service:
        first = service.solve_graph(graph)
        again = service.solve_graph(graph)
        assert np.allclose(again.output("refined"), expected, atol=1e-8)
        assert again.warm, "re-submitted graph must hit its home shard warm"
        stats = service.stats()
    print(f"service:   2 submissions, warm re-submission built "
          f"{again.compile_plan_builds + again.plan_builds} plan(s)")
    print(stats.describe())


if __name__ == "__main__":
    main()
