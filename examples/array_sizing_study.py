"""Design-space study: picking an array size for a mixed workload.

The situation the paper opens with is an installed array of fixed size that
has to serve "several similar problems with dimensional variations".  This
example takes a small mixed workload of dense matrix-vector products and
sweeps the array size ``w`` — one :class:`repro.Solver` per candidate —
reporting for every candidate:

* the total number of array steps across the workload,
* the average PE utilization (with and without overlapping), and
* the number of cells the hardware would need,

which is exactly the trade-off a designer would read off the paper's
formulas — here measured on the cycle-accurate simulator instead.

Run with:  python examples/array_sizing_study.py
"""

from __future__ import annotations

import numpy as np

from repro import ArraySpec, Solver, matvec_steps, matvec_utilization
from repro.matrices.padding import block_count


def main() -> None:
    rng = np.random.default_rng(11)
    workload = [
        rng.normal(size=(12, 18)),
        rng.normal(size=(7, 25)),
        rng.normal(size=(30, 9)),
        rng.normal(size=(16, 16)),
    ]
    vectors = [rng.normal(size=matrix.shape[1]) for matrix in workload]

    print("Workload:", ", ".join(str(m.shape) for m in workload))
    print()
    header = (
        f"{'w':>3} {'cells':>6} {'total steps':>12} {'overlapped':>11} "
        f"{'avg util':>9} {'avg util (ovl)':>15} {'padding waste':>14}"
    )
    print(header)
    print("-" * len(header))

    for w in (2, 3, 4, 5, 6, 8):
        solver = Solver(ArraySpec(w=w))
        plain_steps = 0
        overlapped_steps = 0
        utilizations = []
        overlapped_utilizations = []
        padded_elements = 0
        original_elements = 0
        for matrix, x in zip(workload, vectors):
            solution = solver.solve("matvec", matrix, x)
            assert np.allclose(solution.values, matrix @ x)
            plain_steps += solution.measured_steps
            utilizations.append(solution.measured_utilization)

            n_bar = block_count(matrix.shape[0], w)
            if n_bar >= 2:
                overlapped = solver.solve(
                    "matvec", matrix, x, options=solver.options.merged(overlapped=True)
                )
                overlapped_steps += overlapped.measured_steps
                overlapped_utilizations.append(overlapped.measured_utilization)
            else:
                overlapped_steps += solution.measured_steps
                overlapped_utilizations.append(solution.measured_utilization)

            m_bar = block_count(matrix.shape[1], w)
            padded_elements += n_bar * m_bar * w * w
            original_elements += matrix.size

        waste = 1.0 - original_elements / padded_elements
        print(
            f"{w:>3} {w:>6} {plain_steps:>12} {overlapped_steps:>11} "
            f"{np.mean(utilizations):>9.3f} {np.mean(overlapped_utilizations):>15.3f} "
            f"{waste:>13.1%}"
        )

    print()
    print("Reading the table: larger arrays finish the workload in fewer steps but")
    print("pay for it twice — more cells, and more zero padding when the problem")
    print("dimensions do not divide by w.  The utilization column is what the")
    print("paper's eta formula predicts; for example, for the 16x16 problem on w=4:")
    n_bar = m_bar = 4
    print(
        f"  predicted T = {matvec_steps(n_bar, m_bar, 4)}, "
        f"predicted eta = {matvec_utilization(n_bar, m_bar, 4):.3f}"
    )


if __name__ == "__main__":
    main()
