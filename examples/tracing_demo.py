"""Tracing demo: a traced mixed load, exported as Chrome trace JSON.

Construct ``SolverService`` with an enabled :class:`repro.obs.Tracer`
and every request produces one span tree: the root covers submit →
resolution, children mark admission wait, queue wait, batch assembly,
plan lookup (hit/miss), execution — and, for a pipelined graph, the
per-shard segment executions joined by handoff-lane transits with flow
arrows between the shard tracks.

This script serves a mixed load from client threads — plain matvec /
matmul requests plus a two-branch diamond graph whose branches are
pinned to distinct shards — then:

* prints the plain-text span tree of the last diamond request,
* prints the fleet stats (now with p99 latency columns),
* writes every trace to ``trace.json`` — load it at
  https://ui.perfetto.dev or ``chrome://tracing`` to see one track per
  shard worker and the handoff arrows crossing them.

Run with:  PYTHONPATH=src python examples/tracing_demo.py
"""

from __future__ import annotations

import threading

import numpy as np

from repro import ArraySpec, SolverService
from repro.api import ExecutionOptions
from repro.graph import Graph, Jacobi, MatVec
from repro.iterative import ConvergenceCriteria
from repro.nn import Bias, Relu
from repro.obs import Tracer

W = 4
N = 32
N_CLIENTS = 4
ROUNDS = 5


def diamond(rng) -> Graph:
    """Relu source feeding two balanced branches joined by an add."""
    a = rng.normal(size=(N, N))
    spread = rng.normal(size=(N, N))
    m = (spread + spread.T) / 2.0
    m += (np.abs(m).sum(axis=1).max() + 1.0) * np.eye(N)
    x = rng.normal(size=N)
    src = Relu(x, name="src")
    left = MatVec(a, src, name="left")
    right = Jacobi(
        m,
        src,
        criteria=ConvergenceCriteria(atol=1e-30, max_iter=1),
        name="right",
    )
    return Graph(Bias(left, right, name="join"))


def main() -> None:
    rng = np.random.default_rng(1986)
    graph = diamond(rng)
    a, x = rng.normal(size=(16, 16)), rng.normal(size=16)
    b, c = rng.normal(size=(9, 9)), rng.normal(size=(9, 9))

    tracer = Tracer()
    with SolverService(ArraySpec(W), n_shards=2, tracer=tracer) as service:
        # Pin the diamond's branches to distinct shards so every request
        # pipelines across both tracks (their hash placement may collide).
        keys = graph.plan_keys(W, ExecutionOptions())
        service.placement.assign(keys[graph.names.index("left")], 0)
        service.placement.assign(keys[graph.names.index("right")], 1)

        def client() -> None:
            for _ in range(ROUNDS):
                service.solve("matvec", a, x)
                service.solve_graph(graph)
                service.solve("matmul", b, c)

        threads = [
            threading.Thread(target=client) for _ in range(N_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = service.stats()

    print("=" * 72)
    print("span tree of the last pipelined diamond request")
    print("=" * 72)
    graph_traces = [
        span.trace_id
        for span in tracer.spans()
        if span.parent_id is None and span.name == "request graph"
    ]
    print(tracer.describe_trace(graph_traces[-1]))

    print()
    print("=" * 72)
    print("fleet stats")
    print("=" * 72)
    print(stats.describe())

    tracer.write_chrome_trace("trace.json")
    requests = N_CLIENTS * ROUNDS * 3
    print()
    print(
        f"wrote trace.json: {len(tracer.spans())} spans across "
        f"{len(tracer.trace_ids())} traces ({requests} requests; "
        f"open spans: {tracer.open_spans}) — load it in Perfetto or "
        f"chrome://tracing"
    )
    if tracer.open_spans:
        raise SystemExit("orphaned open spans — tracing bug")


if __name__ == "__main__":
    main()
