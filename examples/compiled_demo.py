"""The compiled backend: ahead-of-time kernels plus epilogue fusion.

The ``compiled`` backend lowers each cached plan's geometry into one
fused strided-view kernel (optionally Numba-jitted when Numba is
installed) and collapses NN head→epilogue chains — here the classic
``dense -> bias -> relu`` — into single fused pipeline stages.  The
values stay bit-identical to the cycle-accurate simulator; only the
wall clock changes.  This example shows all three layers:

1. solve one mat-vec on every backend and check bit-identity,
2. compile an n=512 MLP layer under ``vectorized`` (three stages) and
   ``compiled`` (one fused stage) and compare the programs,
3. time warm re-runs of both programs and report the speedup.

Run with:  python examples/compiled_demo.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import ArraySpec, ExecutionOptions, GraphCompiler, Solver
from repro.compiled import numba_enabled
from repro.graph import Graph
from repro.nn import Bias, Dense, Relu

N = 512
W = 8
REPS = 5


def _layer(weights: np.ndarray, x: np.ndarray, b: np.ndarray) -> Graph:
    dense = Dense(weights, x, name="dense")
    return Graph(y=Relu(Bias(dense, b, name="biased"), name="act"))


def _warm_seconds(program, repeats: int = REPS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        program.run()
        best = min(best, time.perf_counter() - start)
    return best


def main() -> None:
    rng = np.random.default_rng(7)
    weights = rng.normal(size=(N, N)) / np.sqrt(N)
    x = rng.normal(size=N)
    b = rng.normal(size=N) * 0.1

    print(f"n={N} MLP layer (dense -> bias -> relu) on a {W}-cell array; "
          f"numba {'on' if numba_enabled() else 'off (pure NumPy)'}")
    print()

    # -- 1. every backend, bit-identical ----------------------------------
    small = rng.normal(size=(24, 17)), rng.normal(size=17)
    reference = None
    for backend in ("simulate", "vectorized", "compiled"):
        solver = Solver(ArraySpec(w=4),
                        options=ExecutionOptions(backend=backend))
        solution = solver.solve("matvec", *small)
        if reference is None:
            reference = solution.values
        identical = np.array_equal(solution.values, reference)
        print(f"  {backend:<10} -> bit-identical: {identical}")
    print()

    # -- 2. the same graph, three stages vs one fused stage ---------------
    programs = {}
    for backend in ("vectorized", "compiled"):
        solver = Solver(ArraySpec(w=W),
                        options=ExecutionOptions(backend=backend))
        programs[backend] = GraphCompiler(solver).compile(_layer(weights, x, b))
        print(f"{backend}:")
        print("  " + programs[backend].describe().replace("\n", "\n  "))
    vectorized = programs["vectorized"].run()
    compiled = programs["compiled"].run()
    print(f"fused stage kinds: "
          f"{compiled.solutions[0].stats.get('fused_kinds', '(none)')}")
    print(f"values identical: "
          f"{np.array_equal(compiled.values, vectorized.values)}")
    print()

    # -- 3. warm wall clock ------------------------------------------------
    vectorize_time = _warm_seconds(programs["vectorized"])
    compile_time = _warm_seconds(programs["compiled"])
    print(f"warm runs (best of {REPS}):")
    print(f"  vectorized  {vectorize_time * 1e3:8.2f} ms  (3 stages)")
    print(f"  compiled    {compile_time * 1e3:8.2f} ms  (1 fused stage)")
    print(f"  speedup     {vectorize_time / compile_time:8.2f}x")


if __name__ == "__main__":
    main()
