"""Batched dense-layer inference on the hexagonal matrix-matrix array.

A fully connected layer applied to a batch of inputs is the matrix-matrix
product ``Y = W X + B`` — weights times activations plus a broadcast bias —
which is exactly the ``C = A B + E`` operation Section 3 of the paper maps
onto the w x w hexagonal array.  Layer widths and batch sizes change from
model to model; the array size does not.  This example pushes a small
multi-layer perceptron through one and the same 3x3 array via the
``repro.api`` solver façade, then runs a second forward pass to show the
plan cache serving every layer shape warm.

Run with:  python examples/neural_layer_batch.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import ArraySpec, Solver


def relu(values: np.ndarray) -> np.ndarray:
    return np.maximum(values, 0.0)


def forward_pass(solver, weights, biases, activations, batch):
    """One full forward pass on the array; returns (output, total steps)."""
    simulated = activations
    total_steps = 0
    layer_rows = []
    for index, (w_matrix, bias) in enumerate(zip(weights, biases)):
        bias_block = np.tile(bias[:, None], (1, batch))
        solution = solver.solve("matmul", w_matrix, simulated, bias_block)
        total_steps += solution.measured_steps
        layer_rows.append((index, w_matrix.shape, solution))
        is_output_layer = index == len(weights) - 1
        simulated = solution.values if is_output_layer else relu(solution.values)
    return simulated, total_steps, layer_rows


def main() -> None:
    rng = np.random.default_rng(3)
    w = 3
    solver = Solver(ArraySpec(w=w))

    batch = 7                      # number of samples processed at once
    layer_sizes = [11, 8, 5, 2]    # input features -> hidden -> hidden -> output
    activations = rng.normal(size=(layer_sizes[0], batch))

    weights = [
        rng.normal(scale=0.5, size=(layer_sizes[i + 1], layer_sizes[i]))
        for i in range(len(layer_sizes) - 1)
    ]
    biases = [rng.normal(scale=0.1, size=layer_sizes[i + 1]) for i in range(len(layer_sizes) - 1)]

    print(f"3-layer perceptron, batch of {batch}, on one {w}x{w} hexagonal array")
    print("-" * 78)
    print(f"{'layer':>5} {'weights':>10} {'steps':>7} {'paper T':>8} "
          f"{'utilization':>12} {'paper eta':>10} {'cached':>7}")

    start = time.perf_counter()
    simulated, total_steps, layer_rows = forward_pass(
        solver, weights, biases, activations, batch
    )
    cold_time = time.perf_counter() - start
    for index, shape, solution in layer_rows:
        print(
            f"{index:>5} {str(shape):>10} {solution.measured_steps:>7} "
            f"{solution.predicted_steps:>8} {solution.measured_utilization:>12.3f} "
            f"{solution.predicted_utilization:>10.3f} {str(solution.from_cache):>7}"
        )

    # NumPy reference forward pass.
    reference = activations
    for index, (w_matrix, bias) in enumerate(zip(weights, biases)):
        reference = w_matrix @ reference + bias[:, None]
        if index != len(weights) - 1:
            reference = relu(reference)

    print("-" * 78)
    print(f"total array steps for the forward pass: {total_steps}")
    final_error = float(np.max(np.abs(simulated - reference)))
    print(f"end-to-end max |error| vs NumPy forward pass: {final_error:.2e}")
    print()

    # Second inference: every layer shape now has a cached execution plan.
    start = time.perf_counter()
    _, _, warm_rows = forward_pass(
        solver, weights, biases, rng.normal(size=(layer_sizes[0], batch)), batch
    )
    warm_time = time.perf_counter() - start
    assert all(solution.from_cache for _, _, solution in warm_rows)
    print(f"second forward pass: all layers served from the plan cache")
    print(f"  cold pass {cold_time * 1e3:.1f} ms, warm pass {warm_time * 1e3:.1f} ms "
          f"({cold_time / warm_time:.2f}x)")
    print(f"  {solver.cache_stats}")
    print()
    print("Every layer, whatever its shape, ran on the same 9 processing elements;")
    print("the bias entered through the array's C ports and all partial products")
    print("were accumulated inside the array by the spiral feedback.")


if __name__ == "__main__":
    main()
