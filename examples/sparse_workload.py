"""Block-sparse operands: skipping the zero blocks (Section 4 conclusions).

Structured applications — finite-difference stencils, multi-body coupling
matrices, block-banded systems — produce dense-stored matrices most of
whose ``w x w`` blocks are exactly zero.  The paper's conclusions point out
that the DBT transformation can be refined to exclude those blocks and cut
the execution time accordingly.

This example builds the block-tridiagonal matrix of a chain of coupled
subsystems and runs it through both the dense ``matvec`` kind and the
``sparse`` kind of the same :class:`repro.Solver`, reporting the saving.

Run with:  python examples/sparse_workload.py
"""

from __future__ import annotations

import numpy as np

from repro import ArraySpec, Solver


def block_tridiagonal(rng: np.random.Generator, blocks: int, w: int) -> np.ndarray:
    """Chain of `blocks` subsystems, each coupled only to its neighbours."""
    matrix = np.zeros((blocks * w, blocks * w))
    for i in range(blocks):
        matrix[i * w : (i + 1) * w, i * w : (i + 1) * w] = rng.normal(size=(w, w)) + 4 * np.eye(w)
        if i > 0:
            matrix[i * w : (i + 1) * w, (i - 1) * w : i * w] = 0.3 * rng.normal(size=(w, w))
        if i < blocks - 1:
            matrix[i * w : (i + 1) * w, (i + 1) * w : (i + 2) * w] = 0.3 * rng.normal(size=(w, w))
    return matrix


def main() -> None:
    rng = np.random.default_rng(9)
    w = 3
    solver = Solver(ArraySpec(w=w))

    print(f"Block-tridiagonal coupling matrices on one {w}-cell linear array")
    print("-" * 74)
    print(f"{'subsystems':>11} {'matrix':>10} {'zero blocks':>12} "
          f"{'dense steps':>12} {'sparse steps':>13} {'saving':>8}")

    for blocks in (3, 5, 8, 12):
        matrix = block_tridiagonal(rng, blocks, w)
        x = rng.normal(size=blocks * w)
        b = rng.normal(size=blocks * w)

        dense = solver.solve("matvec", matrix, x, b)
        sparse = solver.solve("sparse", matrix, x, b)
        reference = matrix @ x + b
        assert np.allclose(dense.values, reference)
        assert np.allclose(sparse.values, reference)

        print(
            f"{blocks:>11} {str(matrix.shape):>10} "
            f"{sparse.stats['skipped_blocks']:>12} "
            f"{dense.measured_steps:>12} {sparse.measured_steps:>13} "
            f"{sparse.stats['saving']:>7.0%}"
        )

    print("-" * 74)
    print("The denser the coupling, the smaller the saving; a fully dense matrix")
    print("degenerates to the plain DBT-by-rows schedule with no overhead.")


if __name__ == "__main__":
    main()
