"""Soak demo: plan persistence + QoS admission under a seeded mixed load.

Three acts, narrated on stdout:

1. **Cold run** — a service with a fresh :class:`~repro.store.PlanStore`
   replays a seeded soak stream.  Every distinct plan compiles once and
   is written through to disk as a checksummed artifact.
2. **Warm restart** — a brand-new service opens the same store, preloads
   every artifact onto its placed shard (``warm_start``), and replays
   the same stream with **zero** plan builds: restart cost collapsed to
   a directory read.
3. **Overload** — tiny queues under ``shed_oldest`` plus per-client rate
   limits on the batch clients.  The low class absorbs the overload
   (rate-limited + shed first) while the high class keeps completing —
   and every shed/rejection path closes its trace span
   (``open_spans == 0``).

Run with:  PYTHONPATH=src python examples/soak_demo.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.soak import SoakConfig, run_soak

REQUESTS = 600


def _show(title: str, result) -> None:
    print(f"--- {title} ---")
    print(
        f"  {result.completed}/{result.submitted} completed in "
        f"{result.elapsed:.2f}s  ({result.rps:.0f} req/s)"
    )
    print(
        f"  warm-up: {result.warmup_requests} requests, "
        f"{result.warmup_plan_builds} plan build(s); measured phase built "
        f"{result.counter_delta.plan_builds} plan(s)"
    )
    for name in ("high", "normal", "low"):
        stats = result.by_class[name]
        print(
            f"  {name:>6}: {stats.completed:4d} ok"
            f"  p50 {stats.percentile(0.5) * 1e3:6.2f}ms"
            f"  p99 {stats.percentile(0.99) * 1e3:6.2f}ms"
            f"  shed {stats.shed:3d}  rate-limited {stats.rate_limited:3d}"
        )
    if result.store_stats is not None:
        print(f"  store: {result.store_stats}")
    print(f"  open spans after run: {result.open_spans}")
    print()


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        store_root = str(Path(tmp) / "plans")

        cold = run_soak(SoakConfig(requests=REQUESTS, store_root=store_root))
        _show("cold start (empty store)", cold)

        warm = run_soak(SoakConfig(requests=REQUESTS, store_root=store_root))
        _show("warm restart (store-preloaded shards)", warm)
        assert warm.warmup_plan_builds == 0, "warm restart should build nothing"

        overload = run_soak(
            SoakConfig(
                requests=2 * REQUESTS,
                queue_depth=8,
                backpressure="shed_oldest",
                inflight=16,
                rate_limits={"batch-0": 50.0, "batch-1": 50.0},
            )
        )
        _show("overload (shed_oldest + batch-client rate limits)", overload)
        high = overload.by_class["high"]
        low = overload.by_class["low"]
        print(
            f"QoS held: high completed {high.completed}/{high.submitted}, "
            f"low absorbed {low.shed} shed(s) + "
            f"{low.rate_limited} rate-limit rejection(s)."
        )


if __name__ == "__main__":
    main()
