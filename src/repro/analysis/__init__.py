"""Figure regeneration and experiment reporting helpers."""

from .figures import (
    render_fig1_block_structure,
    render_fig2_concrete_case,
    render_fig3_dataflow,
    render_fig4_matmul_blocks,
    render_fig5_spiral_topology,
    render_fig6_recovery_map,
)
from .report import ExperimentReport, ExperimentRow
from .trajectory import current_git_sha, record_trajectory_point

__all__ = [
    "ExperimentReport",
    "ExperimentRow",
    "current_git_sha",
    "record_trajectory_point",
    "render_fig1_block_structure",
    "render_fig2_concrete_case",
    "render_fig3_dataflow",
    "render_fig4_matmul_blocks",
    "render_fig5_spiral_topology",
    "render_fig6_recovery_map",
]
