"""Figure regeneration and experiment reporting helpers."""

from .figures import (
    render_fig1_block_structure,
    render_fig2_concrete_case,
    render_fig3_dataflow,
    render_fig4_matmul_blocks,
    render_fig5_spiral_topology,
    render_fig6_recovery_map,
)
from .report import ExperimentReport, ExperimentRow

__all__ = [
    "ExperimentReport",
    "ExperimentRow",
    "render_fig1_block_structure",
    "render_fig2_concrete_case",
    "render_fig3_dataflow",
    "render_fig4_matmul_blocks",
    "render_fig5_spiral_topology",
    "render_fig6_recovery_map",
]
