"""Paper-versus-measured experiment reporting.

The benchmark harness produces, for every experiment of the index in
``DESIGN.md``, a small table of rows comparing the value printed in the
paper (or computed from its closed forms) with the value measured on the
simulators.  :class:`ExperimentReport` is the shared formatting helper so
that every benchmark prints its results the same way and
``EXPERIMENTS.md`` can be assembled from identical tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Union

__all__ = ["ExperimentRow", "ExperimentReport"]

Number = Union[int, float]


@dataclass(frozen=True)
class ExperimentRow:
    """One paper-vs-measured comparison."""

    label: str
    paper: Number
    measured: Number
    note: str = ""

    @property
    def matches(self) -> bool:
        """Exact match for integers, 1% relative tolerance for floats."""
        if isinstance(self.paper, int) and isinstance(self.measured, int):
            return self.paper == self.measured
        if self.paper == 0:
            return abs(self.measured) < 1e-12
        return abs(self.measured - self.paper) / abs(self.paper) <= 0.01

    @property
    def ratio(self) -> float:
        """Measured over paper value (``inf`` when the paper value is zero)."""
        if self.paper == 0:
            return float("inf") if self.measured else 1.0
        return self.measured / self.paper


@dataclass
class ExperimentReport:
    """A titled collection of comparison rows."""

    experiment: str
    description: str = ""
    rows: List[ExperimentRow] = field(default_factory=list)

    def add(
        self, label: str, paper: Number, measured: Number, note: str = ""
    ) -> ExperimentRow:
        row = ExperimentRow(label=label, paper=paper, measured=measured, note=note)
        self.rows.append(row)
        return row

    @classmethod
    def from_solution(
        cls, solution, experiment: str = "", description: str = ""
    ) -> "ExperimentReport":
        """Paper-vs-measured rows from a :class:`repro.api.Solution`.

        Adds a steps row and a utilization row whenever the solution
        carries both the measured value and the paper's closed form, so
        any kind solved through the :class:`repro.api.Solver` façade can
        be tabulated the same way as the hand-built benchmarks.
        """
        report = cls(
            experiment=experiment or f"{solution.kind} (w={solution.w})",
            description=description,
        )
        if solution.predicted_steps is not None:
            report.add(
                "steps",
                int(solution.predicted_steps),
                int(solution.measured_steps),
                note="paper closed form vs simulator",
            )
        if (
            solution.predicted_utilization is not None
            and solution.measured_utilization is not None
        ):
            report.add(
                "utilization",
                float(solution.predicted_utilization),
                float(solution.measured_utilization),
                note="paper closed form vs simulator",
            )
        return report

    @property
    def all_match(self) -> bool:
        return all(row.matches for row in self.rows)

    def mismatches(self) -> List[ExperimentRow]:
        return [row for row in self.rows if not row.matches]

    def format_table(self, float_digits: int = 4) -> str:
        """Aligned text table of all rows."""
        header = [self.experiment]
        if self.description:
            header.append(self.description)
        columns = ["metric", "paper", "measured", "match", "note"]

        def fmt(value: Number) -> str:
            if isinstance(value, int):
                return str(value)
            return f"{value:.{float_digits}f}"

        body = [
            [row.label, fmt(row.paper), fmt(row.measured), "yes" if row.matches else "NO", row.note]
            for row in self.rows
        ]
        widths = [
            max(len(columns[i]), *(len(line[i]) for line in body)) if body else len(columns[i])
            for i in range(len(columns))
        ]
        lines = list(header)
        lines.append("  ".join(columns[i].ljust(widths[i]) for i in range(len(columns))))
        lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
        for line in body:
            lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(columns))))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.format_table()
