"""Idempotent benchmark-trajectory files (``BENCH_*.json``).

The benchmark suite appends one machine-readable point per run to a
JSON trajectory at the repository root (CI uploads them as artifacts).
The naive append had a drift problem: because the tier-1 suite runs the
benchmarks too, every local re-run before a commit appended another
near-identical point, and a commit made twice doubled the file.

:func:`record_trajectory_point` fixes that by keying each point on
``(benchmark, git_sha)``: a re-run at the same commit *updates* the
existing point in place, while a run at a new commit appends.  Outside a
git checkout (or when git is unavailable) the sha is ``None`` and points
at the unknown sha likewise update in place.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = ["current_git_sha", "record_trajectory_point"]


def current_git_sha(root: "Path | str") -> Optional[str]:
    """The full HEAD sha of the checkout containing ``root`` (or ``None``)."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(root),
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else None


def _load_trajectory(path: Path) -> List[Dict[str, Any]]:
    if not path.exists():
        return []
    try:
        existing = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):  # pragma: no cover - corrupt file
        return []
    return existing if isinstance(existing, list) else []


def record_trajectory_point(
    path: "Path | str",
    payload: Dict[str, Any],
) -> List[Dict[str, Any]]:
    """Add (or update) one point of a benchmark trajectory file.

    ``payload`` must carry a ``"benchmark"`` name; a ``"git_sha"`` field
    is stamped automatically from the file's checkout unless the caller
    already set one.  The point replaces an existing entry with the same
    ``(benchmark, git_sha)`` key — re-runs update, they never duplicate —
    and is appended otherwise.  Returns the full trajectory as written.
    """
    path = Path(path)
    payload = dict(payload)
    if "git_sha" not in payload:
        payload["git_sha"] = current_git_sha(path.parent if path.parent != Path("") else ".")
    key = (payload.get("benchmark"), payload.get("git_sha"))
    trajectory = _load_trajectory(path)
    for index, entry in enumerate(trajectory):
        if (entry.get("benchmark"), entry.get("git_sha")) == key:
            trajectory[index] = payload
            break
    else:
        trajectory.append(payload)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return trajectory
