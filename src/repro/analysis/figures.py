"""Regeneration of the paper's figures as text artifacts.

Each ``render_figN`` function returns a string with the same structural
content as the corresponding figure of the paper (block placement tables,
cycle-by-cycle data flow, topology descriptions).  The figure benchmarks
call these functions and check the invariants the figures illustrate; the
``examples/figure_gallery.py`` script prints them for visual inspection.
"""

from __future__ import annotations


import numpy as np

from ..core.dbt import DBTByRowsTransform
from ..core.plans import CachedMatVec
from ..core.operands import MatMulOperands
from ..core.recovery import PartialResultMap
from ..core.schedule import plan_overlap_partition
from ..matrices.dense import random_matvec_problem
from ..systolic.feedback import SpiralFeedbackTopology
from ..systolic.trace import render_dataflow_table

__all__ = [
    "render_fig1_block_structure",
    "render_fig2_concrete_case",
    "render_fig3_dataflow",
    "render_fig4_matmul_blocks",
    "render_fig5_spiral_topology",
    "render_fig6_recovery_map",
]


def render_fig1_block_structure(n_bar: int, m_bar: int, w: int = 3) -> str:
    """Fig. 1: symbolic block structure of the transformed mat-vec problem.

    The table lists, for every band block row ``k``, which original
    triangles it holds and where its ``x``, initial-``y`` and output blocks
    come from — the information Fig. 1.b conveys graphically.
    """
    matrix = np.arange(1, n_bar * w * m_bar * w + 1, dtype=float).reshape(
        (n_bar * w, m_bar * w)
    )
    transform = DBTByRowsTransform(matrix, w)
    lines = [
        f"Transformed problem structure for n_bar={n_bar}, m_bar={m_bar}, w={w}",
        f"band: {transform.band_rows} x {transform.band_cols}, bandwidth {w}",
        "band block row |  U block  |  L block  | x block | initial y     | output",
        "-" * 78,
    ]
    for assignment in transform.assignments:
        k = assignment.k
        r, s = assignment.upper_source
        lr, ls = assignment.lower_source
        x_block = k % m_bar
        if k % m_bar == 0:
            initial = f"b_{r} (external)"
        else:
            initial = f"y_{r} pass {k % m_bar - 1} (feedback)"
        if (k + 1) % m_bar == 0:
            output = f"y_{r} (final)"
        else:
            output = f"y_{r} pass {k % m_bar} (partial)"
        lines.append(
            f"{k:>14} | U_{r},{s:<5} | L_{lr},{ls:<5} | x_{x_block:<5} | {initial:<13} | {output}"
        )
    lines.append("-" * 78)
    lines.append(
        f"x~ = ({', '.join(f'x_{k % m_bar}' for k in range(n_bar * m_bar))}, x'_0)"
        "   (x'_0 = first w-1 elements of x_0)"
    )
    return "\n".join(lines)


def render_fig2_concrete_case(n: int = 6, m: int = 9, w: int = 3) -> str:
    """Fig. 2: the concrete ``n=6, m=9, w=3`` case, with the overlap cut."""
    base = render_fig1_block_structure((n + w - 1) // w, (m + w - 1) // w, w)
    partition = plan_overlap_partition(n, m, w)
    lines = [
        f"Concrete case n={n}, m={m}, w={w} (Fig. 2)",
        base,
        "",
        "Optimal partitioning for overlapping (the dotted line of Fig. 2.b):",
        f"  cut after band block row {partition.cut_band_block_row - 1} "
        f"(original block rows {partition.first_block_rows} | {partition.second_block_rows})",
    ]
    return "\n".join(lines)


def render_fig3_dataflow(n: int = 6, m: int = 9, w: int = 3, seed: int = 0) -> str:
    """Fig. 3: cycle-by-cycle input/output data flow of the linear array."""
    problem = random_matvec_problem(n, m, seed=seed)
    solver = CachedMatVec(w, record_trace=True)
    solution = solver.solve(problem.matrix, problem.x, problem.b)
    header = (
        f"Data flow for n={n}, m={m}, w={w}: "
        f"{solution.measured_steps} steps "
        f"(paper: 2*w*n_bar*m_bar + 2w - 3 = {solution.predicted_steps})"
    )
    table = render_dataflow_table(solution.trace)
    return header + "\n" + table


def render_fig4_matmul_blocks(
    n_bar: int = 2, p_bar: int = 2, m_bar: int = 3, w: int = 3
) -> str:
    """Fig. 4: block structure of the transformed matrix-matrix problem."""
    n, p, m = n_bar * w, p_bar * w, m_bar * w
    a = np.arange(1, n * p + 1, dtype=float).reshape((n, p))
    b = np.arange(1, p * m + 1, dtype=float).reshape((p, m))
    operands = MatMulOperands(a, b, w)
    lines = [
        f"Transformed operands for n_bar={n_bar}, p_bar={p_bar}, m_bar={m_bar}, w={w}",
        f"A~ and B~ are {operands.dimension} x {operands.dimension} bands of width {w}",
        "band block | A~ diag (U of A) | A~ super (L of A) | B~ diag (low of B) | B~ sub (up of B)",
        "-" * 95,
    ]
    copy = operands.copy_block_count
    for block in range(operands.full_block_count):
        within = block % copy
        r, s = within // p_bar, within % p_bar
        s_next = (s + 1) % p_bar
        strip = block // copy
        q = within % p_bar
        q_next = (q + 1) % p_bar
        lines.append(
            f"{block:>10} | U^A_{r},{s:<11} | L^A_{r},{s_next:<12} | "
            f"low(B_{q},{strip})      | up(B_{q_next},{strip})"
        )
    lines.append("-" * 95)
    lines.append(
        "tail: U' = leading (w-1)x(w-1) of U^A_0,0 ; L' = leading (w-1)x(w-1) of low(B_0,0)"
    )
    return "\n".join(lines)


def render_fig5_spiral_topology(w: int = 3) -> str:
    """Fig. 5: the spiral feedback interconnection of the hexagonal array."""
    return SpiralFeedbackTopology(w).describe()


def render_fig6_recovery_map(
    n_bar: int = 2, p_bar: int = 2, m_bar: int = 2, w: int = 3
) -> str:
    """Fig. 6 / appendix: where each result block leaves the output band."""
    n, p, m = n_bar * w, p_bar * w, m_bar * w
    rng = np.random.default_rng(0)
    a = rng.uniform(-1.0, 1.0, (n, p))
    b = rng.uniform(-1.0, 1.0, (p, m))
    operands = MatMulOperands(a, b, w)
    placement = PartialResultMap(operands)
    lengths = placement.chain_lengths()
    finals = placement.final_positions()
    lines = [
        f"Output-band recovery map for n_bar={n_bar}, p_bar={p_bar}, m_bar={m_bar}, w={w}",
        f"accumulation chain lengths (partials per C element): "
        + ", ".join(f"{count} elements x {length} partials" for length, count in sorted(lengths.items())),
        "C block (i, j) | band block holding its final diagonal element",
        "-" * 60,
    ]
    for i in range(n_bar):
        for j in range(m_bar):
            alpha, gamma = i * w, j * w
            position = finals[(alpha, gamma)]
            lines.append(
                f"      ({i}, {j})      | band block {position[0] // w} "
                f"(band position {position})"
            )
    return "\n".join(lines)
