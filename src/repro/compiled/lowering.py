"""Lowering cached plan geometry to ahead-of-time compiled sweep kernels.

The vectorized backend interprets a plan every execute: the float
mat-vec sweep walks ``M_pad`` timesteps in a Python loop over a
fancy-gathered product table.  The schedule that loop replays is fixed
at plan-build time, so the compiled backend lowers it once into a
straight-line program —

``products``
    strided slice multiplies of the padded operands; no gather.  Row
    ``r`` consumes padded columns cyclically from ``s_r = r mod w``, and
    rows with equal ``s_r`` share a lane of the ``(N_bar, w, M_pad)``
    view, so each lane's products land *already rotated* into the
    accumulator with two slice products.

``fold``
    the simulator's strict left fold ``((b + p_0) + p_1) + ...`` as one
    in-place prefix sum along the contiguous axis
    (:func:`repro.compiled.kernels.fused_linear_sweep`), with every
    pass-``j`` partial snapshot read back from accumulator column
    ``(j + 1) w``.  Optionally a Numba ``@njit`` body instead — same
    fold order, same bits.

Float addition is not associative, so the fold never reassociates:
every kernel here produces results bit-identical to the simulate and
vectorized backends (signed zeros included).  ``np.einsum`` appears only
on the exact-integer int8 path, where associativity is free.

Lowered skeletons are memoized process-wide in
:data:`repro.compiled.cache.kernel_cache` and contain nothing but
geometry (ints and small tuples): they pickle into
:class:`~repro.store.PlanStore` artifacts directly, and unpicklable
Numba dispatchers are resolved from :mod:`repro.compiled.kernels` at
call time, never stored on the plan.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..backends.vectorized import HexSweepPlan, LinearSweepPlan
from .cache import kernel_cache
from .kernels import fused_linear_sweep, int_pass_sums

__all__ = [
    "CompiledLinearPlan",
    "lower_linear_plan",
    "lower_hex_plan",
]


class CompiledLinearPlan(LinearSweepPlan):
    """A :class:`LinearSweepPlan` whose sweeps run as compiled kernels.

    Same geometry, metrics and feedback model as the parent — so
    :func:`~repro.backends.vectorized.build_linear_run` assembles run
    results from it unchanged — but the value-streaming methods are the
    lowered straight-line programs described in the module docstring.
    """

    def __init__(self, w: int, n: int, m: int, n_bar: int, m_bar: int,
                 useful_operations: int):
        super().__init__(w, n, m, n_bar, m_bar, useful_operations)
        # The compiled sweeps rotate rows with strided lane copies, so
        # the parent's O(N_pad * M_pad) gather tensors are dead weight:
        # dropping them keeps lowering cheap and pickled artifacts lean.
        self._col_idx = None
        self._row_idx = None

    def _rotate_lanes(self, products: np.ndarray) -> np.ndarray:
        """Rotate row ``r``'s products left by ``r mod w`` (strided copies)."""
        raw = products.reshape(self._n_bar, self._w, self._m_pad)
        shifted = np.empty_like(raw)
        shifted[:, 0] = raw[:, 0]
        for lane in range(1, self._w):
            shifted[:, lane, :-lane] = raw[:, lane, lane:]
            shifted[:, lane, -lane:] = raw[:, lane, :lane]
        return shifted.reshape(self._n_pad, self._m_pad)

    def _pad_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Padded contiguous float64 operand; no copy when already aligned."""
        a = np.asarray(matrix, dtype=np.float64)
        if a.shape == (self._n_pad, self._m_pad):
            return np.ascontiguousarray(a)
        a_pad = np.zeros((self._n_pad, self._m_pad), dtype=np.float64)
        a_pad[: self._n, : self._m] = a
        return a_pad

    def _pad_vector(
        self, values: Optional[np.ndarray], n: int, n_pad: int
    ) -> np.ndarray:
        if values is None:
            return np.zeros(n_pad, dtype=np.float64)
        v = np.asarray(values, dtype=np.float64)
        if v.shape == (n_pad,):
            return np.ascontiguousarray(v)
        v_pad = np.zeros(n_pad, dtype=np.float64)
        v_pad[:n] = v
        return v_pad

    def sweep(
        self,
        matrix: np.ndarray,
        x: np.ndarray,
        b: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray]:
        return fused_linear_sweep(
            self._pad_matrix(matrix),
            self._pad_vector(x, self._m, self._m_pad),
            self._pad_vector(b, self._n, self._n_pad),
            self._w,
            self._n_bar,
            self._m_bar,
        )

    def int_sweep(
        self,
        matrix: np.ndarray,
        x: np.ndarray,
        b: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray]:
        for name, operand in (("matrix", matrix), ("x", x), ("b", b)):
            if operand is not None and not np.issubdtype(
                np.asarray(operand).dtype, np.integer
            ):
                raise TypeError(
                    f"int_sweep needs integer operands, got {name} of dtype "
                    f"{np.asarray(operand).dtype}"
                )
        a_pad = np.zeros((self._n_pad, self._m_pad), dtype=np.int32)
        a_pad[: self._n, : self._m] = matrix
        x_pad = np.zeros(self._m_pad, dtype=np.int32)
        x_pad[: self._m] = x
        b_pad = np.zeros(self._n_pad, dtype=np.int32)
        if b is not None:
            b_pad[: self._n] = b
        shifted = self._rotate_lanes(a_pad * x_pad[None, :])
        partials = np.cumsum(
            int_pass_sums(shifted, self._m_bar, self._w), axis=1, dtype=np.int32
        )
        partials += b_pad[:, None]
        y = partials[:, -1].copy()
        band_outputs = (
            partials.T.reshape(self._m_bar, self._n_bar, self._w)
            .transpose(1, 0, 2)
            .reshape(-1)
            .copy()
        )
        return band_outputs, y


def lower_linear_plan(
    w: int, n: int, m: int, n_bar: int, m_bar: int, useful_operations: int
) -> CompiledLinearPlan:
    """The compiled linear sweep for one mat-vec geometry (memoized)."""
    key = (
        "linear",
        int(w), int(n), int(m), int(n_bar), int(m_bar),
        int(useful_operations),
    )
    return kernel_cache.lowered(
        key,
        lambda: CompiledLinearPlan(w, n, m, n_bar, m_bar, useful_operations),
    )


def lower_hex_plan(operands, placement, useful_operations: int) -> HexSweepPlan:
    """The compiled hexagonal sweep for one mat-mul geometry (memoized).

    The hexagonal engine already executes as a handful of fancy-indexed
    folds per chain depth, and its per-(depth, term) accumulation order
    cannot be merged further without reassociating float additions — so
    lowering a mat-mul *is* building that skeleton; what the compiled
    backend adds is geometry-keyed sharing of the (expensive) build.
    The mat-mul-specific speedup instead comes from graph-level fusion
    (:mod:`repro.compiled.fusion`).
    """
    key = (
        "hex",
        int(operands.w),
        tuple(int(d) for d in operands.a_shape),
        tuple(int(d) for d in operands.b_shape),
        int(useful_operations),
    )
    return kernel_cache.lowered(
        key, lambda: HexSweepPlan(operands, placement, useful_operations)
    )
