"""Numeric kernels of the compiled backend.

The lowering layer (:mod:`repro.compiled.lowering`) reduces a cached
plan's gather tables to straight-line array programs; the kernels here
are the value-streaming bodies those programs call.  Two implementations
exist for the fused float sweep:

* a pure-NumPy body that multiplies each row lane directly into a
  ``b``-seeded accumulator (rotated into consumption order by strided
  slice assignment, never a gather) and folds it with one in-place
  ``np.add.accumulate`` prefix sum (always available), and
* a Numba ``@njit`` body compiled lazily on first use when Numba is
  importable (no ``fastmath`` — the sequential fold order is the whole
  bit-identity contract).

Both bodies replay the simulator's exact left fold
``((b + p_0) + p_1) + ...`` per padded row, so their results are
bit-identical to each other and to the other two backends — asserted by
``tests/test_compiled.py``.  Numba use can be vetoed without
uninstalling it by setting the :data:`NUMBA_DISABLE_ENV` environment
variable (the CI matrix runs one leg each way).
"""

from __future__ import annotations

import os
from typing import Tuple

import numpy as np

__all__ = [
    "NUMBA_AVAILABLE",
    "NUMBA_DISABLE_ENV",
    "numba_enabled",
    "fused_linear_sweep",
    "int_pass_sums",
]

try:  # pragma: no cover - exercised only on the Numba-installed CI leg
    from numba import njit as _njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the Numba-free leg
    _njit = None
    NUMBA_AVAILABLE = False

#: Set to ``1``/``true`` to force the pure-NumPy kernels even when Numba
#: is importable (parity testing, debugging, reproducibility audits).
NUMBA_DISABLE_ENV = "REPRO_COMPILED_DISABLE_NUMBA"


def numba_enabled() -> bool:
    """Whether the Numba-specialized kernel bodies are in use."""
    veto = os.environ.get(NUMBA_DISABLE_ENV, "").strip().lower()
    return NUMBA_AVAILABLE and veto not in ("1", "true", "yes", "on")


def _sweep_numpy(
    a_pad: np.ndarray,
    x_pad: np.ndarray,
    b_pad: np.ndarray,
    w: int,
    n_bar: int,
    m_bar: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fused multiply-rotate-fold with per-pass snapshots.

    Row ``r`` consumes padded columns cyclically from ``s_r = r mod w``,
    and rows with equal ``s_r`` share a lane of the ``(N_bar, w, ...)``
    view — so each lane's products are written *already rotated* into
    columns ``1..M_pad`` of a ``b``-seeded accumulator (two strided
    slice products per lane, no gather, no intermediate product array).
    ``np.add.accumulate`` is a sequential accumulate (each output is the
    previous output plus the next input, never a pairwise tree), so one
    in-place prefix sum along the contiguous axis is the simulator's
    per-row fold verbatim; column ``(j + 1) w`` is then exactly the
    pass-``j`` partial snapshot.
    """
    n_pad = n_bar * w
    m_pad = m_bar * w
    acc = np.empty((n_pad, m_pad + 1), dtype=np.float64)
    acc[:, 0] = b_pad
    acc3 = acc.reshape(n_bar, w, m_pad + 1)
    a3 = a_pad.reshape(n_bar, w, m_pad)
    acc3[:, 0, 1:] = a3[:, 0, :] * x_pad
    for lane in range(1, w):
        split = m_pad - lane
        acc3[:, lane, 1 : split + 1] = a3[:, lane, lane:] * x_pad[lane:]
        acc3[:, lane, split + 1 :] = a3[:, lane, :lane] * x_pad[:lane]
    np.add.accumulate(acc, axis=1, out=acc)
    y = acc[:, -1].copy()
    band_outputs = (
        acc[:, w::w]
        .T.reshape(m_bar, n_bar, w)
        .transpose(1, 0, 2)
        .reshape(-1)
    )
    return band_outputs, y


# One compiled dispatcher per process, built on first use.  Numba
# dispatchers don't pickle, so plan objects never hold them — they reach
# this module-level cache at call time instead.
_NUMBA_SWEEP = None


def _numba_sweep():  # pragma: no cover - Numba-installed leg only
    global _NUMBA_SWEEP
    if _NUMBA_SWEEP is None:

        @_njit(cache=False)
        def sweep(a_pad, x_pad, b_pad, w, n_bar, m_bar):
            n_pad = n_bar * w
            m_pad = m_bar * w
            y = b_pad.copy()
            partials = np.empty((m_bar, n_pad), dtype=np.float64)
            for r in range(n_pad):
                shift = r % w
                acc = y[r]
                for t in range(m_pad):
                    c = t + shift
                    if c >= m_pad:
                        c -= m_pad
                    acc = acc + a_pad[r, c] * x_pad[c]
                    if (t + 1) % w == 0:
                        partials[(t + 1) // w - 1, r] = acc
                y[r] = acc
            return partials, y

        _NUMBA_SWEEP = sweep
    return _NUMBA_SWEEP


def fused_linear_sweep(
    a_pad: np.ndarray,
    x_pad: np.ndarray,
    b_pad: np.ndarray,
    w: int,
    n_bar: int,
    m_bar: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(band_outputs, y_padded)`` of one compiled float mat-vec sweep.

    Operands arrive padded to ``w`` multiples as contiguous float64
    arrays (the lowering layer guarantees it); the band output ordering
    matches :meth:`~repro.backends.vectorized.LinearSweepPlan.sweep`
    element for element.
    """
    if numba_enabled():  # pragma: no cover - Numba-installed leg only
        partials, y = _numba_sweep()(a_pad, x_pad, b_pad, w, n_bar, m_bar)
        band_outputs = (
            partials.reshape(m_bar, n_bar, w).transpose(1, 0, 2).reshape(-1)
        )
        return band_outputs, y
    return _sweep_numpy(a_pad, x_pad, b_pad, w, n_bar, m_bar)


def int_pass_sums(shifted: np.ndarray, m_bar: int, w: int) -> np.ndarray:
    """Per-pass int32 block sums of lane-aligned integer products.

    One einsum contraction over the ``(N_pad, M_bar, w)`` view replaces
    the blocked ``.sum``; integer addition is associative, so the result
    is the same int32 the simulator's accumulators hold (the caller
    guarantees no overflow, as everywhere on the int8 path).
    """
    n_pad = shifted.shape[0]
    view = shifted.reshape(n_pad, m_bar, w)
    return np.einsum("rjt->rj", view, dtype=np.int32)
