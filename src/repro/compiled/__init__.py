"""repro.compiled — the ahead-of-time compiled kernel backend.

The third execution backend (``backend="compiled"``): lowers cached
plan geometry to fused strided-view/einsum kernels with an optional
Numba specialization, and fuses NN epilogue chains into single compiled
stage groups at graph-compile time.

Modules
-------
``kernels``   the numeric kernel bodies (NumPy always, Numba optional)
``lowering``  plan geometry -> compiled sweep skeletons
``cache``     process-wide geometry-keyed memo of lowered kernels
``fusion``    the ``fused`` graph kind: detection rewrite + executor

``fusion`` is imported by :mod:`repro.api.problems` for handler
registration (like the NN kinds) and is deliberately not imported here:
the core plans lazily import this package's ``lowering`` on the first
compiled plan build, and that path must not drag the api layer in.
"""

from .cache import KernelCache, kernel_cache
from .kernels import NUMBA_AVAILABLE, NUMBA_DISABLE_ENV, numba_enabled
from .lowering import CompiledLinearPlan, lower_hex_plan, lower_linear_plan

__all__ = [
    "KernelCache",
    "kernel_cache",
    "NUMBA_AVAILABLE",
    "NUMBA_DISABLE_ENV",
    "numba_enabled",
    "CompiledLinearPlan",
    "lower_hex_plan",
    "lower_linear_plan",
]
