"""Cross-stage epilogue fusion: collapsing head→epilogue chains.

The NN inference graphs of :mod:`repro.nn` interleave array stages with
host epilogues — ``dense → bias → relu`` in float, and the quantized
datapath ``dense → dequantize → bias → relu → quantize`` in int8.  Each
epilogue is an O(n) elementwise pass, but as separate pipeline stages
they each pay plan resolution, binding resolution, Solution wrapping and
a fresh walk over the activation vector.  This module rewrites such
chains into single :class:`Fused` stages executed by one
:class:`FusedPlan`, which streams the head's output straight through the
epilogue transforms.

The rewrite is *value-exact*: every epilogue applies the identical
elementwise computation (:class:`~repro.nn.engine.ElementwisePlan`) to
the identical head output, in the identical order, so fused results are
bit-for-bit equal to the unfused pipeline — unlike the opt-in
matmul→matvec associativity rewrite, nothing is reassociated.  It is
applied by :class:`~repro.graph.compiler.GraphCompiler` by default under
the ``compiled`` backend and available on request for the others
(``fuse_epilogues=True``).

A chain fuses only when it is *exclusively linear*:

* the head (``dense`` or ``matvec``) and every intermediate stage feed
  exactly one reference — the next stage's value slot — and nothing
  else: no second consumer, no ordering (``.then``) edge onto them, and
  none of them is a requested graph output (the chain's *tail* may be
  all of those; it survives as the fused node);
* every member runs under the compiler's base options: nodes carrying
  per-node ``options`` or option overrides pin how *that* stage
  executes, so they are left unfused rather than silently merged
  (the head's ``dtype_mode`` is the exception — it is carried onto the
  fused node, preserving the int8 datapath);
* the value flows through each epilogue's *first* operand; a stage that
  consumes the running value anywhere else (for example as a bias
  vector) terminates the chain before itself.

Fused stages execute their epilogues inline, outside the cycle-level
machinery, so they never record data-flow traces; the compiler's default
policy therefore only fuses when no trace was requested.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Optional, Tuple

from ..api.config import ArraySpec, ExecutionOptions
from ..api.registry import ProblemHandler, register
from ..api.solution import FeedbackStats, Solution
from ..backends.registry import SIMULATE
from ..core.plans import MatVecPlan
from ..errors import ShapeError
from ..graph.graph import Graph
from ..graph.problems import Problem, Ref, ShapeOf
from ..nn.engine import DensePlan, ElementwisePlan

__all__ = [
    "EPILOGUE_KINDS",
    "HEAD_KINDS",
    "Fused",
    "FusedHandler",
    "FusedPlan",
    "fuse_epilogue_chains",
]

#: Kinds that can anchor a fused chain (array stages producing a vector).
HEAD_KINDS = ("dense", "matvec")
#: Elementwise kinds that can ride a fused chain behind a head.
EPILOGUE_KINDS = ("bias", "relu", "quantize", "dequantize")

#: Extra operand slots (beyond the flowing value) per epilogue kind,
#: lifted onto the fused node as stage-prefixed execution kwargs.
_EPILOGUE_OPERANDS: Dict[str, Tuple[str, ...]] = {"bias": ("b",)}


class Fused(Problem):
    """One pipeline node standing for a fused head→epilogue chain.

    Built by :func:`fuse_epilogue_chains`, never by hand: it inherits
    the chain tail's name (so per-stage lookups keep addressing the same
    pipeline position), the head's operand slots and ``dtype_mode``, and
    every member's execution arguments under stage-prefixed keys —
    ``s0_x_zero_point`` for the head, ``s1_b`` / ``s2_scale`` / ... for
    the epilogues — which is how per-stage values (and references, like
    a bias vector produced by another stage) survive the merge.
    """

    kind = "fused"
    produces = "vector"

    def __init__(self, members: Tuple[Problem, ...]):
        head = members[0]
        super().__init__(options=None, name=members[-1].name)
        self.kinds: Tuple[str, ...] = tuple(member.kind for member in members)
        self.head_operands: Tuple[Any, ...] = tuple(head.operand_values())
        self.dtype_mode = getattr(head, "dtype_mode", None)
        stage_kwargs: Dict[str, Any] = {}
        for position, member in enumerate(members):
            for key, value in member.execute_kwargs().items():
                stage_kwargs[f"s{position}_{key}"] = value
            for slot in _EPILOGUE_OPERANDS.get(member.kind, ()):
                stage_kwargs[f"s{position}_{slot}"] = getattr(member, slot)
        self.stage_kwargs = stage_kwargs

    def operand_values(self) -> Tuple[Any, ...]:
        return self.head_operands

    def execute_kwargs(self) -> Dict[str, Any]:
        return dict(self.stage_kwargs)

    def option_overrides(self) -> Dict[str, Any]:
        return {"dtype_mode": self.dtype_mode}

    def spec_and_output(self, shape_of: ShapeOf):
        n, m = self._matrix_shape(shape_of, self.head_operands[0], "matrix")
        self._vector_length(shape_of, self.head_operands[1], "x", m)
        if len(self.head_operands) > 2:
            self._vector_length(shape_of, self.head_operands[2], "b", n)
        spec: List[Tuple[str, Tuple[int, ...]]] = [(self.kinds[0], (n, m))]
        for position, kind in enumerate(self.kinds[1:], start=1):
            for slot in _EPILOGUE_OPERANDS.get(kind, ()):
                self._vector_length(
                    shape_of,
                    self.stage_kwargs[f"s{position}_{slot}"],
                    f"s{position}_{slot}",
                    n,
                )
            spec.append((kind, (n,)))
        return tuple(spec), (n,)


class FusedPlan:
    """Compiled executor of one fused chain: head plan + inline epilogues.

    The head is the ordinary array plan of its kind —
    :class:`~repro.nn.engine.DensePlan` or
    :class:`~repro.core.plans.MatVecPlan`, built under the fused stage's
    resolved backend — so the array-side values and metrics are exactly
    the unfused head stage's.  The epilogues are the same
    :class:`~repro.nn.engine.ElementwisePlan` transforms the standalone
    stages run, applied to the head's output vector without leaving the
    plan, which is what makes fusion value-exact by construction.
    """

    supports_pairing = False

    def __init__(
        self,
        stages: Tuple[Tuple[str, Tuple[int, ...]], ...],
        w: int,
        backend: str = SIMULATE,
        dtype_mode: str = "float64",
    ):
        head_kind, head_shape = stages[0]
        if head_kind not in HEAD_KINDS:
            raise ShapeError(
                f"fused chains start with one of {HEAD_KINDS}, "
                f"got {head_kind!r}"
            )
        n, m = head_shape
        self._head_kind = head_kind
        # Fused stages never trace: epilogues run outside the cycle-level
        # machinery, so the compiler only fuses trace-free compilations.
        if head_kind == "dense":
            self._head: Any = DensePlan(
                n, m, w, backend=backend, dtype_mode=dtype_mode
            )
        else:
            self._head = MatVecPlan(n, m, w, backend=backend)
        for kind, shape in stages[1:]:
            if kind not in EPILOGUE_KINDS:
                raise ShapeError(
                    f"fused epilogue kinds are {EPILOGUE_KINDS}, got {kind!r}"
                )
            if shape != (n,):
                raise ShapeError(
                    f"fused epilogue {kind!r} must keep the head's output "
                    f"length {n}, got shape {shape}"
                )
        self._epilogues: Tuple[Tuple[str, ElementwisePlan], ...] = tuple(
            (kind, ElementwisePlan(kind, shape[0], w,
                                   backend=backend, dtype_mode=dtype_mode))
            for kind, shape in stages[1:]
        )
        self._dtype_mode = dtype_mode
        #: Cached FeedbackStats, filled by the handler after first execute
        #: (pure band geometry, identical every run) — same contract as
        #: DensePlan.feedback_stats.
        self.feedback_stats: Optional[Any] = None

    @property
    def kinds(self) -> Tuple[str, ...]:
        """The member kinds, head first."""
        return (self._head_kind,) + tuple(k for k, _plan in self._epilogues)

    @property
    def dtype_mode(self) -> str:
        return self._dtype_mode

    @property
    def backend(self) -> str:
        return self._head.backend

    def execute(self, *head_operands, **stage_kwargs):
        """``(head solution, fused output values)`` for one operand set."""
        per_stage: List[Dict[str, Any]] = [
            {} for _ in range(1 + len(self._epilogues))
        ]
        for key, value in stage_kwargs.items():
            tag, _, name = key.partition("_")
            try:
                position = int(tag[1:]) if tag[:1] == "s" else -1
            except ValueError:
                position = -1
            if not (0 <= position < len(per_stage)) or not name:
                raise TypeError(
                    f"fused execution kwargs are stage-prefixed "
                    f"('s<stage>_<name>'), got {key!r}"
                )
            per_stage[position][name] = value
        if self._head_kind == "dense":
            legacy = self._head.execute(
                head_operands[0],
                head_operands[1],
                x_zero_point=per_stage[0].get("x_zero_point", 0),
            )
        else:
            b = head_operands[2] if len(head_operands) > 2 else None
            legacy = self._head.execute(head_operands[0], head_operands[1], b)
        values = legacy.y
        for position, (kind, plan) in enumerate(self._epilogues, start=1):
            kwargs = per_stage[position]
            if kind == "bias":
                values = plan.bias(values, kwargs["b"])
            elif kind == "relu":
                values = plan.relu(values)
            elif kind == "quantize":
                values = plan.quantize(
                    values, kwargs["scale"], kwargs.get("zero_point", 0)
                )
            else:
                values = plan.dequantize(
                    values, kwargs["scale"], kwargs.get("zero_point", 0)
                )
        return legacy, values


class FusedHandler(ProblemHandler):
    """Registry adapter of the ``fused`` kind.

    The composite shape spec — ``((head_kind, (n, m)), (kind, (n,)),
    ...)`` — keys the plan cache, so two chains with the same stage
    structure and shapes share one compiled :class:`FusedPlan` (and the
    key round-trips through :class:`~repro.store.PlanStore` like any
    other kind's).
    """

    kind = "fused"

    def shapes(self, *, operands=None, shape=None):
        if shape is None:
            raise ShapeError(
                "fused needs shape=((head_kind, (n, m)), (kind, (n,)), ...) "
                "(fused stages are compiler-generated, not built from "
                "operands)"
            )
        try:
            return tuple(
                (str(kind), tuple(int(dim) for dim in dims))
                for kind, dims in shape
            )
        except (TypeError, ValueError):
            raise ShapeError(
                f"malformed fused shape spec {shape!r}; expected "
                f"((head_kind, (n, m)), (kind, (n,)), ...)"
            ) from None

    def build(self, spec: ArraySpec, options: ExecutionOptions, shapes):
        return FusedPlan(
            shapes, spec.w,
            backend=options.backend,
            dtype_mode=options.dtype_mode,
        )

    def execute(self, plan, *operands, **kwargs) -> Solution:
        legacy, values = plan.executor.execute(*operands, **kwargs)
        feedback = plan.executor.feedback_stats
        if feedback is None:
            feedback = FeedbackStats.from_delays(legacy.feedback_delays)
            plan.executor.feedback_stats = feedback
        kinds = plan.executor.kinds
        return Solution(
            kind=self.kind,
            w=plan.spec.w,
            values=values,
            measured_steps=legacy.measured_steps,
            predicted_steps=legacy.predicted_steps,
            measured_utilization=legacy.measured_utilization,
            predicted_utilization=legacy.predicted_utilization,
            feedback=feedback,
            stats={
                "fused_kinds": "+".join(kinds),
                "fused_stages": len(kinds),
                "dtype_mode": plan.executor.dtype_mode,
            },
            raw=legacy,
            plan_key=plan.key,
        )


# ----------------------------------------------------------------------------- #
# the graph rewrite
# ----------------------------------------------------------------------------- #
def _head_eligible(node: Problem, base_options: ExecutionOptions) -> bool:
    if node.kind not in HEAD_KINDS or node.options is not None:
        return False
    overrides = dict(node.option_overrides())
    # The head's dtype_mode is carried onto the fused node, so it does
    # not disqualify; anything else (overlapped=, ...) pins execution.
    overrides.pop("dtype_mode", None)
    if any(value is not None for value in overrides.values()):
        return False
    if node.kind == "matvec" and base_options.overlapped:
        # An overlapped base compilation runs matvec stages on the
        # overlapped plan; the fused head would not, changing metrics.
        return False
    return True


def _clean_epilogue(node: Problem) -> bool:
    return node.options is None and all(
        value is None for value in node.option_overrides().values()
    )


def fuse_epilogue_chains(
    graph: Graph, base_options: Optional[ExecutionOptions] = None
) -> Tuple[Graph, int]:
    """Collapse exclusive head→epilogue chains into :class:`Fused` nodes.

    Returns the rewritten graph and the number of chains fused (the
    original graph, unchanged, when nothing fuses).  See the module
    docstring for the exact eligibility rules; the rewrite itself runs
    in three passes — detect chains, build every fused node with its
    members' *raw* references, then remap references in one topological
    walk — because a chain's lifted kwargs (a bias vector, say) may
    reference another chain's tail, which only has its replacement once
    that tail's position is reached.
    """
    base = base_options if base_options is not None else ExecutionOptions()

    # Pass 1: detect exclusively-linear chains.
    ref_consumers: Dict[Problem, List[Tuple[Problem, Ref]]] = {}
    after_targets: Dict[Problem, int] = {}
    for node in graph.nodes:
        for ref in node.iter_refs():
            ref_consumers.setdefault(ref.node, []).append((node, ref))
        for predecessor in node.after:
            after_targets[predecessor] = after_targets.get(predecessor, 0) + 1
    output_nodes = {graph.nodes[index] for _name, index in graph.outputs}

    chains: List[List[Problem]] = []
    member_of: set = set()
    for node in graph.nodes:
        if node in member_of or not _head_eligible(node, base):
            continue
        chain = [node]
        current = node
        while True:
            # The running tail may be an output or an ordering target
            # (its replacement is remapped); members *before* it cannot
            # be, so the chain never extends past such a node.
            if current in output_nodes or after_targets.get(current):
                break
            consumers = ref_consumers.get(current, [])
            if len(consumers) != 1:
                break
            consumer, ref = consumers[0]
            if ref.item is not None or consumer.kind not in EPILOGUE_KINDS:
                break
            if consumer in member_of or not _clean_epilogue(consumer):
                break
            operands = consumer.operand_values()
            # The value must flow through the first operand slot; a stage
            # consuming it elsewhere (e.g. as its bias vector) breaks the
            # chain before itself.
            if not operands or operands[0] is not ref:
                break
            chain.append(consumer)
            current = consumer
        if len(chain) >= 2:
            chains.append(chain)
            member_of.update(chain)

    if not chains:
        return graph, 0

    # Pass 2: build every fused node with raw (unmapped) references.
    tail_to_fused: Dict[Problem, Fused] = {}
    for chain in chains:
        fused = Fused(tuple(chain))
        members = set(chain)
        afters: List[Problem] = []
        for member in chain:
            for predecessor in member.after:
                if predecessor not in members and predecessor not in afters:
                    afters.append(predecessor)
        fused.after = tuple(afters)
        tail_to_fused[chain[-1]] = fused

    # Pass 3: remap references in one topological walk.  By the time a
    # node is reached, every node it references already has its final
    # replacement in ``mapping`` — including other chains' tails.
    mapping: Dict[Problem, Problem] = {}

    def remapped(value: Any) -> Any:
        if isinstance(value, Ref) and value.node in mapping:
            return Ref(mapping[value.node], value.item)
        return value

    for node in graph.nodes:
        fused = tail_to_fused.get(node)
        if fused is not None:
            fused.head_operands = tuple(
                remapped(value) for value in fused.head_operands
            )
            fused.stage_kwargs = {
                key: remapped(value)
                for key, value in fused.stage_kwargs.items()
            }
            fused.after = tuple(mapping.get(p, p) for p in fused.after)
            mapping[node] = fused
            continue
        if node in member_of:
            continue  # non-tail member: absorbed into its fused node
        clone: Problem = node
        for attr, value in list(vars(node).items()):
            if isinstance(value, Ref) and value.node in mapping:
                replacement: Any = Ref(mapping[value.node], value.item)
            elif attr == "after" and any(p in mapping for p in value):
                replacement = tuple(mapping.get(p, p) for p in value)
            else:
                continue
            if clone is node:
                clone = copy.copy(node)
            setattr(clone, attr, replacement)
        if clone is not node:
            mapping[node] = clone

    named: Dict[str, Problem] = {}
    positional: List[Problem] = []
    for name, index in graph.outputs:
        out = mapping.get(graph.nodes[index], graph.nodes[index])
        if out.name == name:
            positional.append(out)
        else:
            named[name] = out
    return Graph(*positional, **named), len(chains)


register(FusedHandler())
