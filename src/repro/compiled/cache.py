"""Process-wide memo of lowered kernels.

Lowering is geometry-only: a compiled sweep skeleton depends on
``(kind, padded shapes, w)`` and nothing else, so plans that differ only
in non-geometric options (tolerances, zero points, dtype modes of the
surrounding stages) can share one lowered kernel.  The
:class:`KernelCache` provides that sharing one level below the api
layer's :class:`~repro.api.plan.PlanCache`: even when two distinct plan
keys miss the plan cache, their lowering can still hit here.

Accounting uses the same :class:`~repro.instrumentation.CacheStats`
currency as every other cache in the package.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable

from ..instrumentation import CacheStats

__all__ = ["KernelCache", "kernel_cache"]


class KernelCache:
    """Thread-safe LRU memo keyed by lowering geometry."""

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self._maxsize = int(maxsize)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def lowered(self, key: Hashable, build: Callable[[], Any]) -> Any:
        """The kernel lowered for ``key``, building it on first use.

        ``build`` runs outside the lock (lowering may allocate large
        index tensors); if two threads race the same key, the first
        stored kernel wins and the loser's build is discarded — kernels
        are value-independent, so either copy is correct.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._hits += 1
                self._entries.move_to_end(key)
                return entry
        built = build()
        with self._lock:
            self._misses += 1
            existing = self._entries.get(key)
            if existing is not None:
                return existing
            self._entries[key] = built
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
        return built

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                maxsize=self._maxsize,
            )

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


#: The process-wide instance every lowering call goes through.
kernel_cache = KernelCache()
