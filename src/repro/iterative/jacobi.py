"""Jacobi iteration driven by the cached matrix-vector plan.

The splitting is ``A = D + R`` (diagonal and off-diagonal parts); each
sweep computes

    ``x_{k+1} = D^{-1} (b - R x_k)``

with the dense product ``R x_k`` — the only O(n^2) work of the sweep —
executed on the linear systolic array through one
:class:`~repro.core.plans.CachedMatVec` plan.  The convergence residual
comes for free from the same product in O(n) host work
(``r(x_k) = b - R x_k - D x_k``), so the sweep judges the *current*
iterate and only applies the update when it has not converged yet.
Because ``R`` has the same shape as ``A``, a k-sweep solve is exactly
one plan build followed by k - 1 warm executions: the subsystem's
plan-cache story in its purest form.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

import numpy as np

from ..core.plans import CachedMatVec
from .base import PlanCachedIterativeSolver
from .criteria import ConvergenceCriteria
from .result import IterativeResult

__all__ = ["JacobiSolver"]


class JacobiSolver(PlanCachedIterativeSolver):
    """Jacobi solver whose sweep products run on the linear systolic array."""

    method = "jacobi"

    def __init__(
        self,
        w: int,
        criteria: Optional[ConvergenceCriteria] = None,
        backend: str = "auto",
        matvec: Optional[CachedMatVec] = None,
    ):
        super().__init__(w, criteria, backend)
        self._matvec = (
            matvec if matvec is not None else CachedMatVec(self._w, backend=backend)
        )

    def _engines(self) -> Iterable[object]:
        return (self._matvec,)

    def solve(
        self,
        matrix: np.ndarray,
        b: np.ndarray,
        x0: Optional[np.ndarray] = None,
    ) -> IterativeResult:
        """Iterate ``x_{k+1} = D^{-1} (b - R x_k)`` until the residual converges.

        The residual history records ``||b - A x_k||`` of the iterate each
        sweep *judged* (recovered in O(n) from the sweep's own product);
        on convergence ``x`` is that judged iterate, not a further update.
        """
        matrix, b, x = self._validate_system(matrix, b, x0)
        diagonal = self._require_nonzero_diagonal(matrix, self.method)
        off_diagonal = matrix - np.diagflat(diagonal)
        reference = float(np.linalg.norm(b))
        state: Dict[str, Any] = {"x": x, "steps": 0}

        def sweep(_iteration: int) -> float:
            product = self._matvec.solve(off_diagonal, state["x"])
            state["steps"] += product.measured_steps
            rhs = b - product.y  # b - R x_k: both the residual and the update
            residual = float(np.linalg.norm(rhs - diagonal * state["x"]))
            if not self._criteria.converged(residual, reference):
                state["x"] = rhs / diagonal
            return residual

        iterations, converged, history, cold, warm = self._iterate(sweep, reference)
        return IterativeResult(
            method=self.method,
            x=state["x"],
            iterations=iterations,
            converged=converged,
            residual_norm=history[-1] if history else float("inf"),
            residual_history=history,
            array_steps=state["steps"],
            cache=self.cache_stats(),
            plan_builds_first_sweep=cold,
            plan_builds_warm_sweeps=warm,
        )
