"""Iterative refinement wrapped around the blocked systolic LU pipeline.

Classic Wilkinson refinement: factor ``A = L U`` once (trailing updates on
the hexagonal array via :class:`~repro.extensions.lu.SystolicLU`), then
repeat

    ``r_k = b - A x_k``  (product on the linear array)
    ``L U d_k = r_k``    (two plan-cached triangular solves)
    ``x_{k+1} = x_k + d_k``

until the residual converges.  The factorization is the expensive,
plan-warming first step; every refinement sweep after it reuses the
cached matvec plans of the residual product and the triangular block
pipeline, so the marginal cost of driving the error down is k warm
executions.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

import numpy as np

from ..core.plans import CachedMatVec
from ..extensions.lu import SystolicLU
from ..extensions.triangular import SystolicTriangularSolver
from .base import PlanCachedIterativeSolver
from .criteria import ConvergenceCriteria
from .result import IterativeResult

__all__ = ["IterativeRefinementSolver"]


class IterativeRefinementSolver(PlanCachedIterativeSolver):
    """LU-based direct solve polished by plan-cached refinement sweeps."""

    method = "refine"

    def __init__(
        self,
        w: int,
        criteria: Optional[ConvergenceCriteria] = None,
        backend: str = "auto",
    ):
        super().__init__(w, criteria, backend)
        # One matvec engine shared by the residual products and the
        # triangular solver's block products; the LU engine brings its
        # own cached matmul for the trailing updates.
        self._matvec = CachedMatVec(self._w, backend=backend)
        self._triangular = SystolicTriangularSolver(self._w, matvec=self._matvec)
        self._lu = SystolicLU(self._w, triangular=self._triangular, backend=backend)

    def _engines(self) -> Iterable[object]:
        return (self._matvec, self._lu._matmul)

    def solve(
        self,
        matrix: np.ndarray,
        b: np.ndarray,
        x0: Optional[np.ndarray] = None,
    ) -> IterativeResult:
        """Factor once, then refine; ``x0`` seeds the first residual if given."""
        matrix, b, x = self._validate_system(matrix, b, x0)
        reference = float(np.linalg.norm(b))

        # The factorization happens before the sweep loop but is part of
        # the plan-warming cost; fold its plan builds into the cold count.
        builds_before_factor = self._engine_misses()
        factorization = self._lu.factor(matrix)
        factor_builds = self._engine_misses() - builds_before_factor
        state: Dict[str, Any] = {"x": x, "steps": factorization.array_steps}
        lower, upper = factorization.l, factorization.u

        def sweep(_iteration: int) -> float:
            # The residual product IS the sweep's convergence check: judge
            # the current iterate, and only correct it if still needed.
            product = self._matvec.solve(matrix, state["x"])
            state["steps"] += product.measured_steps
            residual_vector = b - product.y
            residual = float(np.linalg.norm(residual_vector))
            if not self._criteria.converged(residual, reference):
                forward = self._triangular.solve_lower(lower, residual_vector)
                backward = self._triangular.solve_upper(upper, forward.x)
                state["steps"] += forward.array_steps + backward.array_steps
                state["x"] = state["x"] + backward.x
            return residual

        iterations, converged, history, cold, warm = self._iterate(sweep, reference)
        return IterativeResult(
            method=self.method,
            x=state["x"],
            iterations=iterations,
            converged=converged,
            residual_norm=history[-1] if history else float("inf"),
            residual_history=history,
            array_steps=state["steps"],
            cache=self.cache_stats(),
            plan_builds_first_sweep=cold + factor_builds,
            plan_builds_warm_sweeps=warm,
        )
