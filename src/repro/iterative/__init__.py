"""Plan-cached iterative solvers on the fixed-size systolic arrays.

Section 4 of the paper names iterative methods (Gauss-Seidel among them)
as workloads the size-independent methodology covers.  This subpackage
opens that whole scenario family: every solver drives its per-sweep
O(n^2) products through the cached plan engines, so a k-iteration solve
costs one plan compilation and k - 1 (or k) *warm* vectorized executions
— zero recompiles — end to end through the :mod:`repro.service` layer.

Solvers (and their :class:`~repro.api.solver.Solver` registry kinds):

* :class:`~repro.iterative.jacobi.JacobiSolver` — ``"jacobi"``;
* :class:`~repro.iterative.sor.SORSolver` — ``"sor"`` (weighted
  Gauss-Seidel; ``omega=1`` is exactly the legacy extension, which is now
  a deprecation shim over it);
* :class:`~repro.iterative.cg.ConjugateGradientSolver` — ``"cg"`` for
  SPD systems;
* :class:`~repro.iterative.refine.IterativeRefinementSolver` —
  ``"refine"``, wrapping the blocked LU pipeline;
* :class:`~repro.iterative.power.PowerIterationSolver` — ``"power"`` for
  the dominant eigenpair.

All return an :class:`~repro.iterative.result.IterativeResult` carrying
the residual history, convergence status, array step budget, aggregated
:class:`~repro.instrumentation.CacheStats`, and the cold/warm plan-build
split; stopping is controlled by one hashable
:class:`~repro.iterative.criteria.ConvergenceCriteria` (which rides in
``ExecutionOptions`` and therefore in the plan key).

The canonical request spellings are the typed problems of
:mod:`repro.graph` — ``solver.solve(Jacobi(a, b))``,
``SOR(a, b, omega=1.4)``, ``CG(a, b, criteria=...)``, ``Refine(a, b)``,
``Power(a, x0=...)`` — whose ``criteria``/``omega`` overrides merge into
the options (and hence the plan key) exactly like the
``ExecutionOptions`` spellings below.  As pipeline stages they compose
with every other kind: ``LU(a).then(Refine(b))`` sequences refinement
after a factorization, and a stage reference as ``x0`` warm-starts one
method from another's output (``Power(a, x0=SOR(a, b))``).
"""

from .base import PlanCachedIterativeSolver
from .cg import ConjugateGradientSolver
from .criteria import ConvergenceCriteria
from .jacobi import JacobiSolver
from .power import PowerIterationSolver
from .refine import IterativeRefinementSolver
from .result import IterativeResult
from .sor import SORSolver

__all__ = [
    "ConjugateGradientSolver",
    "ConvergenceCriteria",
    "IterativeRefinementSolver",
    "IterativeResult",
    "JacobiSolver",
    "PlanCachedIterativeSolver",
    "PowerIterationSolver",
    "SORSolver",
]
