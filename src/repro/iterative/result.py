"""The common result protocol of the iterative solvers.

Every :mod:`repro.iterative` solver returns an :class:`IterativeResult`:
the solution vector, the per-sweep residual history, convergence status,
the array step budget spent, and — the subsystem's reason to exist — the
aggregated :class:`~repro.instrumentation.CacheStats` of the inner plan
caches plus the cold/warm plan-build split, which together *prove* that a
k-sweep solve costs k warm plan executions and zero recompiles after the
first sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..instrumentation import CacheStats

__all__ = ["IterativeResult"]


@dataclass
class IterativeResult:
    """Outcome of one iterative solve.

    ``plan_builds_first_sweep`` counts the plans compiled while the first
    sweep warmed the inner engines; ``plan_builds_warm_sweeps`` counts
    the plans compiled by every later sweep — by construction the
    subsystem keeps it at **zero**, and tests assert exactly that.
    """

    method: str
    x: np.ndarray
    iterations: int
    converged: bool
    residual_norm: float
    residual_history: List[float] = field(default_factory=list)
    array_steps: int = 0
    cache: CacheStats = field(default_factory=CacheStats)
    plan_builds_first_sweep: int = 0
    plan_builds_warm_sweeps: int = 0
    eigenvalue: Optional[float] = None

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise ValueError("iterations must be >= 0")

    @property
    def residual_reduction(self) -> float:
        """``history[-1] / history[0]`` (1.0 for an empty history)."""
        if len(self.residual_history) < 2:
            return 1.0
        first = self.residual_history[0]
        return self.residual_history[-1] / first if first else 0.0

    def summary(self) -> str:
        """A short human-readable convergence report."""
        status = "converged" if self.converged else "did not converge"
        lines = [
            f"repro.iterative {self.method}: {status} after "
            f"{self.iterations} sweep(s)",
            f"  residual:    {self.residual_norm:.3e}"
            + (
                f" (reduced {self.residual_reduction:.2e}x from "
                f"{self.residual_history[0]:.3e})"
                if len(self.residual_history) >= 2
                else ""
            ),
            f"  array steps: {self.array_steps}",
            (
                f"  plan cache:  {self.cache.hits} hits / "
                f"{self.cache.misses} misses "
                f"(hit rate {self.cache.hit_rate:.3f}); plan builds: "
                f"{self.plan_builds_first_sweep} first sweep, "
                f"{self.plan_builds_warm_sweeps} warm sweeps"
            ),
        ]
        if self.eigenvalue is not None:
            lines.insert(1, f"  eigenvalue:  {self.eigenvalue:.6g}")
        return "\n".join(lines)
