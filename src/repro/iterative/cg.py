"""Conjugate gradient for SPD (banded or dense) systems on the array.

Each CG iteration needs exactly one matrix-vector product ``A p_k`` — the
O(n^2) bulk of the work — and a handful of O(n) host recurrences.  The
product runs on the linear systolic array through one cached
:class:`~repro.core.plans.CachedMatVec` plan (the same ``(n, n)`` plan
every iteration), so a k-iteration solve is one plan build plus k warm
executions.

The solver guards the method's preconditions: a visibly non-symmetric
operand raises :class:`~repro.errors.ShapeError` up front, and a
non-positive curvature ``p^T A p <= 0`` encountered mid-iteration raises
:class:`~repro.errors.ConvergenceError` (the matrix was not positive
definite).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

import numpy as np

from ..core.plans import CachedMatVec
from ..errors import ConvergenceError, ShapeError
from .base import PlanCachedIterativeSolver
from .criteria import ConvergenceCriteria
from .result import IterativeResult

__all__ = ["ConjugateGradientSolver"]


class ConjugateGradientSolver(PlanCachedIterativeSolver):
    """CG solver whose ``A p`` products run on the linear systolic array."""

    method = "cg"

    #: Relative asymmetry ``||A - A^T|| / ||A||`` beyond which the operand
    #: is rejected as not symmetric.
    SYMMETRY_RTOL = 1e-10

    def __init__(
        self,
        w: int,
        criteria: Optional[ConvergenceCriteria] = None,
        backend: str = "auto",
        matvec: Optional[CachedMatVec] = None,
    ):
        super().__init__(w, criteria, backend)
        self._matvec = (
            matvec if matvec is not None else CachedMatVec(self._w, backend=backend)
        )

    def _engines(self) -> Iterable[object]:
        return (self._matvec,)

    def solve(
        self,
        matrix: np.ndarray,
        b: np.ndarray,
        x0: Optional[np.ndarray] = None,
    ) -> IterativeResult:
        """Standard CG recurrences; the residual history is ``||r_k||``."""
        matrix, b, x = self._validate_system(matrix, b, x0)
        scale = float(np.linalg.norm(matrix))
        if float(np.linalg.norm(matrix - matrix.T)) > self.SYMMETRY_RTOL * max(
            scale, 1e-300
        ):
            raise ShapeError("cg needs a symmetric (SPD) matrix")
        reference = float(np.linalg.norm(b))

        # A nonzero start vector needs one residual product before the
        # loop; like refine's factorization, its plan build is part of
        # the cold (first-sweep) warming cost.
        builds_before_setup = self._engine_misses()
        if np.any(x):
            start = self._matvec.solve(matrix, x)
            residual = b - start.y
            initial_steps = start.measured_steps
        else:
            residual = b.copy()
            initial_steps = 0
        setup_builds = self._engine_misses() - builds_before_setup
        state: Dict[str, Any] = {
            "x": x,
            "r": residual,
            "p": residual.copy(),
            "rr": float(residual @ residual),
            "steps": initial_steps,
        }

        def sweep(iteration: int) -> float:
            if state["rr"] == 0.0:
                return 0.0  # already exact; converged on a zero residual
            product = self._matvec.solve(matrix, state["p"])
            state["steps"] += product.measured_steps
            curvature = float(state["p"] @ product.y)
            if curvature <= 0.0:
                raise ConvergenceError(
                    f"cg hit non-positive curvature p^T A p = {curvature:.6e} "
                    f"at iteration {iteration}; the matrix is not positive "
                    f"definite",
                    iterations=iteration,
                    residual_norm=float(np.sqrt(state["rr"])),
                )
            alpha = state["rr"] / curvature
            state["x"] = state["x"] + alpha * state["p"]
            state["r"] = state["r"] - alpha * product.y
            rr_next = float(state["r"] @ state["r"])
            beta = rr_next / state["rr"]
            state["p"] = state["r"] + beta * state["p"]
            state["rr"] = rr_next
            return float(np.sqrt(rr_next))

        iterations, converged, history, cold, warm = self._iterate(sweep, reference)
        return IterativeResult(
            method=self.method,
            x=state["x"],
            iterations=iterations,
            converged=converged,
            residual_norm=history[-1] if history else float("inf"),
            residual_history=history,
            array_steps=state["steps"],
            cache=self.cache_stats(),
            plan_builds_first_sweep=cold + setup_builds,
            plan_builds_warm_sweeps=warm,
        )
