"""Convergence control for the plan-cached iterative solvers.

One frozen — therefore hashable, therefore plan-key-able —
:class:`ConvergenceCriteria` gathers every stopping knob the
:mod:`repro.iterative` solvers share: absolute and relative residual
tolerances, the iteration cap, and a divergence guard.  It rides inside
:class:`~repro.api.config.ExecutionOptions`, so two solves with different
criteria compile to (and cache under) different plans, exactly like any
other execution option.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

__all__ = ["ConvergenceCriteria"]


@dataclass(frozen=True)
class ConvergenceCriteria:
    """When an iterative solve stops — and when it must not continue.

    ``atol`` / ``rtol``
        The iteration converges once the residual norm drops to
        ``atol + rtol * reference`` where the reference is the norm of
        the right-hand side (or the initial residual, for eigenproblems).
        At least one of the two must be positive.
    ``max_iter``
        Hard sweep cap.  Exhausting it is *not* an error: the result
        reports ``converged=False`` and carries the full history.
    ``divergence_ratio``
        Guard against runaway iterations: if the residual exceeds
        ``divergence_ratio * max(initial_residual, 1)`` — or stops being
        finite — the solver raises
        :class:`~repro.errors.ConvergenceError` instead of burning the
        remaining sweeps.  ``float("inf")`` disables the guard entirely
        (the legacy Gauss-Seidel behaviour: even a non-finite residual
        just keeps failing the convergence test until ``max_iter``).
    """

    atol: float = 1e-10
    rtol: float = 0.0
    max_iter: int = 200
    divergence_ratio: float = 1e8

    def __post_init__(self) -> None:
        if self.atol < 0.0 or self.rtol < 0.0:
            raise ValueError(
                f"tolerances must be >= 0, got atol={self.atol}, rtol={self.rtol}"
            )
        if self.atol == 0.0 and self.rtol == 0.0:
            raise ValueError("at least one of atol/rtol must be > 0")
        if self.max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {self.max_iter}")
        if not self.divergence_ratio > 1.0:
            raise ValueError(
                f"divergence_ratio must be > 1, got {self.divergence_ratio}"
            )

    def tolerance(self, reference: float) -> float:
        """The absolute residual threshold for a given reference norm."""
        return self.atol + self.rtol * reference

    def converged(self, residual: float, reference: float) -> bool:
        """Whether ``residual`` satisfies the stopping rule."""
        return residual <= self.tolerance(reference)

    def diverged(self, residual: float, initial_residual: float) -> bool:
        """Whether the divergence guard trips for ``residual``."""
        if math.isinf(self.divergence_ratio):
            return False
        if not math.isfinite(residual):
            return True
        return residual > self.divergence_ratio * max(initial_residual, 1.0)

    def merged(self, **overrides: object) -> "ConvergenceCriteria":
        """A copy with the given fields replaced (unknown names raise)."""
        return replace(self, **overrides)  # type: ignore[arg-type]
