"""Shared machinery of the plan-cached iterative solvers.

Every solver in this subpackage follows the same contract:

* the heavy per-sweep product(s) run on the systolic array through the
  shared per-shape engines of :mod:`repro.core.plans` (and, for the
  splitting methods, the blocked pipelines of :mod:`repro.extensions`),
  so sweep k >= 2 is a pure warm plan execution — zero transform or plan
  construction;
* the convergence bookkeeping (residual norms, stopping rule,
  divergence guard) runs on the host — Jacobi, CG, refinement and power
  recover their residuals in O(n) from the sweep's own array product,
  while SOR keeps the legacy Gauss-Seidel dense residual check so the
  deprecation shim stays bit-identical to the seed;
* the loop accounting (sweep counter bumps, the cold/warm plan-build
  split measured off :data:`repro.instrumentation.counters`) is handled
  here, once, by :meth:`PlanCachedIterativeSolver._iterate`.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import ConvergenceError, ShapeError
from ..instrumentation import CacheStats, counters
from ..matrices.dense import as_matrix, as_vector
from ..matrices.padding import validate_array_size
from .criteria import ConvergenceCriteria

__all__ = ["PlanCachedIterativeSolver", "SweepOutcome"]

#: ``(iterations, converged, residual_history, builds_first, builds_warm)``.
SweepOutcome = Tuple[int, bool, List[float], int, int]


class PlanCachedIterativeSolver:
    """Base class: array size, criteria, backend, and the sweep loop."""

    #: Registry/display name of the method ("jacobi", "sor", ...).
    method: str = ""

    def __init__(
        self,
        w: int,
        criteria: Optional[ConvergenceCriteria] = None,
        backend: str = "auto",
    ):
        self._w = validate_array_size(w)
        self._criteria = criteria if criteria is not None else ConvergenceCriteria()
        self._backend = backend

    # -- introspection ----------------------------------------------------------
    @property
    def w(self) -> int:
        return self._w

    @property
    def criteria(self) -> ConvergenceCriteria:
        return self._criteria

    @property
    def backend(self) -> str:
        return self._backend

    def _engines(self) -> Iterable[object]:
        """The inner plan-cached engines (objects with a ``stats`` property)."""
        return ()

    def cache_stats(self) -> CacheStats:
        """Aggregated accounting of every inner per-shape plan cache.

        Engine-lifetime totals: across the solves this engine has served,
        one miss per distinct inner shape and hits for every reuse — the
        warm-plan story the subsystem exists to tell.
        """
        total = CacheStats()
        for engine in self._engines():
            total = total + engine.stats  # type: ignore[attr-defined]
        return total

    def _engine_misses(self) -> int:
        """Plan builds so far in *this solver's own* engines.

        Used for the per-result cold/warm build split instead of the
        process-global ``counters.plan_builds``: engine caches are
        touched only by the thread running this solve, so the split
        stays exact when other solvers build plans concurrently (the
        sharded service).
        """
        return self.cache_stats().misses

    # -- shared validation -------------------------------------------------------
    def _validate_system(
        self,
        matrix: np.ndarray,
        b: np.ndarray,
        x0: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Check a square system ``A x = b`` and materialize the start vector."""
        matrix = as_matrix(matrix, "matrix")
        b = as_vector(b, "b")
        n = matrix.shape[0]
        if matrix.shape[0] != matrix.shape[1]:
            raise ShapeError(
                f"{self.method} needs a square matrix, got {matrix.shape}"
            )
        if b.shape[0] != n:
            raise ShapeError(f"b has length {b.shape[0]}, expected {n}")
        x = np.zeros(n, dtype=float) if x0 is None else as_vector(x0, "x0").copy()
        if x.shape[0] != n:
            raise ShapeError(f"x0 has length {x.shape[0]}, expected {n}")
        return matrix, b, x

    @staticmethod
    def _require_nonzero_diagonal(matrix: np.ndarray, method: str) -> np.ndarray:
        diagonal = np.diag(matrix)
        if np.any(np.abs(diagonal) < 1e-300):
            raise ShapeError(f"{method} needs nonzero diagonal entries")
        return diagonal

    # -- the sweep loop ----------------------------------------------------------
    def _iterate(
        self,
        sweep: Callable[[int], float],
        reference: "float | Callable[[], float]",
    ) -> SweepOutcome:
        """Run ``sweep`` under the criteria, with plan-build accounting.

        ``sweep(iteration)`` performs one full sweep (mutating the
        caller's state) and returns the residual norm to judge.
        ``reference`` scales the relative tolerance — usually ``||b||``;
        a callable is re-evaluated every sweep (power iteration judges
        against the moving ``|lambda_k|``).
        """
        criteria = self._criteria
        history: List[float] = []
        iterations = 0
        converged = False
        builds_start = self._engine_misses()
        builds_after_first = builds_start
        initial_residual: Optional[float] = None
        for iteration in range(1, criteria.max_iter + 1):
            iterations = iteration
            residual = float(sweep(iteration))
            counters.bump("iterative_sweeps")
            if iteration == 1:
                builds_after_first = self._engine_misses()
            history.append(residual)
            if initial_residual is None:
                initial_residual = residual
            if criteria.diverged(residual, initial_residual):
                raise ConvergenceError(
                    f"{self.method} diverged at sweep {iteration}: residual "
                    f"{residual:.6e} (started at {initial_residual:.6e}, "
                    f"guard ratio {criteria.divergence_ratio:g})",
                    iterations=iteration,
                    residual_norm=residual,
                )
            scale = reference() if callable(reference) else reference
            if criteria.converged(residual, scale):
                converged = True
                break
        builds_first = builds_after_first - builds_start
        builds_warm = self._engine_misses() - builds_after_first
        return iterations, converged, history, builds_first, builds_warm
