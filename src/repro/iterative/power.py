"""Power iteration for the dominant eigenpair, products on the array.

Each sweep is one matrix-vector product ``y = A x_k`` on the linear
systolic array (one cached plan, reused every sweep), followed by O(n)
host work: the Rayleigh quotient ``lambda_k = x_k^T y`` (exact for the
unit-norm iterate), the eigen-residual ``||y - lambda_k x_k||`` that
drives convergence, and the normalization ``x_{k+1} = y / ||y||``.

The start vector defaults to the deterministic constant vector
``(1, ..., 1) / sqrt(n)`` so repeated solves — and the simulate/vectorized
backends — are reproducible bit for bit.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

import numpy as np

from ..core.plans import CachedMatVec
from ..errors import ConvergenceError, ShapeError
from ..matrices.dense import as_matrix, as_vector
from .base import PlanCachedIterativeSolver
from .criteria import ConvergenceCriteria
from .result import IterativeResult

__all__ = ["PowerIterationSolver"]


class PowerIterationSolver(PlanCachedIterativeSolver):
    """Dominant-eigenpair iteration with array-executed products."""

    method = "power"

    def __init__(
        self,
        w: int,
        criteria: Optional[ConvergenceCriteria] = None,
        backend: str = "auto",
        matvec: Optional[CachedMatVec] = None,
    ):
        super().__init__(w, criteria, backend)
        self._matvec = (
            matvec if matvec is not None else CachedMatVec(self._w, backend=backend)
        )

    def _engines(self) -> Iterable[object]:
        return (self._matvec,)

    def solve(
        self,
        matrix: np.ndarray,
        x0: Optional[np.ndarray] = None,
    ) -> IterativeResult:
        """Iterate to the dominant eigenpair; the result carries both.

        The residual judged against the criteria is the eigen-residual
        ``||A x - lambda x||``; the relative tolerance scales with
        ``|lambda|`` (the natural reference for an eigenproblem).
        """
        matrix = as_matrix(matrix, "matrix")
        n = matrix.shape[0]
        if matrix.shape[0] != matrix.shape[1]:
            raise ShapeError(f"power iteration needs a square matrix, got {matrix.shape}")
        if x0 is None:
            x = np.full(n, 1.0 / np.sqrt(n))
        else:
            x = as_vector(x0, "x0").astype(float, copy=True)
            if x.shape[0] != n:
                raise ShapeError(f"x0 has length {x.shape[0]}, expected {n}")
            norm = float(np.linalg.norm(x))
            if norm == 0.0:
                raise ShapeError("power iteration needs a nonzero start vector")
            x = x / norm
        state: Dict[str, Any] = {"x": x, "eigenvalue": 0.0, "steps": 0}

        def sweep(iteration: int) -> float:
            product = self._matvec.solve(matrix, state["x"])
            state["steps"] += product.measured_steps
            y = product.y
            eigenvalue = float(state["x"] @ y)
            residual = float(np.linalg.norm(y - eigenvalue * state["x"]))
            norm = float(np.linalg.norm(y))
            if norm == 0.0:
                raise ConvergenceError(
                    f"power iteration collapsed to the zero vector at sweep "
                    f"{iteration}; the iterate lies in the null space",
                    iterations=iteration,
                    residual_norm=residual,
                )
            state["x"] = y / norm
            state["eigenvalue"] = eigenvalue
            return residual

        iterations, converged, history, cold, warm = self._iterate(
            sweep, lambda: abs(state["eigenvalue"])
        )
        return IterativeResult(
            method=self.method,
            x=state["x"],
            iterations=iterations,
            converged=converged,
            residual_norm=history[-1] if history else float("inf"),
            residual_history=history,
            array_steps=state["steps"],
            cache=self.cache_stats(),
            plan_builds_first_sweep=cold,
            plan_builds_warm_sweeps=warm,
            eigenvalue=state["eigenvalue"],
        )
