"""Successive over-relaxation (SOR) on the DBT pipelines.

SOR generalizes the Gauss-Seidel iteration Section 4 of the paper lists
(Gauss-Seidel is exactly ``omega = 1``).  With ``A = D + L + U`` (diagonal,
strictly lower, strictly upper) the sweep solves

    ``(D + omega L) x_{k+1} = omega b - (omega U + (omega - 1) D) x_k``

in two plan-cached stages, exactly as the legacy Gauss-Seidel extension
did: the dense product with the upper splitting runs on the linear array
via the shared :class:`~repro.core.plans.CachedMatVec`, and the lower
triangular solve goes through
:class:`~repro.extensions.triangular.SystolicTriangularSolver`, whose
block products reuse the *same* matvec engine — so every sweep after the
first is pure warm plan execution.

For ``omega == 1.0`` the splitting is computed on the legacy Gauss-Seidel
code path (``b - U x`` with ``np.tril(A)``), keeping the deprecation shim
in :mod:`repro.extensions.gauss_seidel` bit-identical to the seed.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

import numpy as np

from ..core.plans import CachedMatVec
from ..extensions.triangular import SystolicTriangularSolver
from .base import PlanCachedIterativeSolver
from .criteria import ConvergenceCriteria
from .result import IterativeResult

__all__ = ["SORSolver"]


class SORSolver(PlanCachedIterativeSolver):
    """Weighted Gauss-Seidel (SOR) with array-executed sweep products."""

    method = "sor"

    def __init__(
        self,
        w: int,
        omega: float = 1.0,
        criteria: Optional[ConvergenceCriteria] = None,
        backend: str = "auto",
        matvec: Optional[CachedMatVec] = None,
    ):
        super().__init__(w, criteria, backend)
        if not 0.0 < omega < 2.0:
            raise ValueError(
                f"SOR needs 0 < omega < 2 for convergence, got {omega}"
            )
        self._omega = float(omega)
        # One shared engine: the sweep's dense product and the triangular
        # solver's block products reuse the same per-shape plans.
        self._matvec = (
            matvec if matvec is not None else CachedMatVec(self._w, backend=backend)
        )
        self._triangular = SystolicTriangularSolver(self._w, matvec=self._matvec)

    @property
    def omega(self) -> float:
        return self._omega

    def _engines(self) -> Iterable[object]:
        return (self._matvec,)

    def solve(
        self,
        matrix: np.ndarray,
        b: np.ndarray,
        x0: Optional[np.ndarray] = None,
    ) -> IterativeResult:
        """Relaxed sweeps until the residual of ``A x = b`` converges."""
        matrix, b, x = self._validate_system(matrix, b, x0)
        diagonal = self._require_nonzero_diagonal(matrix, self.method)
        omega = self._omega
        if omega == 1.0:
            # Exact legacy Gauss-Seidel arithmetic (no multiplies by 1/0).
            upper_split = np.triu(matrix, k=1)
            lower_solve = np.tril(matrix)
            scaled_b = b
        else:
            diagonal_matrix = np.diagflat(diagonal)
            upper_split = omega * np.triu(matrix, k=1) + (omega - 1.0) * diagonal_matrix
            lower_solve = diagonal_matrix + omega * np.tril(matrix, k=-1)
            scaled_b = omega * b
        reference = float(np.linalg.norm(b))
        state: Dict[str, Any] = {"x": x, "steps": 0}

        def sweep(_iteration: int) -> float:
            product = self._matvec.solve(upper_split, state["x"])
            state["steps"] += product.measured_steps
            solve = self._triangular.solve_lower(lower_solve, scaled_b - product.y)
            state["steps"] += solve.array_steps
            state["x"] = solve.x
            return float(np.linalg.norm(matrix @ state["x"] - b))

        iterations, converged, history, cold, warm = self._iterate(sweep, reference)
        return IterativeResult(
            method=self.method,
            x=state["x"],
            iterations=iterations,
            converged=converged,
            residual_norm=history[-1] if history else float("inf"),
            residual_history=history,
            array_steps=state["steps"],
            cache=self.cache_stats(),
            plan_builds_first_sweep=cold,
            plan_builds_warm_sweeps=warm,
        )
