"""Processing elements (cells) of the systolic arrays.

Both of Kung's arrays are built from one kind of processing element: the
*inner product step* cell, which in one clock cycle computes
``y_out = y_in + a_in * x_in`` and passes its other operands through
unchanged.  The linear (matrix-vector) array and the hexagonal
(matrix-matrix) array differ only in how cells are interconnected and in
which operand moves along which link.

The register-level linear-array simulation instantiates
:class:`InnerProductStepCell` objects explicitly; the event-driven
hexagonal simulation accounts for the same operation through
:class:`MacEvent` records, so both share the definition of what a cell does
in a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["CellState", "InnerProductStepCell", "MacEvent"]


@dataclass
class CellState:
    """Latched operands held by a cell at the start of a cycle.

    ``None`` represents a bubble (no datum on that link this cycle); the
    ``*_tag`` fields carry the stream tags alongside the values so that the
    data-flow traces can name every datum they show.
    """

    y_value: Optional[float] = None
    y_tag: Optional[tuple] = None
    x_value: Optional[float] = None
    x_tag: Optional[tuple] = None


@dataclass(frozen=True)
class MacEvent:
    """One multiply-accumulate performed by one cell at one cycle."""

    cycle: int
    cell: tuple
    a_value: float
    x_value: float
    y_before: float
    y_after: float


class InnerProductStepCell:
    """The inner product step processing element of Kung's arrays.

    The cell holds the operand latches for the current cycle and exposes a
    single :meth:`step` that consumes a coefficient ``a`` arriving from the
    cell's vertical input and produces the value to forward on the ``y``
    link.  The ``x`` operand always passes through unchanged.
    """

    def __init__(self, index: int):
        self.index = index
        self.state = CellState()
        self.mac_count = 0
        self.busy_cycles = 0
        self.total_cycles = 0

    def load(
        self,
        y_value: Optional[float],
        y_tag: Optional[tuple],
        x_value: Optional[float],
        x_tag: Optional[tuple],
    ) -> None:
        """Latch the operands that arrive at the start of a cycle."""
        self.state = CellState(y_value=y_value, y_tag=y_tag, x_value=x_value, x_tag=x_tag)

    def step(self, a_value: Optional[float]) -> Optional[float]:
        """Execute one cycle and return the outgoing ``y`` value.

        A multiply-accumulate happens only when the coefficient, the ``x``
        operand and the accumulating ``y`` operand are all present; in
        every other case the ``y`` value (possibly a bubble) is forwarded
        untouched.  The cell keeps activity counters used for the
        utilization reports.
        """
        self.total_cycles += 1
        y = self.state.y_value
        if a_value is not None and self.state.x_value is not None and y is not None:
            y = y + a_value * self.state.x_value
            self.mac_count += 1
            self.busy_cycles += 1
        return y

    @property
    def utilization(self) -> float:
        """Fraction of simulated cycles in which this cell performed a MAC."""
        if self.total_cycles == 0:
            return 0.0
        return self.busy_cycles / self.total_cycles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InnerProductStepCell(index={self.index}, macs={self.mac_count}, "
            f"busy={self.busy_cycles}/{self.total_cycles})"
        )
