"""Register-level simulation of Kung's linear contraflow systolic array.

This is the band matrix-vector multiplication array of Kung and Leiserson
(Mead & Conway, Section 8.3) that the paper targets in Section 2: a chain
of ``w`` inner-product-step cells where

* the accumulating ``y`` values enter at cell 0 and march toward cell
  ``w-1``, one cell per cycle,
* the ``x`` values enter at cell ``w-1`` and march toward cell 0
  (contraflow), and
* the band matrix coefficients drop into the cells from above, one band
  diagonal per cell.

Because ``x`` and ``y`` travel in opposite directions, consecutive elements
of each stream are separated by one idle cycle, which is why the raw array
utilization saturates at 1/2 and why the paper's overlapping trick
(interleaving two independent transformed sub-problems on the odd/even
cycles) can reach 1.

The simulation is register-level: each cell latches its operands at the
start of a cycle, performs at most one multiply-accumulate, and forwards
its operands to its neighbours for the next cycle.  Partial results can be
routed from the ``y`` output port back to the ``y`` input port through a
:class:`~repro.systolic.feedback.ShiftRegisterFeedback` of exactly ``w``
registers, which is the mechanism DBT-by-rows relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ArraySizeError, FeedbackError, ScheduleError, ShapeError, SimulationError
from ..matrices.banded import BandMatrix
from ..matrices.padding import validate_array_size
from .cell import InnerProductStepCell
from .feedback import ExternalSource, FeedbackSource, ShiftRegisterFeedback
from .metrics import UtilizationReport
from .stream import DataStream
from .trace import DataFlowTrace

__all__ = ["LinearProblem", "LinearRunResult", "LinearContraflowArray"]


@dataclass
class LinearProblem:
    """One band matrix-vector problem ready to be streamed into the array.

    Parameters
    ----------
    band:
        The band matrix (for a DBT-transformed problem, the matrix the
        paper calls ``A-tilde``).
    x:
        Input vector of length ``band.cols``.
    y_sources:
        One entry per band row: an
        :class:`~repro.systolic.feedback.ExternalSource` carrying the
        initial value (a ``b`` element), or a
        :class:`~repro.systolic.feedback.FeedbackSource` when the row's
        initial value is the partial result fed back from the output port.
    x_tags / output_tags:
        Optional labels attached to the ``x`` inputs and ``y`` outputs;
        they flow into the data-flow trace and the result recovery code.
    useful_operations:
        Operation count of the *original* (unpadded) problem, used for the
        effective-utilization metric.  Defaults to the number of in-band
        coefficients.
    """

    band: BandMatrix
    x: np.ndarray
    y_sources: Sequence[object]
    x_tags: Optional[Sequence[Optional[tuple]]] = None
    output_tags: Optional[Sequence[Optional[tuple]]] = None
    useful_operations: Optional[int] = None

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)
        if self.x.shape != (self.band.cols,):
            raise ShapeError(
                f"x must have length {self.band.cols}, got {self.x.shape}"
            )
        if len(self.y_sources) != self.band.rows:
            raise ShapeError(
                f"y_sources must have {self.band.rows} entries, got {len(self.y_sources)}"
            )
        if self.x_tags is not None and len(self.x_tags) != self.band.cols:
            raise ShapeError("x_tags length must match band.cols")
        if self.output_tags is not None and len(self.output_tags) != self.band.rows:
            raise ShapeError("output_tags length must match band.rows")


@dataclass
class LinearRunResult:
    """Everything measured during one execution of the linear array."""

    size: int
    y: np.ndarray
    output_stream: DataStream
    report: UtilizationReport
    total_cycles: int
    first_input_cycle: int
    last_output_cycle: int
    y_per_problem: List[np.ndarray] = field(default_factory=list)
    feedback_events: List[Tuple[int, int, int]] = field(default_factory=list)
    feedback_register_peak: int = 0
    trace: Optional[DataFlowTrace] = None
    cell_mac_counts: List[int] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        return self.report.utilization

    @property
    def effective_utilization(self) -> float:
        return self.report.effective_utilization

    def feedback_delays(self) -> List[int]:
        """Observed delay, in cycles, of every feedback value used."""
        return [pop - push for (_row, push, pop) in self.feedback_events]


class LinearContraflowArray:
    """Cycle-accurate simulator of the ``w``-cell linear contraflow array."""

    def __init__(self, size: int, record_trace: bool = False):
        self._size = validate_array_size(size)
        self._record_trace = record_trace

    @property
    def size(self) -> int:
        return self._size

    # -- schedule construction ------------------------------------------------
    def _injection_offsets(self, band: BandMatrix) -> Tuple[int, int]:
        """Cycle offsets (alpha, beta) for the ``y`` and ``x`` injections.

        ``y`` for band row ``i`` is injected at cell 0 at cycle
        ``2 i + alpha``; ``x`` element ``j`` is injected at cell ``w - 1``
        at cycle ``2 j + beta``.  The offsets are chosen so that row ``i``
        meets column ``j`` exactly at the cell handling band diagonal
        ``j - i`` and the earliest injection happens at cycle 0.
        """
        w = self._size
        lower = band.lower
        alpha = max(0, w - 1 - 2 * lower)
        beta = max(0, 2 * lower - w + 1)
        return alpha, beta

    def _build_coefficient_schedule(
        self, band: BandMatrix, alpha: int, offset: int
    ) -> Dict[Tuple[int, int], float]:
        """Map ``(cell, cycle) -> coefficient`` for the band's entries."""
        schedule: Dict[Tuple[int, int], float] = {}
        lower = band.lower
        for diag in band.offsets():
            cell = diag + lower
            values = band.diagonal(diag)
            for along in range(len(values)):
                i = along if diag >= 0 else along - diag
                cycle = 2 * i + alpha + cell + offset
                key = (cell, cycle)
                if key in schedule:
                    raise ScheduleError(
                        f"coefficient collision at cell {cell}, cycle {cycle}"
                    )
                schedule[key] = float(values[along])
        return schedule

    def _validate_problem(self, problem: LinearProblem) -> None:
        if problem.band.bandwidth != self._size:
            raise ArraySizeError(
                f"band of bandwidth {problem.band.bandwidth} cannot be run on an "
                f"array of {self._size} cells; they must be equal"
            )

    # -- execution -------------------------------------------------------------
    def run(self, problem: LinearProblem) -> LinearRunResult:
        """Run one problem through the array."""
        return self._run([problem])

    def run_overlapped(self, problems: Sequence[LinearProblem]) -> LinearRunResult:
        """Run up to two independent problems overlapped on odd/even cycles.

        This implements the paper's overlapping optimization: because the
        contraflow schedule only occupies alternate cycles, a second
        problem shifted by one cycle fills the idle slots and the combined
        utilization can approach 1.
        """
        if not 1 <= len(problems) <= 2:
            raise ScheduleError(
                f"run_overlapped supports 1 or 2 problems, got {len(problems)}"
            )
        return self._run(list(problems))

    def _run(self, problems: List[LinearProblem]) -> LinearRunResult:
        for problem in problems:
            self._validate_problem(problem)

        w = self._size
        coefficient_schedule: Dict[Tuple[int, int], float] = {}
        x_injections: Dict[int, Tuple[float, Optional[tuple]]] = {}
        y_injections: Dict[int, Tuple[int, int]] = {}  # cycle -> (problem, row)
        output_cycles: Dict[int, Tuple[int, int]] = {}  # cycle -> (problem, row)
        last_compute_cycle = 0
        total_macs_expected = 0
        useful_operations = 0

        for index, problem in enumerate(problems):
            offset = index  # the second problem is delayed by one cycle
            band = problem.band
            alpha, beta = self._injection_offsets(band)
            schedule = self._build_coefficient_schedule(band, alpha, offset)
            for key, value in schedule.items():
                if key in coefficient_schedule:
                    raise ScheduleError(
                        f"overlapped problems collide at cell/cycle {key}"
                    )
                coefficient_schedule[key] = value
            total_macs_expected += len(schedule)
            useful_operations += (
                problem.useful_operations
                if problem.useful_operations is not None
                else len(schedule)
            )
            for j in range(band.cols):
                cycle = 2 * j + beta + offset
                if cycle in x_injections:
                    raise ScheduleError(
                        f"x injection collision at cycle {cycle} between problems"
                    )
                tag = problem.x_tags[j] if problem.x_tags is not None else ("x", j)
                x_injections[cycle] = (float(problem.x[j]), tag)
            for i in range(band.rows):
                cycle = 2 * i + alpha + offset
                if cycle in y_injections:
                    raise ScheduleError(
                        f"y injection collision at cycle {cycle} between problems"
                    )
                y_injections[cycle] = (index, i)
                output_cycles[cycle + w] = (index, i)
                last_compute_cycle = max(last_compute_cycle, cycle + w - 1)

        first_input_cycle = 0
        last_output_cycle = max(output_cycles) if output_cycles else 0
        # The port value for cycle p is produced during iteration p - 1, so
        # simulating through last_output_cycle - 1 captures every output.
        end_cycle = max(0, last_output_cycle - 1)

        cells = [InnerProductStepCell(c) for c in range(w)]
        feedback = ShiftRegisterFeedback(w)
        feedback_events: List[Tuple[int, int, int]] = []

        x_in_stream = DataStream("x in")
        y_in_stream = DataStream("y/b in")
        y_out_stream = DataStream("y out")

        results = [np.zeros(p.band.rows, dtype=float) for p in problems]

        # Latches: the value held by cell c at the start of the current cycle.
        y_latch: List[Optional[float]] = [None] * w
        y_tag_latch: List[Optional[tuple]] = [None] * w
        x_latch: List[Optional[float]] = [None] * w
        x_tag_latch: List[Optional[tuple]] = [None] * w

        def inject(cycle: int, fed_back: Optional[Tuple[float, Optional[tuple]]]) -> None:
            """Load the boundary latches for the start of ``cycle``."""
            if cycle in x_injections:
                value, tag = x_injections[cycle]
                x_latch[w - 1] = value
                x_tag_latch[w - 1] = tag
                x_in_stream.schedule(cycle, value, tag)
            if cycle in y_injections:
                problem_index, row = y_injections[cycle]
                source = problems[problem_index].y_sources[row]
                if isinstance(source, ExternalSource):
                    y_latch[0] = source.value
                    y_tag_latch[0] = source.tag
                    y_in_stream.schedule(cycle, source.value, source.tag)
                elif isinstance(source, FeedbackSource):
                    if fed_back is None:
                        raise FeedbackError(
                            f"row {row} of problem {problem_index} needs a feedback "
                            f"value at cycle {cycle}, but the register chain is empty"
                        )
                    value, _tag = fed_back
                    y_latch[0] = value
                    y_tag_latch[0] = source.tag
                    y_in_stream.schedule(cycle, value, source.tag)
                    # The register chain has length w and is clocked every
                    # cycle, so the value consumed here left the array
                    # output port exactly w cycles earlier.
                    feedback_events.append((row, cycle - w, cycle))
                else:  # pragma: no cover - defensive
                    raise ScheduleError(f"unknown y source {source!r}")

        # Initial injections for cycle 0 (nothing can have been fed back yet).
        inject(0, None)

        for cycle in range(0, end_cycle + 1):
            # 1. Every cell computes with its latched operands.
            outgoing_y: List[Optional[float]] = [None] * w
            for c in range(w):
                cell = cells[c]
                cell.load(y_latch[c], y_tag_latch[c], x_latch[c], x_tag_latch[c])
                a_value = coefficient_schedule.get((c, cycle))
                outgoing_y[c] = cell.step(a_value)

            # 2. The value leaving cell w-1 reaches the output port at cycle+1.
            port_value = outgoing_y[w - 1]
            port_tag = y_tag_latch[w - 1]
            port_cycle = cycle + 1
            if port_value is not None and port_cycle not in output_cycles:
                raise SimulationError(
                    f"a value reached the output port at cycle {port_cycle} but no "
                    f"band row is scheduled to finish then"
                )
            if port_cycle in output_cycles and port_value is not None:
                problem_index, row = output_cycles[port_cycle]
                problem = problems[problem_index]
                results[problem_index][row] = port_value
                out_tag = (
                    problem.output_tags[row]
                    if problem.output_tags is not None
                    else ("y", row)
                )
                y_out_stream.schedule(port_cycle, port_value, out_tag)

            # 3. Clock the feedback register chain with the port value.
            pushed = (port_value, port_tag) if port_value is not None else None
            fed_back = feedback.shift(pushed)

            # 4. Shift the latches toward the next cycle.
            new_y: List[Optional[float]] = [None] * w
            new_y_tag: List[Optional[tuple]] = [None] * w
            new_x: List[Optional[float]] = [None] * w
            new_x_tag: List[Optional[tuple]] = [None] * w
            for c in range(w - 1):
                new_y[c + 1] = outgoing_y[c]
                new_y_tag[c + 1] = y_tag_latch[c]
            for c in range(1, w):
                new_x[c - 1] = x_latch[c]
                new_x_tag[c - 1] = x_tag_latch[c]
            y_latch, y_tag_latch = new_y, new_y_tag
            x_latch, x_tag_latch = new_x, new_x_tag

            # 5. Boundary injections for the next cycle.
            inject(cycle + 1, fed_back)

        mac_total = sum(cell.mac_count for cell in cells)
        if mac_total != total_macs_expected:
            raise SimulationError(
                f"simulation executed {mac_total} MACs but the schedule contains "
                f"{total_macs_expected} coefficients; the data flow is broken"
            )

        # The paper counts T from the first input step through the last step
        # in which a cell computes (the last output is available one cycle
        # after that computation).
        total_cycles = last_compute_cycle - first_input_cycle + 1
        report = UtilizationReport(
            processing_elements=w,
            steps=total_cycles,
            mac_operations=mac_total,
            useful_operations=useful_operations,
        )

        trace = None
        if self._record_trace:
            trace = DataFlowTrace()
            trace.add_stream("x in", x_in_stream)
            trace.add_stream("y out", y_out_stream)
            trace.add_stream("y/b in", y_in_stream)

        y = results[0] if len(results) == 1 else np.concatenate(results)
        return LinearRunResult(
            size=w,
            y=y,
            output_stream=y_out_stream,
            report=report,
            total_cycles=total_cycles,
            first_input_cycle=first_input_cycle,
            last_output_cycle=last_output_cycle,
            y_per_problem=results,
            feedback_events=feedback_events,
            feedback_register_peak=feedback.occupied_peak,
            trace=trace,
            cell_mac_counts=[cell.mac_count for cell in cells],
        )
