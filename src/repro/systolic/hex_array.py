"""Cycle-accurate simulation of Kung's hexagonal band matrix-matrix array.

The hexagonal array (Mead & Conway, Section 8.3; the paper's Section 3)
multiplies two band matrices.  Three data streams march through a
rhombus of ``w1 x w2`` inner-product-step cells along three directions:

* the coefficients of ``A`` move along their band diagonal lines,
* the coefficients of ``B`` move along theirs, and
* the accumulating ``C`` values move along the anti-diagonal lines,
  entering through the ``c`` input ports (which is how the addend ``E`` of
  ``C = A*B + E`` gets into the computation) and leaving through the
  opposite boundary.

Every datum advances one cell per cycle; a cell performs a
multiply-accumulate in the cycles in which one ``a``, one ``b`` and one
``c`` datum coincide on it, which happens at most every third cycle — the
origin of the 1/3 utilization ceiling the paper quotes for this array.

The simulator is *event-driven but cycle-faithful*: token trajectories are
straight lines fixed by the systolic schedule ``t = i + j + k``, so the
cell and cycle of every multiply-accumulate, and the cycle at which every
token crosses the array boundary, are computed exactly; the events are then
replayed in clock order so that feedback values (partial results re-entering
through the ``c`` ports, Section 3 of the paper) are only available after
the cycle in which they physically left the array.  An optional occupancy
check replays the token positions cycle by cycle and verifies that no two
tokens of the same stream ever occupy the same cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ArraySizeError, FeedbackError, ScheduleError, ShapeError, SimulationError
from ..matrices.banded import BandMatrix
from ..matrices.padding import validate_array_size
from .feedback import ExternalSource
from .metrics import UtilizationReport

__all__ = [
    "HexFeedbackSource",
    "CTokenPlan",
    "HexRunResult",
    "HexagonalArray",
]


@dataclass(frozen=True)
class HexFeedbackSource:
    """Initial value of a ``C`` token taken from another token's output.

    The token for result position ``(row, col)`` starts from the value that
    the token for ``(source_row, source_col)`` carried when it left the
    array, modelling the spiral feedback path of Fig. 5.
    """

    source_row: int
    source_col: int
    tag: Optional[tuple] = None


@dataclass
class CTokenPlan:
    """Where every ``C`` token of a hexagonal run gets its initial value.

    Positions not mentioned in ``sources`` start from zero (the usual
    ``C = A * B`` case).  ``sources`` may mix
    :class:`~repro.systolic.feedback.ExternalSource` entries (elements of
    the addend ``E``) and :class:`HexFeedbackSource` entries (partial
    results re-entering the array).
    """

    sources: Dict[Tuple[int, int], object] = field(default_factory=dict)

    @classmethod
    def from_band(cls, e_band: BandMatrix) -> "CTokenPlan":
        """All-external plan built from a band matrix of addend values."""
        plan = cls()
        for i in range(e_band.rows):
            for j in range(e_band.cols):
                if e_band.in_band(i, j):
                    value = e_band.get(i, j)
                    if value != 0.0:
                        plan.sources[(i, j)] = ExternalSource(value=value, tag=("e", i, j))
        return plan


@dataclass
class HexRunResult:
    """Measurements of one hexagonal array execution."""

    w1: int
    w2: int
    c_band: BandMatrix
    report: UtilizationReport
    total_cycles: int
    c_stream_cycles: int
    compute_cycles: int
    first_input_cycle: int
    last_output_cycle: int
    token_entry: Dict[Tuple[int, int], int]
    token_exit: Dict[Tuple[int, int], int]
    feedback_delays: Dict[Tuple[int, int], int] = field(default_factory=dict)
    cell_busy: Dict[Tuple[int, int], int] = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        return self.report.utilization

    @property
    def effective_utilization(self) -> float:
        return self.report.effective_utilization


class HexagonalArray:
    """Simulator of the ``w1 x w2`` hexagonal band matrix-matrix array."""

    def __init__(self, w1: int, w2: Optional[int] = None):
        self._w1 = validate_array_size(w1)
        self._w2 = validate_array_size(w2 if w2 is not None else w1)

    @property
    def w1(self) -> int:
        """Bandwidth of the first operand handled by the array."""
        return self._w1

    @property
    def w2(self) -> int:
        """Bandwidth of the second operand handled by the array."""
        return self._w2

    @property
    def processing_elements(self) -> int:
        return self._w1 * self._w2

    # -- schedule helpers -------------------------------------------------------
    def _validate(self, band_a: BandMatrix, band_b: BandMatrix) -> None:
        if band_a.bandwidth != self._w1:
            raise ArraySizeError(
                f"operand A has bandwidth {band_a.bandwidth}, the array expects {self._w1}"
            )
        if band_b.bandwidth != self._w2:
            raise ArraySizeError(
                f"operand B has bandwidth {band_b.bandwidth}, the array expects {self._w2}"
            )
        if band_a.cols != band_b.rows:
            raise ShapeError(
                f"cannot multiply bands of shapes {band_a.shape} and {band_b.shape}"
            )

    @staticmethod
    def _mac_cycle(i: int, k: int, j: int) -> int:
        """The systolic schedule: the (i, k, j) product happens at cycle i+j+k."""
        return i + j + k

    def _c_path(
        self, i: int, j: int, band_a: BandMatrix, band_b: BandMatrix
    ) -> Tuple[int, int]:
        """Range of ``u = k - i`` cells traversed by the C token for (i, j)."""
        dc = j - i
        u_min = max(-band_a.lower, dc - band_b.upper)
        u_max = min(band_a.upper, dc + band_b.lower)
        return u_min, u_max

    def c_token_window(
        self, band_a: BandMatrix, band_b: BandMatrix, i: int, j: int
    ) -> Tuple[int, int]:
        """Boundary entry and exit cycles of the C token for position (i, j).

        Exposed so that transformation code can order partial results by the
        cycle at which they enter the array without re-deriving the
        schedule.
        """
        u_min, u_max = self._c_path(i, j, band_a, band_b)
        if u_min > u_max:
            u_min = u_max = max(-band_a.lower, min(band_a.upper, j - i))
        return 2 * i + j + u_min, 2 * i + j + u_max + 1

    # -- execution ---------------------------------------------------------------
    def run(
        self,
        band_a: BandMatrix,
        band_b: BandMatrix,
        c_plan: Optional[CTokenPlan] = None,
        useful_operations: Optional[int] = None,
        verify_occupancy: bool = False,
    ) -> HexRunResult:
        """Multiply two band matrices on the array.

        Returns the result band (``A*B`` plus whatever the ``c_plan``
        injected), the timing and utilization report, and the boundary
        crossing cycle of every ``C`` token (used by the matrix-matrix
        pipeline to analyse spiral feedback delays).
        """
        self._validate(band_a, band_b)
        plan = c_plan if c_plan is not None else CTokenPlan()

        c_lower = min(band_a.lower + band_b.lower, band_a.rows - 1)
        c_upper = min(band_a.upper + band_b.upper, band_b.cols - 1)
        c_band = BandMatrix(band_a.rows, band_b.cols, c_lower, c_upper)

        # ---- enumerate MAC events and token boundary crossings -------------
        mac_events: List[Tuple[int, int, int, int]] = []  # (cycle, i, k, j)
        for i in range(band_a.rows):
            k_lo = max(0, i - band_a.lower)
            k_hi = min(band_a.cols - 1, i + band_a.upper)
            for k in range(k_lo, k_hi + 1):
                j_lo = max(0, k - band_b.lower)
                j_hi = min(band_b.cols - 1, k + band_b.upper)
                for j in range(j_lo, j_hi + 1):
                    mac_events.append((self._mac_cycle(i, k, j), i, k, j))
        mac_events.sort()

        token_entry: Dict[Tuple[int, int], int] = {}
        token_exit: Dict[Tuple[int, int], int] = {}
        for i in range(c_band.rows):
            j_lo = max(0, i - c_band.lower)
            j_hi = min(c_band.cols - 1, i + c_band.upper)
            for j in range(j_lo, j_hi + 1):
                # With t = i + j + k and u = k - i, the token is at cell
                # column u at cycle 2 i + j + u.
                entry, exit_cycle = self.c_token_window(band_a, band_b, i, j)
                token_entry[(i, j)] = entry
                token_exit[(i, j)] = exit_cycle

        # Operand tokens also cross the boundary; their first/last crossing
        # bounds the externally observable execution time.
        boundary_cycles: List[int] = []
        for i in range(band_a.rows):
            k_lo = max(0, i - band_a.lower)
            k_hi = min(band_a.cols - 1, i + band_a.upper)
            for k in range(k_lo, k_hi + 1):
                # a_{ik} travels +v; v(t) = t - i - k, entering at v = -lb.
                boundary_cycles.append(i + k - band_b.lower)
                boundary_cycles.append(i + k + band_b.upper + 1)
        for k in range(band_b.rows):
            j_lo = max(0, k - band_b.lower)
            j_hi = min(band_b.cols - 1, k + band_b.upper)
            for j in range(j_lo, j_hi + 1):
                # b_{kj} travels -u; u(t) = 2k + j - t, entering at u = ua.
                boundary_cycles.append(2 * k + j - band_a.upper)
                boundary_cycles.append(2 * k + j + band_a.lower + 1)
        boundary_cycles.extend(token_entry.values())
        boundary_cycles.extend(token_exit.values())

        first_input_cycle = min(boundary_cycles) if boundary_cycles else 0
        last_output_cycle = max(boundary_cycles) if boundary_cycles else 0

        if verify_occupancy:
            self._verify_occupancy(band_a, band_b, c_band, token_entry, token_exit)

        # ---- replay in clock order -------------------------------------------
        values: Dict[Tuple[int, int], float] = {}
        resolved: Dict[Tuple[int, int], bool] = {}
        feedback_delays: Dict[Tuple[int, int], int] = {}
        cell_busy: Dict[Tuple[int, int], int] = {}

        entry_order = sorted(token_entry, key=lambda ij: (token_entry[ij], ij))
        exit_lookup = token_exit

        def resolve_initial(position: Tuple[int, int]) -> None:
            """Give the token its initial value the moment it enters the array."""
            if resolved.get(position):
                return
            source = plan.sources.get(position)
            if source is None:
                values[position] = 0.0
            elif isinstance(source, ExternalSource):
                values[position] = source.value
            elif isinstance(source, HexFeedbackSource):
                origin = (source.source_row, source.source_col)
                if origin not in exit_lookup:
                    raise FeedbackError(
                        f"C token {position} wants feedback from {origin}, "
                        f"which never crosses the array"
                    )
                available_at = exit_lookup[origin]
                needed_at = token_entry[position]
                if available_at > needed_at:
                    raise FeedbackError(
                        f"C token {position} needs the output of {origin} at cycle "
                        f"{needed_at}, but it only leaves the array at {available_at}"
                    )
                if not resolved.get(origin):
                    raise SimulationError(
                        f"feedback source {origin} left the array but was never resolved"
                    )
                values[position] = values[origin]
                feedback_delays[position] = needed_at - available_at
            else:  # pragma: no cover - defensive
                raise ScheduleError(f"unknown C token source {source!r}")
            resolved[position] = True

        # Tokens are resolved strictly in entry order, and a feedback source is
        # only legal if it has already exited, so replaying entries in cycle
        # order reproduces what the spiral hardware does.
        event_index = 0
        mac_count = 0
        for position in entry_order:
            entry_cycle = token_entry[position]
            # Apply every MAC that happens strictly before this token enters.
            while event_index < len(mac_events) and mac_events[event_index][0] < entry_cycle:
                cycle, i, k, j = mac_events[event_index]
                self._apply_mac(values, resolved, band_a, band_b, cell_busy, i, k, j)
                mac_count += 1
                event_index += 1
            resolve_initial(position)
        while event_index < len(mac_events):
            cycle, i, k, j = mac_events[event_index]
            self._apply_mac(values, resolved, band_a, band_b, cell_busy, i, k, j)
            mac_count += 1
            event_index += 1

        for (i, j), value in values.items():
            c_band.set(i, j, value)

        compute_first = mac_events[0][0] if mac_events else 0
        compute_last = mac_events[-1][0] if mac_events else 0
        compute_cycles = compute_last - compute_first + 1 if mac_events else 0
        total_cycles = last_output_cycle - first_input_cycle + 1
        # The paper's step count T for the hexagonal array spans the C-stream
        # activity: from the first cycle in which a C value (an element of E
        # or a fed-back partial result) enters the array to the cycle in
        # which the last result leaves it.
        c_first = min(token_entry.values()) if token_entry else 0
        c_last = max(token_exit.values()) if token_exit else 0
        c_stream_cycles = c_last - c_first + 1 if token_entry else 0

        report = UtilizationReport(
            processing_elements=self.processing_elements,
            steps=c_stream_cycles if c_stream_cycles else total_cycles,
            mac_operations=mac_count,
            useful_operations=useful_operations,
        )
        return HexRunResult(
            w1=self._w1,
            w2=self._w2,
            c_band=c_band,
            report=report,
            total_cycles=total_cycles,
            c_stream_cycles=c_stream_cycles,
            compute_cycles=compute_cycles,
            first_input_cycle=first_input_cycle,
            last_output_cycle=last_output_cycle,
            token_entry=token_entry,
            token_exit=token_exit,
            feedback_delays=feedback_delays,
            cell_busy=cell_busy,
        )

    def _apply_mac(
        self,
        values: Dict[Tuple[int, int], float],
        resolved: Dict[Tuple[int, int], bool],
        band_a: BandMatrix,
        band_b: BandMatrix,
        cell_busy: Dict[Tuple[int, int], int],
        i: int,
        k: int,
        j: int,
    ) -> None:
        position = (i, j)
        if not resolved.get(position):
            raise SimulationError(
                f"MAC for C position {position} fired before the token entered the array"
            )
        values[position] += band_a.get(i, k) * band_b.get(k, j)
        cell = (k - i, j - k)
        cell_busy[cell] = cell_busy.get(cell, 0) + 1

    # -- structural verification ---------------------------------------------------
    def _verify_occupancy(
        self,
        band_a: BandMatrix,
        band_b: BandMatrix,
        c_band: BandMatrix,
        token_entry: Dict[Tuple[int, int], int],
        token_exit: Dict[Tuple[int, int], int],
    ) -> None:
        """Replay token positions cycle by cycle and check for collisions.

        This is an O(cycles x tokens) structural audit used by the tests on
        small problems; the linear trajectories guarantee collision freedom
        analytically, and this check makes that guarantee observable.
        """
        occupancy: Dict[Tuple[str, int, Tuple[int, int]], Tuple] = {}

        def occupy(stream: str, cycle: int, cell: Tuple[int, int], ident: Tuple) -> None:
            key = (stream, cycle, cell)
            existing = occupancy.get(key)
            if existing is not None and existing != ident:
                raise ScheduleError(
                    f"stream {stream} has tokens {existing} and {ident} on cell "
                    f"{cell} at cycle {cycle}"
                )
            occupancy[key] = ident

        for i in range(band_a.rows):
            k_lo = max(0, i - band_a.lower)
            k_hi = min(band_a.cols - 1, i + band_a.upper)
            for k in range(k_lo, k_hi + 1):
                u = k - i
                for v in range(-band_b.lower, band_b.upper + 1):
                    occupy("a", i + k + v, (u, v), (i, k))
        for k in range(band_b.rows):
            j_lo = max(0, k - band_b.lower)
            j_hi = min(band_b.cols - 1, k + band_b.upper)
            for j in range(j_lo, j_hi + 1):
                v = j - k
                for u in range(-band_a.lower, band_a.upper + 1):
                    occupy("b", 2 * k + j - u, (u, v), (k, j))
        for (i, j), entry in token_entry.items():
            exit_cycle = token_exit[(i, j)]
            u_entry = entry - 2 * i - j
            for step in range(exit_cycle - entry):
                u = u_entry + step
                v = (j - i) - u
                occupy("c", entry + step, (u, v), (i, j))
