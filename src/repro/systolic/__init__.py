"""Cycle-accurate simulators of H.T. Kung's contraflow systolic arrays."""

from .cell import CellState, InnerProductStepCell, MacEvent
from .feedback import (
    ExternalSource,
    FeedbackSource,
    ShiftRegisterFeedback,
    SpiralFeedbackTopology,
    SpiralLoop,
)
from .hex_array import CTokenPlan, HexFeedbackSource, HexRunResult, HexagonalArray
from .linear_array import LinearContraflowArray, LinearProblem, LinearRunResult
from .metrics import UtilizationReport, utilization
from .stream import DataStream, ScheduledValue
from .trace import DataFlowTrace, default_tag_formatter, render_dataflow_table

__all__ = [
    "CTokenPlan",
    "CellState",
    "DataFlowTrace",
    "DataStream",
    "ExternalSource",
    "FeedbackSource",
    "HexFeedbackSource",
    "HexRunResult",
    "HexagonalArray",
    "InnerProductStepCell",
    "LinearContraflowArray",
    "LinearProblem",
    "LinearRunResult",
    "MacEvent",
    "ScheduledValue",
    "ShiftRegisterFeedback",
    "SpiralFeedbackTopology",
    "SpiralLoop",
    "UtilizationReport",
    "default_tag_formatter",
    "render_dataflow_table",
    "utilization",
]
