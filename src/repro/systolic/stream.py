"""Cycle-indexed data streams feeding and leaving the systolic arrays.

A systolic array interacts with the outside world only through *streams*:
sequences of values that cross an array boundary port at specific clock
cycles.  :class:`DataStream` is a sparse mapping ``cycle -> ScheduledValue``
used both for the input schedules built by the transformation code and for
the output streams recorded by the simulators.

Every scheduled value carries an optional *tag* (an arbitrary, typically
hashable, label such as ``("x", 4)`` or ``("y", 2, "partial")``).  Tags are
what the data-flow figures (Fig. 3 of the paper) are rendered from and what
the recovery code uses to find final results in an output stream, so they
travel with the values through the whole pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import ScheduleError

__all__ = ["ScheduledValue", "DataStream"]


@dataclass(frozen=True)
class ScheduledValue:
    """A single value crossing an array port at a given cycle."""

    cycle: int
    value: float
    tag: Optional[tuple] = None

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ScheduleError(f"scheduled cycle must be >= 0, got {self.cycle}")


class DataStream:
    """A sparse, cycle-indexed sequence of values at one array port.

    At most one value may occupy a given cycle; scheduling a second value
    into an occupied cycle raises :class:`~repro.errors.ScheduleError`,
    which is how structural mistakes in a transformation schedule surface
    immediately instead of silently corrupting a simulation.
    """

    def __init__(self, name: str = "stream"):
        self._name = name
        self._values: Dict[int, ScheduledValue] = {}

    @property
    def name(self) -> str:
        return self._name

    def schedule(self, cycle: int, value: float, tag: Optional[tuple] = None) -> None:
        """Place ``value`` on the port at ``cycle``."""
        item = ScheduledValue(cycle=int(cycle), value=float(value), tag=tag)
        if item.cycle in self._values:
            raise ScheduleError(
                f"stream '{self._name}': cycle {item.cycle} already holds "
                f"{self._values[item.cycle]!r}"
            )
        self._values[item.cycle] = item

    def get(self, cycle: int) -> Optional[ScheduledValue]:
        """Value scheduled at ``cycle``, or ``None`` for a bubble."""
        return self._values.get(cycle)

    def __contains__(self, cycle: int) -> bool:
        return cycle in self._values

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[ScheduledValue]:
        """Iterate over scheduled values in cycle order."""
        for cycle in sorted(self._values):
            yield self._values[cycle]

    def cycles(self) -> List[int]:
        """Sorted list of occupied cycles."""
        return sorted(self._values)

    @property
    def first_cycle(self) -> Optional[int]:
        return min(self._values) if self._values else None

    @property
    def last_cycle(self) -> Optional[int]:
        return max(self._values) if self._values else None

    def values(self) -> List[float]:
        """Values in cycle order."""
        return [self._values[c].value for c in sorted(self._values)]

    def tagged(self, prefix: Optional[str] = None) -> List[ScheduledValue]:
        """Scheduled values whose tag starts with ``prefix`` (all if ``None``)."""
        out = []
        for item in self:
            if prefix is None:
                out.append(item)
            elif item.tag is not None and len(item.tag) > 0 and item.tag[0] == prefix:
                out.append(item)
        return out

    def find_tag(self, tag: tuple) -> Optional[ScheduledValue]:
        """First scheduled value carrying exactly ``tag``."""
        for item in self:
            if item.tag == tag:
                return item
        return None

    def as_pairs(self) -> List[Tuple[int, float]]:
        """``(cycle, value)`` pairs in cycle order."""
        return [(c, self._values[c].value) for c in sorted(self._values)]

    def shifted(self, offset: int, name: Optional[str] = None) -> "DataStream":
        """A copy of the stream with every cycle displaced by ``offset``."""
        out = DataStream(name or self._name)
        for item in self:
            out.schedule(item.cycle + offset, item.value, item.tag)
        return out

    def merged_with(self, other: "DataStream", name: Optional[str] = None) -> "DataStream":
        """Union of two streams; overlapping cycles raise ``ScheduleError``."""
        out = DataStream(name or f"{self._name}+{other._name}")
        for item in self:
            out.schedule(item.cycle, item.value, item.tag)
        for item in other:
            out.schedule(item.cycle, item.value, item.tag)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        span = (
            f"[{self.first_cycle}..{self.last_cycle}]" if self._values else "[empty]"
        )
        return f"DataStream({self._name!r}, {len(self)} values, cycles {span})"
