"""Feedback hardware: shift registers and the spiral feedback topology.

The key architectural device of the paper is that *partial results never
leave the array system*: they are routed from the array output back to an
array input through a small amount of memory.

* For the linear (matrix-vector) array, DBT-by-rows needs a feedback delay
  exactly equal to the array size ``w``, implementable with ``w``
  registers (Section 2).  :class:`ShiftRegisterFeedback` is that register
  chain.
* For the hexagonal (matrix-matrix) array, the output diagonals are fed
  back to the input diagonals through the *spiral* interconnection of
  Fig. 5 (S.Y. Kung's "spiral systolic array"): the main diagonal feeds
  itself and the sub-diagonals are fed back in pairs chosen so that every
  feedback loop crosses exactly ``w`` processing elements.
  :class:`SpiralFeedbackTopology` captures that wiring and the memory
  element counts the paper states for it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

from ..errors import ArraySizeError, FeedbackError
from ..matrices.padding import validate_array_size

__all__ = [
    "ExternalSource",
    "FeedbackSource",
    "YSource",
    "ShiftRegisterFeedback",
    "SpiralLoop",
    "SpiralFeedbackTopology",
]


@dataclass(frozen=True)
class ExternalSource:
    """Initial ``y`` value supplied from outside the array (a ``b`` element)."""

    value: float
    tag: Optional[tuple] = None


@dataclass(frozen=True)
class FeedbackSource:
    """Initial ``y`` value taken from the feedback register chain."""

    tag: Optional[tuple] = None


#: A row's initial-value source: either external data or the feedback path.
YSource = object  # union of ExternalSource | FeedbackSource, kept duck-typed


class ShiftRegisterFeedback:
    """A chain of ``size`` registers clocked once per array cycle.

    A value pushed at one clock boundary emerges exactly ``size`` boundaries
    later, which is the delay DBT-by-rows requires between a partial result
    leaving the array and re-entering it as the initial value of the next
    block row.  Bubbles (``None``) travel through the chain like any other
    item, so the register is clocked unconditionally every cycle exactly as
    the hardware would be.
    """

    def __init__(self, size: int):
        self._size = validate_array_size(size)
        self._registers: Deque[Optional[Tuple[float, Optional[tuple]]]] = deque(
            [None] * self._size, maxlen=self._size
        )
        self._pushes = 0
        self._occupied_peak = 0

    @property
    def size(self) -> int:
        return self._size

    @property
    def pushes(self) -> int:
        """Number of clock boundaries the register chain has seen."""
        return self._pushes

    @property
    def occupied_peak(self) -> int:
        """Maximum number of simultaneously occupied registers observed."""
        return self._occupied_peak

    def shift(
        self, incoming: Optional[Tuple[float, Optional[tuple]]]
    ) -> Optional[Tuple[float, Optional[tuple]]]:
        """Clock the chain once: push ``incoming``, return the value falling out."""
        self._pushes += 1
        outgoing = self._registers[0]
        self._registers.append(incoming)
        occupied = sum(1 for item in self._registers if item is not None)
        self._occupied_peak = max(self._occupied_peak, occupied)
        return outgoing

    def snapshot(self) -> List[Optional[Tuple[float, Optional[tuple]]]]:
        """Current register contents, oldest first (for tests and traces)."""
        return list(self._registers)


@dataclass(frozen=True)
class SpiralLoop:
    """One feedback loop of the spiral topology.

    ``output_offset`` is the C-band diagonal whose values leave the array
    and are fed back into the diagonal ``input_offset``; ``cells`` is the
    number of processing elements the loop traverses inside the array.
    A loop with ``output_offset == input_offset == 0`` is the
    auto-feedbacked main diagonal.
    """

    output_offset: int
    input_offset: int
    cells: int
    registers: int

    @property
    def is_main_diagonal(self) -> bool:
        return self.output_offset == 0 and self.input_offset == 0


class SpiralFeedbackTopology:
    """Spiral feedback wiring of the ``w x w`` hexagonal array (Fig. 5).

    The result band of ``C = A * B`` for two bandwidth-``w`` operands has
    ``2w - 1`` diagonals, offsets ``-(w-1) .. (w-1)``.  Each diagonal of
    offset ``d`` crosses ``w - |d|`` cells of the hexagonal array.  The
    spiral feedback closes each diagonal channel onto another one so that:

    * the main diagonal (``d = 0``, ``w`` cells) feeds itself, and
    * the super-diagonal ``+d`` is paired with the sub-diagonal ``d - w``
      (equivalently ``-(w - d)``), giving a combined loop of
      ``(w - d) + (w - (w - d)) = w`` cells,

    which is exactly the paper's statement that "the number of processing
    elements in the loop equals w".  The register counts follow Section 3:
    ``2w`` memory elements for the main diagonal loop and ``w`` for each
    sub-diagonal pair when the feedback delay is kept constant, plus
    ``3 w (w - 1) / 2`` additional elements to absorb the irregular delays.
    """

    def __init__(self, w: int):
        self._w = validate_array_size(w)
        if self._w < 1:
            raise ArraySizeError(f"spiral topology needs w >= 1, got {w}")
        self._loops = self._build_loops()

    def _build_loops(self) -> List[SpiralLoop]:
        w = self._w
        loops = [SpiralLoop(output_offset=0, input_offset=0, cells=w, registers=2 * w)]
        for d in range(1, w):
            paired = d - w  # the sub-diagonal -(w - d)
            cells = (w - d) + (w - abs(paired))
            loops.append(
                SpiralLoop(
                    output_offset=d,
                    input_offset=paired,
                    cells=cells,
                    registers=w,
                )
            )
        return loops

    @property
    def w(self) -> int:
        return self._w

    @property
    def loops(self) -> Sequence[SpiralLoop]:
        return tuple(self._loops)

    @property
    def loop_count(self) -> int:
        return len(self._loops)

    def loop_for_output(self, offset: int) -> SpiralLoop:
        """The loop whose feedback source is the output diagonal ``offset``."""
        for loop in self._loops:
            if loop.output_offset == offset:
                return loop
        raise FeedbackError(
            f"no spiral loop feeds back output diagonal {offset} for w={self._w}"
        )

    def regular_register_count(self) -> int:
        """Registers needed for constant-delay feedback: ``2w + (w-1) w``."""
        return sum(loop.registers for loop in self._loops)

    def irregular_register_count(self) -> int:
        """Extra memory for the irregular feedback delays: ``3 w (w-1) / 2``."""
        return 3 * self._w * (self._w - 1) // 2

    def total_register_count(self) -> int:
        return self.regular_register_count() + self.irregular_register_count()

    def edge_list(self) -> List[Tuple[int, int]]:
        """Feedback edges as ``(output_diagonal, input_diagonal)`` pairs."""
        return [(loop.output_offset, loop.input_offset) for loop in self._loops]

    def describe(self) -> str:
        """Multi-line textual rendering of the topology (used for Fig. 5)."""
        lines = [f"Spiral feedback topology for a {self._w}x{self._w} hexagonal array"]
        for loop in self._loops:
            kind = "auto-feedback" if loop.is_main_diagonal else "paired"
            lines.append(
                f"  output diagonal {loop.output_offset:+d} -> input diagonal "
                f"{loop.input_offset:+d}  ({kind}, {loop.cells} PEs in loop, "
                f"{loop.registers} registers)"
            )
        lines.append(
            f"  regular feedback registers: {self.regular_register_count()}"
        )
        lines.append(
            f"  irregular feedback registers: {self.irregular_register_count()}"
        )
        return "\n".join(lines)
