"""Data-flow traces and Fig. 3 style rendering.

Figure 3 of the paper tabulates, cycle by cycle, the data entering and
leaving the linear array for the concrete problem ``n=6, m=9, w=3``: the
``x`` elements entering one end, the ``b``/partial-``y`` values entering
the other end, and the ``y`` values leaving.  :class:`DataFlowTrace`
records exactly those three boundary streams during a simulation and can
render them as an aligned text table, which is how the benchmark for F3
regenerates the figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from .stream import DataStream, ScheduledValue

__all__ = ["DataFlowTrace", "render_dataflow_table", "default_tag_formatter"]


def default_tag_formatter(item: ScheduledValue) -> str:
    """Render a scheduled value's tag the way the paper labels data.

    Tags produced by the matrix-vector pipeline look like ``("x", j)``,
    ``("b", i)``, ``("y", i)`` or ``("y", i, pass_index)`` for partial
    results; they are rendered as ``x3``, ``b1``, ``y2`` and ``y2^1``
    respectively.  Untagged values fall back to their numeric value.
    """
    if item.tag is None:
        return f"{item.value:g}"
    kind = item.tag[0]
    rest = item.tag[1:]
    if len(rest) == 0:
        return str(kind)
    if len(rest) == 1:
        return f"{kind}{rest[0]}"
    return f"{kind}{rest[0]}^{rest[1]}"


@dataclass
class DataFlowTrace:
    """Boundary-port activity of one array execution.

    ``rows`` maps a display name (for example ``"x in"``) to the
    :class:`~repro.systolic.stream.DataStream` observed at that port.
    The insertion order of ``rows`` is the top-to-bottom order of the
    rendered table.
    """

    rows: Dict[str, DataStream] = field(default_factory=dict)

    def add_stream(self, name: str, stream: DataStream) -> None:
        if name in self.rows:
            raise ValueError(f"trace already has a row named {name!r}")
        self.rows[name] = stream

    @property
    def first_cycle(self) -> int:
        cycles = [s.first_cycle for s in self.rows.values() if s.first_cycle is not None]
        return min(cycles) if cycles else 0

    @property
    def last_cycle(self) -> int:
        cycles = [s.last_cycle for s in self.rows.values() if s.last_cycle is not None]
        return max(cycles) if cycles else 0

    @property
    def total_cycles(self) -> int:
        """Number of clock steps spanned by the trace, first to last inclusive."""
        if not self.rows:
            return 0
        return self.last_cycle - self.first_cycle + 1

    def row_labels(
        self,
        name: str,
        formatter: Callable[[ScheduledValue], str] = default_tag_formatter,
    ) -> List[str]:
        """Labels of the values in row ``name``, in cycle order."""
        return [formatter(item) for item in self.rows[name]]

    def render(
        self,
        formatter: Callable[[ScheduledValue], str] = default_tag_formatter,
        cycle_step: int = 1,
    ) -> str:
        """Render the trace as an aligned, Fig. 3 style text table."""
        return render_dataflow_table(self, formatter=formatter, cycle_step=cycle_step)


def render_dataflow_table(
    trace: DataFlowTrace,
    formatter: Callable[[ScheduledValue], str] = default_tag_formatter,
    cycle_step: int = 1,
) -> str:
    """Render a :class:`DataFlowTrace` as a text table.

    One column per ``cycle_step`` clock cycles; the header row lists the
    cycle numbers, every subsequent row lists the datum crossing the
    corresponding port at that cycle (``.`` for a bubble), mirroring the
    layout of Figure 3 in the paper.
    """
    if not trace.rows:
        return "(empty trace)"
    first, last = trace.first_cycle, trace.last_cycle
    cycles = list(range(first, last + 1, cycle_step))

    header_cells = ["Clock:"] + [str(c) for c in cycles]
    body: List[List[str]] = []
    for name, stream in trace.rows.items():
        row = [name]
        for c in cycles:
            covered = [stream.get(c + d) for d in range(cycle_step)]
            present = [item for item in covered if item is not None]
            row.append(formatter(present[0]) if present else ".")
        body.append(row)

    widths = []
    for i in range(len(header_cells)):
        column = [header_cells[i]] + [row[i] for row in body]
        widths.append(max(len(cell) for cell in column))

    lines = []
    lines.append("  ".join(header_cells[i].rjust(widths[i]) for i in range(len(header_cells))))
    for row in body:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)
