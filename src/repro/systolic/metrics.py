"""Utilization and timing metrics shared by both array simulators.

The paper's quantitative claims are expressed through the processing
element utilization factor ``eta = N / (A * T)`` where ``N`` is the number
of operations required by the algorithm, ``A`` the number of processing
elements and ``T`` the number of steps the array needs (Section 1).  The
simulators report their measurements through :class:`UtilizationReport`
objects so that benchmarks can compare measured values against the paper's
closed forms without re-deriving anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["UtilizationReport", "utilization"]


def utilization(operations: int, processing_elements: int, steps: int) -> float:
    """The paper's utilization factor ``eta = N / (A * T)``."""
    if processing_elements <= 0:
        raise ValueError(f"processing_elements must be > 0, got {processing_elements}")
    if steps <= 0:
        raise ValueError(f"steps must be > 0, got {steps}")
    if operations < 0:
        raise ValueError(f"operations must be >= 0, got {operations}")
    return operations / (processing_elements * steps)


@dataclass(frozen=True)
class UtilizationReport:
    """Measured activity of one simulated array execution.

    Attributes
    ----------
    processing_elements:
        Number of PEs in the array (``A`` in the paper).
    steps:
        Number of clock steps from the first cycle in which data crossed
        an array boundary to the last cycle in which a cell computed,
        inclusive (``T`` in the paper).
    mac_operations:
        Multiply-accumulate operations actually executed by the array.
        For a DBT-transformed problem this counts the operations of the
        *padded* problem, because the transformed band is completely
        filled.
    useful_operations:
        Operations attributable to the original, unpadded problem.  Equals
        ``mac_operations`` when the problem dimensions are multiples of the
        array size.
    """

    processing_elements: int
    steps: int
    mac_operations: int
    useful_operations: Optional[int] = None

    @property
    def utilization(self) -> float:
        """Hardware utilization: executed MACs over array capacity."""
        return utilization(self.mac_operations, self.processing_elements, self.steps)

    @property
    def effective_utilization(self) -> float:
        """Utilization counting only operations of the original problem."""
        ops = (
            self.useful_operations
            if self.useful_operations is not None
            else self.mac_operations
        )
        return utilization(ops, self.processing_elements, self.steps)

    @property
    def capacity(self) -> int:
        """Total cell-cycles available during the execution (``A * T``)."""
        return self.processing_elements * self.steps

    def describe(self) -> str:
        """One-line human readable summary used by examples and reports.

        When ``useful_operations`` is set (a padded / transformed run),
        the effective utilization — operations of the *original* problem
        over array capacity — is reported next to the raw figure, so the
        padding never inflates the quoted number.
        """
        text = (
            f"A={self.processing_elements} PEs, T={self.steps} steps, "
            f"{self.mac_operations} MACs, utilization={self.utilization:.4f}"
        )
        if self.useful_operations is not None:
            text += f", effective_utilization={self.effective_utilization:.4f}"
        return text
