"""Lightweight process-wide counters for the plan/execute split.

The whole point of the :mod:`repro.api` plan cache is that a *warm* solve
streams operand values through a prebuilt :class:`~repro.api.plan.ExecutionPlan`
without rebuilding any DBT transform, operand band or partial-result
placement.  "No transform construction happened" is an invisible property,
so the transform constructors report to the counters below and tests (and
the plan-cache benchmark) assert that the counter does not move across a
warm solve.

The counters are deliberately plain integers on a module-level object:
they cost one attribute increment per construction, need no locking for
the CPython use here, and can be snapshotted/diffed from anywhere without
importing the api layer.

Thread-safety boundary: ``transform_constructions`` / ``plan_builds`` /
``plan_executions`` are bumped inline on the solve path without a lock,
so they are exact only for single-threaded callers (every test that
asserts on them); under the multithreaded :mod:`repro.service` shard pool
they are best-effort.  The ``service_*`` counters, by contrast, are
serialized on a shared lock by the service telemetry and stay exact.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Counters", "counters", "transform_constructions"]


@dataclass
class Counters:
    """Process-wide construction/execution counters.

    ``transform_constructions`` counts every value-bearing transform build:
    :class:`~repro.core.dbt.DBTByRowsTransform` (and its subclasses),
    :class:`~repro.core.dbt_transposed.DBTTransposedByRowsTransform`,
    :class:`~repro.core.operands.MatMulOperands` and
    :class:`~repro.extensions.sparse.BlockSparseDBTTransform`.
    ``plan_builds`` / ``plan_executions`` are bumped by the api layer
    (lock-free: exact for single-threaded callers, best-effort under the
    multithreaded service shard pool).  ``service_requests`` /
    ``service_batches`` are bumped by the :mod:`repro.service` layer,
    serialized on one shared lock across all shards, so they stay exact
    even though the service is multithreaded.
    """

    transform_constructions: int = 0
    plan_builds: int = 0
    plan_executions: int = 0
    service_requests: int = 0
    service_batches: int = 0

    def snapshot(self) -> "Counters":
        """An independent copy for before/after diffing."""
        return Counters(
            transform_constructions=self.transform_constructions,
            plan_builds=self.plan_builds,
            plan_executions=self.plan_executions,
            service_requests=self.service_requests,
            service_batches=self.service_batches,
        )

    def delta(self, earlier: "Counters") -> "Counters":
        """Counter increments since ``earlier`` (a prior :meth:`snapshot`)."""
        return Counters(
            transform_constructions=self.transform_constructions
            - earlier.transform_constructions,
            plan_builds=self.plan_builds - earlier.plan_builds,
            plan_executions=self.plan_executions - earlier.plan_executions,
            service_requests=self.service_requests - earlier.service_requests,
            service_batches=self.service_batches - earlier.service_batches,
        )


#: The process-wide counter instance.
counters = Counters()


def transform_constructions() -> int:
    """Convenience accessor for the most frequently asserted counter."""
    return counters.transform_constructions
