"""Lightweight process-wide counters for the plan/execute split.

The whole point of the :mod:`repro.api` plan cache is that a *warm* solve
streams operand values through a prebuilt :class:`~repro.api.plan.ExecutionPlan`
without rebuilding any DBT transform, operand band or partial-result
placement.  "No transform construction happened" is an invisible property,
so the transform constructors report to the counters below and tests (and
the plan-cache benchmark) assert that the counter does not move across a
warm solve.

The counters remain plain integers on a module-level object — snapshot
and diff from anywhere without importing the api layer — but every bump
now goes through :meth:`Counters.bump`, which serializes on the shared
:data:`registry` lock and mirrors each field into a typed
:class:`~repro.obs.metrics.Counter` instrument.  That closes the old
thread-safety caveat: ``plan_builds`` / ``plan_executions`` used to be
lock-free ``+=`` on the solve path and therefore only best-effort under
the multithreaded :mod:`repro.service` shard pool; they are now exact
everywhere, and the same numbers are visible through
``registry.snapshot()`` alongside the service metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from .obs.metrics import MetricsRegistry

__all__ = [
    "CacheStats",
    "Counters",
    "counters",
    "registry",
    "transform_constructions",
]

#: Process-wide metrics registry; :data:`counters` mirrors into it, and
#: standalone services fall back to it when not given their own.
registry = MetricsRegistry()


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting of one plan cache.

    Shared accounting currency across layers: the api layer's
    :class:`~repro.api.plan.PlanCache`, the per-shape engine caches of
    :class:`~repro.core.plans.CachedMatVec` / ``CachedMatMul``, and the
    aggregated warm-reuse proof carried by
    :class:`~repro.iterative.result.IterativeResult`.  Lives here (rather
    than in :mod:`repro.api`) so the core and iterative layers can report
    cache accounting without importing the façade.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    maxsize: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __add__(self, other: "CacheStats") -> "CacheStats":
        """Fleet-wide accounting: sum counters across caches (e.g. shards)."""
        if not isinstance(other, CacheStats):
            return NotImplemented
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            size=self.size + other.size,
            maxsize=self.maxsize + other.maxsize,
        )


@dataclass
class Counters:
    """Process-wide construction/execution counters.

    ``transform_constructions`` counts every value-bearing transform build:
    :class:`~repro.core.dbt.DBTByRowsTransform` (and its subclasses),
    :class:`~repro.core.dbt_transposed.DBTTransposedByRowsTransform`,
    :class:`~repro.core.operands.MatMulOperands` and
    :class:`~repro.extensions.sparse.BlockSparseDBTTransform`.
    ``plan_builds`` / ``plan_executions`` are bumped by the api layer,
    ``service_requests`` / ``service_batches`` by the :mod:`repro.service`
    layer, ``iterative_sweeps`` by the :mod:`repro.iterative` solvers, and
    ``graph_compiles`` / ``graph_runs`` / ``fused_matvec_pairs`` by the
    :mod:`repro.graph` pipeline layer: one per
    :meth:`~repro.graph.compiler.GraphCompiler.compile`, one per
    :meth:`~repro.graph.program.PipelineProgram.run`, and one per pair of
    independent same-plan matvec stages executed through the array's
    overlapped contraflow path.  All bumps go through :meth:`bump` and
    serialize on the shared :data:`registry` lock, so every field is
    exact even under the multithreaded service shard pool.
    """

    transform_constructions: int = 0
    plan_builds: int = 0
    plan_executions: int = 0
    service_requests: int = 0
    service_batches: int = 0
    iterative_sweeps: int = 0
    graph_compiles: int = 0
    graph_runs: int = 0
    fused_matvec_pairs: int = 0
    #: Plan persistence (:mod:`repro.store`): disk lookups that produced a
    #: usable plan, lookups that found nothing, artifacts that failed
    #: validation (bad magic/version/checksum/payload — each falls back to
    #: a recompile, never an exception), and artifacts written.
    plan_store_hits: int = 0
    plan_store_misses: int = 0
    plan_store_errors: int = 0
    plan_store_writes: int = 0

    def bump(self, name: str, n: int = 1) -> None:
        """Increment field ``name`` by ``n``, exactly, from any thread.

        The increment and its mirror into the :data:`registry` counter
        instrument happen under one lock hold, so the dataclass view and
        the registry view never disagree.
        """
        with registry.lock:
            setattr(self, name, getattr(self, name) + n)
            if self is counters:
                registry.counter("repro." + name).inc(n)

    def snapshot(self) -> "Counters":
        """An independent copy for before/after diffing."""
        with registry.lock:
            return Counters(
                **{f.name: getattr(self, f.name) for f in fields(self)}
            )

    def delta(self, earlier: "Counters") -> "Counters":
        """Counter increments since ``earlier`` (a prior :meth:`snapshot`)."""
        return Counters(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )


#: The process-wide counter instance.
counters = Counters()


def transform_constructions() -> int:
    """Convenience accessor for the most frequently asserted counter."""
    return counters.transform_constructions
