"""Lightweight process-wide counters for the plan/execute split.

The whole point of the :mod:`repro.api` plan cache is that a *warm* solve
streams operand values through a prebuilt :class:`~repro.api.plan.ExecutionPlan`
without rebuilding any DBT transform, operand band or partial-result
placement.  "No transform construction happened" is an invisible property,
so the transform constructors report to the counters below and tests (and
the plan-cache benchmark) assert that the counter does not move across a
warm solve.

The counters are deliberately plain integers on a module-level object:
they cost one attribute increment per construction, need no locking for
the CPython use here, and can be snapshotted/diffed from anywhere without
importing the api layer.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Counters", "counters", "transform_constructions"]


@dataclass
class Counters:
    """Process-wide construction/execution counters.

    ``transform_constructions`` counts every value-bearing transform build:
    :class:`~repro.core.dbt.DBTByRowsTransform` (and its subclasses),
    :class:`~repro.core.dbt_transposed.DBTTransposedByRowsTransform`,
    :class:`~repro.core.operands.MatMulOperands` and
    :class:`~repro.extensions.sparse.BlockSparseDBTTransform`.
    ``plan_builds`` / ``plan_executions`` are bumped by the api layer.
    """

    transform_constructions: int = 0
    plan_builds: int = 0
    plan_executions: int = 0

    def snapshot(self) -> "Counters":
        """An independent copy for before/after diffing."""
        return Counters(
            transform_constructions=self.transform_constructions,
            plan_builds=self.plan_builds,
            plan_executions=self.plan_executions,
        )

    def delta(self, earlier: "Counters") -> "Counters":
        """Counter increments since ``earlier`` (a prior :meth:`snapshot`)."""
        return Counters(
            transform_constructions=self.transform_constructions
            - earlier.transform_constructions,
            plan_builds=self.plan_builds - earlier.plan_builds,
            plan_executions=self.plan_executions - earlier.plan_executions,
        )


#: The process-wide counter instance.
counters = Counters()


def transform_constructions() -> int:
    """Convenience accessor for the most frequently asserted counter."""
    return counters.transform_constructions
