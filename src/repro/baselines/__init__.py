"""Comparison strategies: the NumPy oracle and the alternatives the paper cites."""

from .block_partition import BlockPartitionedMatVec, BlockPartitionedResult
from .naive_band import NaiveBaselineResult, NaiveBlockMatMul, NaiveBlockMatVec
from .prt import PRTMatVec, PRTSolution, PRTTransform
from .reference import reference_matmul, reference_matvec

__all__ = [
    "BlockPartitionedMatVec",
    "BlockPartitionedResult",
    "NaiveBaselineResult",
    "NaiveBlockMatMul",
    "NaiveBlockMatVec",
    "PRTMatVec",
    "PRTSolution",
    "PRTTransform",
    "reference_matmul",
    "reference_matvec",
]
