"""Dense NumPy reference operations.

Every simulated execution in the test-suite and in the benchmarks is
checked against these functions; they are deliberately the most boring
possible implementations so that there is no doubt about what "correct"
means.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..matrices.dense import as_matrix, as_vector

__all__ = ["reference_matvec", "reference_matmul"]


def reference_matvec(
    matrix: np.ndarray, x: np.ndarray, b: Optional[np.ndarray] = None
) -> np.ndarray:
    """``y = A x + b`` computed directly with NumPy."""
    matrix = as_matrix(matrix, "matrix")
    x = as_vector(x, "x")
    y = matrix @ x
    if b is not None:
        y = y + as_vector(b, "b")
    return y


def reference_matmul(
    a: np.ndarray, b: np.ndarray, e: Optional[np.ndarray] = None
) -> np.ndarray:
    """``C = A B + E`` computed directly with NumPy."""
    a = as_matrix(a, "A")
    b = as_matrix(b, "B")
    c = a @ b
    if e is not None:
        c = c + as_matrix(e, "E")
    return c
