"""Block partitioning with accumulation outside the array.

Hwang and Cheng (reference /2/ of the paper) proposed partitioned matrix
algorithms in which a fixed-size arithmetic array processes one operand
block at a time and a host accumulates the partial results.  Transferred to
Kung's linear array, the strategy becomes: transform every ``w x w`` block
independently (each block is exactly the PRT special case, so the array
size stays ``w``), run the blocks one after another, and let the host add
the per-block partial results together.

Compared with DBT-by-rows this keeps the small array but gives up the two
things the paper's transformation provides:

* chaining — the array drains between blocks, so the pipeline fill/drain
  overhead is paid ``n_bar * m_bar`` times instead of once, and
* in-array accumulation — the host performs ``(m_bar - 1) * n`` additions
  that DBT's feedback performs inside the array.

The benchmark X1 uses this baseline to isolate the value of the feedback
mechanism from the value of the triangular re-packing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..backends.registry import COMPILED, VECTORIZED, resolve_backend
from ..backends.vectorized import LinearSweepPlan, linear_total_cycles
from ..errors import ShapeError
from ..matrices.blocks import BlockGrid
from ..matrices.dense import as_matrix, as_vector
from ..matrices.padding import validate_array_size
from ..systolic.feedback import ExternalSource
from ..systolic.linear_array import LinearContraflowArray, LinearProblem
from ..core.dbt import DBTByRowsTransform

__all__ = ["BlockPartitionedResult", "BlockPartitionedMatVec"]


@dataclass
class BlockPartitionedResult:
    """Aggregate measurements of a block-partitioned execution."""

    result: np.ndarray
    processing_elements: int
    total_steps: int
    mac_operations: int
    external_additions: int
    block_runs: int

    @property
    def utilization(self) -> float:
        if self.total_steps == 0:
            return 0.0
        return self.mac_operations / (self.processing_elements * self.total_steps)


class BlockPartitionedMatVec:
    """``y = A x + b`` block by block on a ``w`` cell array, host accumulation."""

    def __init__(self, w: int, backend: str = "simulate"):
        self._w = validate_array_size(w)
        self._backend = resolve_backend(backend)
        # One shape-keyed sweep skeleton serves every w x w block.
        self._sweep: Optional[LinearSweepPlan] = None
        if self._backend == VECTORIZED:
            self._sweep = LinearSweepPlan(
                w=self._w, n=self._w, m=self._w, n_bar=1, m_bar=1,
                useful_operations=self._w * self._w,
            )
        elif self._backend == COMPILED:
            from ..compiled.lowering import lower_linear_plan

            self._sweep = lower_linear_plan(
                w=self._w, n=self._w, m=self._w, n_bar=1, m_bar=1,
                useful_operations=self._w * self._w,
            )

    @property
    def w(self) -> int:
        return self._w

    @property
    def array_size(self) -> int:
        return self._w

    def solve(
        self, matrix: np.ndarray, x: np.ndarray, b: Optional[np.ndarray] = None
    ) -> BlockPartitionedResult:
        matrix = as_matrix(matrix, "matrix")
        x = as_vector(x, "x")
        if x.shape[0] != matrix.shape[1]:
            raise ShapeError(
                f"x has length {x.shape[0]} but the matrix has {matrix.shape[1]} columns"
            )
        n, m = matrix.shape
        w = self._w
        grid = BlockGrid(matrix, w)
        x_padded = np.zeros(grid.block_cols * w, dtype=float)
        x_padded[:m] = x
        y_padded = np.zeros(grid.block_rows * w, dtype=float)
        if b is not None:
            b = as_vector(b, "b")
            if b.shape[0] != n:
                raise ShapeError(f"b has length {b.shape[0]}, expected {n}")
            y_padded[:n] = b

        array = LinearContraflowArray(w)
        total_steps = 0
        total_macs = 0
        external_additions = 0
        runs = 0
        for i in range(grid.block_rows):
            for j in range(grid.block_cols):
                if self._sweep is not None:
                    _outputs, partial = self._sweep.sweep(
                        grid.block(i, j), x_padded[j * w : (j + 1) * w], None
                    )
                    total_steps += linear_total_cycles(w, self._sweep.band_rows)
                    total_macs += self._sweep.mac_operations
                else:
                    transform = DBTByRowsTransform(grid.block(i, j), w)
                    sources: List[object] = [
                        ExternalSource(value=0.0, tag=("b", i * w + offset))
                        for offset in range(w)
                    ]
                    problem = LinearProblem(
                        band=transform.band,
                        x=transform.transform_x(x_padded[j * w : (j + 1) * w]),
                        y_sources=sources,
                        x_tags=transform.x_tags(),
                        output_tags=transform.output_tags(),
                    )
                    run = array.run(problem)
                    total_steps += run.total_cycles
                    total_macs += run.report.mac_operations
                    partial = transform.recover_y(run.y_per_problem[0])
                runs += 1
                y_padded[i * w : (i + 1) * w] += partial
                external_additions += w

        return BlockPartitionedResult(
            result=y_padded[:n].copy(),
            processing_elements=w,
            total_steps=total_steps,
            mac_operations=total_macs,
            external_additions=external_additions,
            block_runs=runs,
        )
