"""The naive strategy the paper argues against: dense blocks as full bands.

Kung's arrays are designed for band matrices.  The straightforward way to
run a *dense* problem on them — and the reason the paper says those arrays
"suffer a throughput decrease when dense matrices are operated" — is to
treat every ``w x w`` dense block as a band matrix of full bandwidth
``2w - 1``, run the blocks one after another, and add the per-block partial
results outside the array:

* the array must be almost twice as large (``2w - 1`` cells instead of
  ``w`` for matrix-vector; ``(2w-1) x (2w-1)`` instead of ``w x w`` for
  matrix-matrix),
* the blocks cannot be chained, so the pipeline drains between blocks, and
* the partial results have to be accumulated by a host outside the array.

The classes here implement exactly that strategy on the same cycle-accurate
simulators used by the DBT pipelines, so the benchmark X1 can compare
utilization, external operation counts and array sizes on equal footing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..backends.registry import COMPILED, VECTORIZED, resolve_backend
from ..backends.vectorized import (
    full_band_block_matmul,
    full_band_block_matvec,
    hex_structural_metrics,
)
from ..errors import ShapeError
from ..matrices.banded import BandMatrix
from ..matrices.blocks import BlockGrid
from ..matrices.dense import as_matrix, as_vector
from ..matrices.padding import validate_array_size
from ..systolic.feedback import ExternalSource
from ..systolic.hex_array import CTokenPlan, HexagonalArray
from ..systolic.linear_array import LinearContraflowArray, LinearProblem

__all__ = ["NaiveBaselineResult", "NaiveBlockMatVec", "NaiveBlockMatMul"]


@dataclass
class NaiveBaselineResult:
    """Aggregate measurements of a naive block-by-block execution."""

    result: np.ndarray
    processing_elements: int
    total_steps: int
    mac_operations: int
    external_additions: int
    block_runs: int

    @property
    def utilization(self) -> float:
        """Overall PE utilization across the whole block sequence."""
        if self.total_steps == 0:
            return 0.0
        return self.mac_operations / (self.processing_elements * self.total_steps)


class NaiveBlockMatVec:
    """``y = A x + b`` computed block by block on a ``2w - 1`` cell array."""

    def __init__(self, w: int, backend: str = "simulate"):
        self._w = validate_array_size(w)
        self._backend = resolve_backend(backend)

    @property
    def w(self) -> int:
        return self._w

    @property
    def array_size(self) -> int:
        """Cells needed to hold a full ``w x w`` block as a band: ``2w - 1``."""
        return 2 * self._w - 1

    def solve(
        self, matrix: np.ndarray, x: np.ndarray, b: Optional[np.ndarray] = None
    ) -> NaiveBaselineResult:
        matrix = as_matrix(matrix, "matrix")
        x = as_vector(x, "x")
        if x.shape[0] != matrix.shape[1]:
            raise ShapeError(
                f"x has length {x.shape[0]} but the matrix has {matrix.shape[1]} columns"
            )
        n, m = matrix.shape
        w = self._w
        grid = BlockGrid(matrix, w)
        x_padded = np.zeros(grid.block_cols * w, dtype=float)
        x_padded[:m] = x
        y_padded = np.zeros(grid.block_rows * w, dtype=float)
        if b is not None:
            b = as_vector(b, "b")
            if b.shape[0] != n:
                raise ShapeError(f"b has length {b.shape[0]}, expected {n}")
            y_padded[:n] = b

        array = LinearContraflowArray(self.array_size)
        total_steps = 0
        total_macs = 0
        external_additions = 0
        runs = 0
        for i in range(grid.block_rows):
            for j in range(grid.block_cols):
                block = grid.block(i, j)
                if self._backend in (VECTORIZED, COMPILED):
                    partial = full_band_block_matvec(
                        block, x_padded[j * w : (j + 1) * w]
                    )
                    # A full-bandwidth w x w block on 2w - 1 cells: last
                    # of the w rows injected at cycle 2 (w - 1), then
                    # 2w - 1 cells; all w^2 band positions compute.
                    total_steps += 2 * (w - 1) + self.array_size
                    total_macs += w * w
                else:
                    band = BandMatrix.from_dense(block, lower=w - 1, upper=w - 1)
                    sources: List[object] = [
                        ExternalSource(value=0.0, tag=("b", i * w + offset))
                        for offset in range(w)
                    ]
                    problem = LinearProblem(
                        band=band,
                        x=x_padded[j * w : (j + 1) * w],
                        y_sources=sources,
                    )
                    run = array.run(problem)
                    total_steps += run.total_cycles
                    total_macs += run.report.mac_operations
                    partial = run.y_per_problem[0]
                runs += 1
                # The host adds the block's partial result into y.
                y_padded[i * w : (i + 1) * w] += partial
                external_additions += w

        return NaiveBaselineResult(
            result=y_padded[:n].copy(),
            processing_elements=self.array_size,
            total_steps=total_steps,
            mac_operations=total_macs,
            external_additions=external_additions,
            block_runs=runs,
        )


class NaiveBlockMatMul:
    """``C = A B + E`` computed block by block on a ``(2w-1) x (2w-1)`` array."""

    def __init__(self, w: int, backend: str = "simulate"):
        self._w = validate_array_size(w)
        self._backend = resolve_backend(backend)
        if self._backend in (VECTORIZED, COMPILED):
            band = self._w - 1  # each dense block runs as a full band
            self._block_metrics = hex_structural_metrics(
                self._w, self._w, band, band, self._w, self._w, band, band
            )
        else:
            self._block_metrics = None

    @property
    def w(self) -> int:
        return self._w

    @property
    def array_size(self) -> int:
        return 2 * self._w - 1

    def solve(
        self, a: np.ndarray, b: np.ndarray, e: Optional[np.ndarray] = None
    ) -> NaiveBaselineResult:
        a = as_matrix(a, "A")
        b = as_matrix(b, "B")
        if a.shape[1] != b.shape[0]:
            raise ShapeError(f"cannot multiply shapes {a.shape} and {b.shape}")
        n, p = a.shape
        m = b.shape[1]
        w = self._w
        a_grid = BlockGrid(a, w)
        b_grid = BlockGrid(b, w)
        c_padded = np.zeros((a_grid.block_rows * w, b_grid.block_cols * w), dtype=float)
        if e is not None:
            e = as_matrix(e, "E")
            if e.shape != (n, m):
                raise ShapeError(f"E must have shape {(n, m)}, got {e.shape}")
            c_padded[:n, :m] = e

        array = HexagonalArray(self.array_size, self.array_size)
        total_steps = 0
        total_macs = 0
        external_additions = 0
        runs = 0
        for i in range(a_grid.block_rows):
            for j in range(b_grid.block_cols):
                for k in range(a_grid.block_cols):
                    if self._block_metrics is not None:
                        product = full_band_block_matmul(
                            a_grid.block(i, k), b_grid.block(k, j)
                        )
                        total_steps += self._block_metrics.c_stream_cycles
                        total_macs += self._block_metrics.mac_operations
                    else:
                        band_a = BandMatrix.from_dense(
                            a_grid.block(i, k), lower=w - 1, upper=w - 1
                        )
                        band_b = BandMatrix.from_dense(
                            b_grid.block(k, j), lower=w - 1, upper=w - 1
                        )
                        run = array.run(band_a, band_b, c_plan=CTokenPlan())
                        total_steps += run.c_stream_cycles
                        total_macs += run.report.mac_operations
                        product = run.c_band.to_dense()
                    runs += 1
                    # The host accumulates the block product into C.
                    c_padded[i * w : (i + 1) * w, j * w : (j + 1) * w] += product
                    external_additions += w * w

        return NaiveBaselineResult(
            result=c_padded[:n, :m].copy(),
            processing_elements=self.array_size ** 2,
            total_steps=total_steps,
            mac_operations=total_macs,
            external_additions=external_additions,
            block_runs=runs,
        )
