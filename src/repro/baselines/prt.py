"""The PRT transformation of Priester, Whitehouse, Bromley and Clary (1981).

Reference /6/ of the paper transforms a single dense ``w x w`` matrix into
a band matrix of bandwidth ``w`` (instead of the naive ``2w - 1``),
halving the required array size.  Section 2 of the paper observes that PRT
"is a particular case of the DBT-by-rows when ``n_bar = m_bar = 1``", so
this baseline is implemented literally that way: it accepts only matrices
that fit in a single ``w x w`` block and delegates to the DBT machinery,
which both documents the relationship and lets the tests verify the claim
(T4) by comparing the two transformations block against block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ShapeError
from ..matrices.dense import as_matrix, as_vector
from ..matrices.padding import validate_array_size
from ..systolic.linear_array import LinearRunResult
from ..core.dbt import DBTByRowsTransform
from ..core.matvec import MatVecSolution
from ..core.plans import CachedMatVec

__all__ = ["PRTTransform", "PRTMatVec"]


class PRTTransform(DBTByRowsTransform):
    """PRT as the single-block special case of DBT-by-rows.

    The constructor refuses matrices larger than one ``w x w`` block,
    because PRT — unlike DBT — has no rule for chaining several blocks
    through the array.
    """

    def __init__(self, matrix: np.ndarray, w: int):
        w = validate_array_size(w)
        matrix = as_matrix(matrix, "matrix")
        if matrix.shape[0] > w or matrix.shape[1] > w:
            raise ShapeError(
                f"PRT only handles one {w} x {w} block; got shape {matrix.shape}. "
                f"Use DBTByRowsTransform for larger problems."
            )
        super().__init__(matrix, w)
        if self.n_bar != 1 or self.m_bar != 1:
            raise ShapeError("PRT requires n_bar == m_bar == 1")


@dataclass
class PRTSolution:
    """Result of a PRT execution on the linear array."""

    y: np.ndarray
    w: int
    transform: PRTTransform
    run: LinearRunResult

    @property
    def measured_steps(self) -> int:
        return self.run.total_cycles

    @property
    def measured_utilization(self) -> float:
        return self.run.report.utilization


class PRTMatVec:
    """``y = A x + b`` for one ``w x w`` dense block via the PRT transformation."""

    def __init__(self, w: int, backend: str = "simulate"):
        self._w = validate_array_size(w)
        self._engine = CachedMatVec(self._w, backend=backend)

    @property
    def w(self) -> int:
        return self._w

    @property
    def array_size(self) -> int:
        """Cells required: ``w`` — half of the naive ``2w - 1`` requirement."""
        return self._w

    def solve(
        self, matrix: np.ndarray, x: np.ndarray, b: Optional[np.ndarray] = None
    ) -> PRTSolution:
        matrix = as_matrix(matrix, "matrix")
        if matrix.shape[0] > self._w or matrix.shape[1] > self._w:
            raise ShapeError(
                f"PRT only handles one {self._w} x {self._w} block; "
                f"got shape {matrix.shape}"
            )
        x = as_vector(x, "x")
        solution: MatVecSolution = self._engine.solve(matrix, x, b)
        transform = PRTTransform(matrix, self._w)
        return PRTSolution(
            y=solution.y, w=self._w, transform=transform, run=solution.run
        )
