"""repro: size-independent matrix problems on fixed-size systolic arrays.

A faithful, executable reproduction of

    J.J. Navarro, J.M. Llaberia, M. Valero,
    "Computing Size-Independent Matrix Problems on Systolic Array
    Processors", ISCA 1986, pp. 271-278.

The package contains the paper's DBT transformations (``repro.core``),
cycle-accurate simulators of H.T. Kung's linear and hexagonal contraflow
systolic arrays (``repro.systolic``), the matrix infrastructure they share
(``repro.matrices``), the comparison strategies the paper cites
(``repro.baselines``), the applications Section 4 mentions
(``repro.extensions``), and figure/report regeneration helpers
(``repro.analysis``).

Quickstart::

    import numpy as np
    from repro import SizeIndependentMatVec

    A = np.random.default_rng(0).normal(size=(10, 7))
    x = np.random.default_rng(1).normal(size=7)
    solution = SizeIndependentMatVec(w=4).solve(A, x)
    assert np.allclose(solution.y, A @ x)
    print(solution.summary())
"""

from .core.analytic import (
    MatMulModel,
    MatVecModel,
    matmul_steps,
    matmul_utilization,
    matvec_steps,
    matvec_utilization,
)
from .core.dbt import DBTByRowsTransform, dbt_by_rows
from .core.dbt_transposed import DBTTransposedByRowsTransform, dbt_transposed_by_rows
from .core.matmul import MatMulSolution, SizeIndependentMatMul
from .core.matvec import MatVecSolution, SizeIndependentMatVec
from .core.operands import MatMulOperands
from .core.recovery import PartialResultMap
from .errors import (
    ArraySizeError,
    BandwidthError,
    FeedbackError,
    RecoveryError,
    ReproError,
    ScheduleError,
    ShapeError,
    SimulationError,
    TransformError,
)
from .matrices.banded import BandMatrix
from .matrices.blocks import BlockGrid
from .systolic.feedback import ShiftRegisterFeedback, SpiralFeedbackTopology
from .systolic.hex_array import HexagonalArray
from .systolic.linear_array import LinearContraflowArray, LinearProblem

__version__ = "1.0.0"

__all__ = [
    "ArraySizeError",
    "BandMatrix",
    "BandwidthError",
    "BlockGrid",
    "DBTByRowsTransform",
    "DBTTransposedByRowsTransform",
    "FeedbackError",
    "HexagonalArray",
    "LinearContraflowArray",
    "LinearProblem",
    "MatMulModel",
    "MatMulOperands",
    "MatMulSolution",
    "MatVecModel",
    "MatVecSolution",
    "PartialResultMap",
    "RecoveryError",
    "ReproError",
    "ScheduleError",
    "ShapeError",
    "ShiftRegisterFeedback",
    "SimulationError",
    "SizeIndependentMatMul",
    "SizeIndependentMatVec",
    "SpiralFeedbackTopology",
    "TransformError",
    "__version__",
    "dbt_by_rows",
    "dbt_transposed_by_rows",
    "matmul_steps",
    "matmul_utilization",
    "matvec_steps",
    "matvec_utilization",
]
