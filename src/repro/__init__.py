"""repro: size-independent matrix problems on fixed-size systolic arrays.

A faithful, executable reproduction of

    J.J. Navarro, J.M. Llaberia, M. Valero,
    "Computing Size-Independent Matrix Problems on Systolic Array
    Processors", ISCA 1986, pp. 271-278.

The package contains the paper's DBT transformations (``repro.core``),
cycle-accurate simulators of H.T. Kung's linear and hexagonal contraflow
systolic arrays (``repro.systolic``), the matrix infrastructure they share
(``repro.matrices``), the comparison strategies the paper cites
(``repro.baselines``), the applications Section 4 mentions
(``repro.extensions``), and figure/report regeneration helpers
(``repro.analysis``).

Quickstart (typed problems through the plan/execute façade)::

    import numpy as np
    from repro import ArraySpec, MatVec, Solver

    solver = Solver(ArraySpec(w=4))
    A = np.random.default_rng(0).normal(size=(10, 7))
    x = np.random.default_rng(1).normal(size=7)
    solution = solver.solve(MatVec(A, x))
    assert np.allclose(solution.values, A @ x)
    print(solution.summary())

Multi-stage workloads compose typed problems into pipeline graphs
(``repro.graph``) that compile once and execute as a whole::

    from repro import Graph, GraphCompiler, MatMul

    y = MatMul(A2, B2) @ x2                     # lazy DAG via operator sugar
    result = GraphCompiler(solver).run(Graph(y))

The string spelling ``solver.solve("matvec", A, x)`` remains a supported
shim over the typed problems, and the one-class-per-problem entry points
(``SizeIndependentMatVec``, ``SizeIndependentMatMul``) remain available
as deprecation shims.
"""

from .api import (
    ArraySpec,
    ExecutionOptions,
    ExecutionPlan,
    Solution,
    Solver,
)
from .backends import available_backends, resolve_backend
from .core.analytic import (
    MatMulModel,
    MatVecModel,
    matmul_steps,
    matmul_utilization,
    matvec_steps,
    matvec_utilization,
)
from .core.dbt import DBTByRowsTransform, dbt_by_rows
from .core.dbt_transposed import DBTTransposedByRowsTransform, dbt_transposed_by_rows
from .core.matmul import MatMulSolution, SizeIndependentMatMul
from .core.matvec import MatVecSolution, SizeIndependentMatVec
from .core.operands import MatMulOperands
from .core.recovery import PartialResultMap
from .errors import (
    ArraySizeError,
    BackendError,
    BandwidthError,
    ConvergenceError,
    DeadlineExceededError,
    FeedbackError,
    GraphCycleError,
    GraphError,
    RecoveryError,
    ReproError,
    ScheduleError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ShapeError,
    SimulationError,
    TransformError,
)
from .graph import (
    CG,
    LU,
    Graph,
    GraphCompiler,
    Jacobi,
    MatMul,
    MatVec,
    PipelineProgram,
    PipelineResult,
    Power,
    Problem,
    Ref,
    Refine,
    SOR,
    Sparse,
    Triangular,
    problem_types,
)
from .iterative import ConvergenceCriteria, IterativeResult
from .matrices.banded import BandMatrix
from .nn import (
    MLP,
    Bias,
    Dense,
    Dequantize,
    QuantParams,
    Quantize,
    QuantizedMLP,
    Relu,
)
from .matrices.blocks import BlockGrid
from .service import ServiceStats, SolverService
from .systolic.feedback import ShiftRegisterFeedback, SpiralFeedbackTopology
from .systolic.hex_array import HexagonalArray
from .systolic.linear_array import LinearContraflowArray, LinearProblem

__version__ = "1.1.0"

__all__ = [
    "ArraySizeError",
    "ArraySpec",
    "BackendError",
    "BandMatrix",
    "BandwidthError",
    "Bias",
    "BlockGrid",
    "CG",
    "ConvergenceCriteria",
    "ConvergenceError",
    "DBTByRowsTransform",
    "DBTTransposedByRowsTransform",
    "DeadlineExceededError",
    "Dense",
    "Dequantize",
    "ExecutionOptions",
    "ExecutionPlan",
    "FeedbackError",
    "Graph",
    "GraphCompiler",
    "GraphCycleError",
    "GraphError",
    "HexagonalArray",
    "IterativeResult",
    "Jacobi",
    "LU",
    "LinearContraflowArray",
    "LinearProblem",
    "MLP",
    "MatMul",
    "MatMulModel",
    "MatMulOperands",
    "MatMulSolution",
    "MatVec",
    "MatVecModel",
    "MatVecSolution",
    "PartialResultMap",
    "PipelineProgram",
    "PipelineResult",
    "Power",
    "Problem",
    "QuantParams",
    "Quantize",
    "QuantizedMLP",
    "RecoveryError",
    "Ref",
    "Refine",
    "Relu",
    "ReproError",
    "SOR",
    "ScheduleError",
    "ServiceClosedError",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceStats",
    "ShapeError",
    "ShiftRegisterFeedback",
    "SimulationError",
    "SizeIndependentMatMul",
    "SizeIndependentMatVec",
    "Solution",
    "Solver",
    "SolverService",
    "Sparse",
    "SpiralFeedbackTopology",
    "TransformError",
    "Triangular",
    "__version__",
    "available_backends",
    "dbt_by_rows",
    "dbt_transposed_by_rows",
    "matmul_steps",
    "matmul_utilization",
    "matvec_steps",
    "matvec_utilization",
    "problem_types",
    "resolve_backend",
]
