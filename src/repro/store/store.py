"""The plan store: a content-addressed directory of compiled plans.

Plans are value-independent — keyed only by ``(kind, shapes, w,
options)`` — which makes a compiled gather table a perfect durable
artifact: any process that derives the same key can reuse the same
compiled geometry.  A :class:`PlanStore` is a flat directory of
artifacts in the :mod:`repro.store.format` framing, each named by a
BLAKE2b-128 digest of the key's canonical placement encoding
(:func:`repro.service.placement.canonical_key_bytes` — the same bytes
that route the key to a shard, so the on-disk name and the shard
placement can never disagree about what a key *is*).

Contract, load side: :meth:`PlanStore.load` returns the plan or
``None`` — never raises.  A missing artifact is a miss; an unreadable,
truncated, corrupt, version-skewed or miskeyed artifact is an *error*
(counted separately, ``plan_store_errors``) but still just ``None``:
the caller compiles as if the store were cold.  Write side:
:meth:`save` is atomic (temp file + ``os.replace``) so a crashed writer
can never leave a half-written artifact that a later reader would have
to distrust, and raises :class:`~repro.errors.PlanStoreError` on
failure — which the :class:`~repro.api.solver.Solver` write-through
path catches and counts, keeping persistence strictly best-effort on
the serving path.
"""

from __future__ import annotations

import hashlib
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from ..api.plan import ExecutionPlan, PlanKey
from ..errors import PlanStoreError
from ..instrumentation import counters
from ..service.placement import canonical_key_bytes
from .format import PlanFormatError, decode_plan, encode_plan

__all__ = ["PlanStore", "StoreStats"]

#: Artifact filename suffix.
SUFFIX = ".plan"

#: Digest width of the content-hash filenames (hex chars = 2x this).
_NAME_DIGEST_SIZE = 16


def _artifact_name(key: PlanKey) -> str:
    digest = hashlib.blake2b(
        canonical_key_bytes(key), digest_size=_NAME_DIGEST_SIZE
    ).hexdigest()
    return digest + SUFFIX


@dataclass(frozen=True)
class StoreStats:
    """Lifetime accounting of one :class:`PlanStore` instance."""

    hits: int = 0
    misses: int = 0
    errors: int = 0
    writes: int = 0

    def describe(self) -> str:
        return (
            f"PlanStore: {self.hits} hit(s), {self.misses} miss(es), "
            f"{self.errors} error(s), {self.writes} write(s)"
        )


class PlanStore:
    """A directory of persisted :class:`~repro.api.plan.ExecutionPlan`.

    Parameters
    ----------
    root:
        Directory holding the artifacts (created unless ``readonly``).
    readonly:
        When true, :meth:`save` becomes a no-op returning ``None`` —
        for serving fleets that warm-start from a shared artifact
        directory they must not mutate.

    Thread-safe: filesystem operations are naturally concurrent (loads
    read distinct immutable files, saves replace atomically) and the
    stats counters serialize on one lock.
    """

    def __init__(self, root: "Path | str", readonly: bool = False):
        self._root = Path(root)
        self._readonly = bool(readonly)
        if not self._readonly:
            self._root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._errors = 0
        self._writes = 0

    # -- introspection ----------------------------------------------------------
    @property
    def root(self) -> Path:
        return self._root

    @property
    def readonly(self) -> bool:
        return self._readonly

    @property
    def stats(self) -> StoreStats:
        with self._lock:
            return StoreStats(
                hits=self._hits,
                misses=self._misses,
                errors=self._errors,
                writes=self._writes,
            )

    def path_for(self, key: PlanKey) -> Path:
        """The artifact path ``key`` maps to (whether or not it exists)."""
        return self._root / _artifact_name(key)

    def __contains__(self, key: PlanKey) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        """Artifacts currently on disk (not loads or validity)."""
        try:
            return sum(
                1 for entry in self._root.iterdir()
                if entry.name.endswith(SUFFIX)
            )
        except OSError:
            return 0

    def _count(self, field: str, bump: str) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + 1)
        counters.bump(bump)

    # -- the read side (never raises) ---------------------------------------------
    def load(self, key: PlanKey) -> Optional[ExecutionPlan]:
        """The persisted plan for ``key``, or ``None``.

        A missing artifact counts a miss; an invalid one counts an
        error.  Both return ``None`` so the caller falls back to
        compiling — the store can only ever *remove* cold-start cost.
        The loaded plan's key must equal the requested key (a hash
        collision or renamed artifact is treated as corruption).
        """
        path = self.path_for(key)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            self._count("_misses", "plan_store_misses")
            return None
        except OSError:
            self._count("_errors", "plan_store_errors")
            return None
        try:
            stored_key, plan = decode_plan(data)
        except PlanFormatError:
            self._count("_errors", "plan_store_errors")
            return None
        if stored_key != key:
            self._count("_errors", "plan_store_errors")
            return None
        self._count("_hits", "plan_store_hits")
        return plan

    def keys(self) -> List[PlanKey]:
        """The keys of every *valid* artifact on disk (invalid: counted)."""
        return [key for key, _plan in self.plans()]

    def plans(self) -> Iterator[Tuple[PlanKey, ExecutionPlan]]:
        """Iterate every valid persisted plan (for warm-starting).

        Invalid artifacts are skipped and counted as errors; iteration
        never raises.  Each yielded plan is a fresh deserialization —
        callers own placing it somewhere its executions serialize (the
        service adopts each plan onto its placed shard).
        """
        try:
            entries = sorted(
                entry for entry in self._root.iterdir()
                if entry.name.endswith(SUFFIX)
            )
        except OSError:
            return
        for path in entries:
            try:
                data = path.read_bytes()
            except OSError:
                self._count("_errors", "plan_store_errors")
                continue
            try:
                key, plan = decode_plan(data)
            except PlanFormatError:
                self._count("_errors", "plan_store_errors")
                continue
            if path.name != _artifact_name(key):
                self._count("_errors", "plan_store_errors")
                continue
            self._count("_hits", "plan_store_hits")
            yield key, plan

    # -- the write side -----------------------------------------------------------
    def save(self, key: PlanKey, plan: ExecutionPlan) -> Optional[Path]:
        """Persist ``plan`` under ``key`` atomically; the artifact path.

        Returns ``None`` (silently) on a readonly store.  Raises
        :class:`~repro.errors.PlanStoreError` when the plan cannot be
        encoded or the artifact cannot be written — callers on a hot
        path catch it and keep serving from the in-memory cache.
        """
        if self._readonly:
            return None
        if plan.key != key:
            raise PlanStoreError(
                f"plan key {plan.key!r} does not match store key {key!r}"
            )
        path = self.path_for(key)
        try:
            data = encode_plan(plan)
        except Exception as exc:
            raise PlanStoreError(
                f"cannot serialize plan {plan.describe()}: {exc!r}"
            ) from exc
        tmp = path.with_name(path.name + f".tmp.{os.getpid()}.{id(plan):x}")
        try:
            tmp.write_bytes(data)
            os.replace(tmp, path)
        except OSError as exc:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise PlanStoreError(
                f"cannot write plan artifact {path}: {exc!r}"
            ) from exc
        self._count("_writes", "plan_store_writes")
        return path

    def clear(self) -> int:
        """Delete every artifact; the number removed."""
        if self._readonly:
            raise PlanStoreError("cannot clear a readonly store")
        removed = 0
        try:
            entries = list(self._root.iterdir())
        except OSError:
            return 0
        for entry in entries:
            if not entry.name.endswith(SUFFIX):
                continue
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def describe(self) -> str:
        return (
            f"PlanStore at {self._root} "
            f"({len(self)} artifact(s){', readonly' if self._readonly else ''}); "
            + self.stats.describe()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PlanStore(root={str(self._root)!r}, readonly={self._readonly})"
        )
