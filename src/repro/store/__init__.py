"""Plan persistence: compiled plans as durable on-disk artifacts.

The plan/execute split keys every compiled plan by ``(kind, shapes, w,
options)`` and nothing else — plans are value-independent, so the ~100x
cold-compile penalty a fresh process pays on request #1 buys an
artifact any *other* process could have reused.  This package closes
that loop:

* :mod:`repro.store.format` — the framed artifact encoding: magic,
  format version, payload checksum, pickled plan payload.  Validation
  happens before trust; version skew and corruption are recompiles,
  never crashes.
* :class:`~repro.store.store.PlanStore` — a content-addressed artifact
  directory (filenames are digests of the key's canonical placement
  encoding), with an atomic write path and a never-raising read path.

Wire-up: pass ``store=`` to :class:`~repro.api.solver.Solver` and a
cache miss tries disk before compiling (write-through on compile); pass
``store=`` to :class:`~repro.service.service.SolverService` and every
shard solver shares the store — with ``warm_start=True`` (the default
when a store is given) the service preloads each persisted plan onto
its placed shard at construction, so a cold process answers request #1
at warm-cache latency with zero plan builds.

Accounting: ``plan_store_hits`` / ``plan_store_misses`` /
``plan_store_errors`` / ``plan_store_writes`` on
:data:`repro.instrumentation.counters` (mirrored into the process
metrics registry), plus per-instance :attr:`PlanStore.stats`.
"""

from .format import FORMAT_VERSION, MAGIC, PlanFormatError
from .store import PlanStore, StoreStats

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "PlanFormatError",
    "PlanStore",
    "StoreStats",
]
