"""The on-disk plan artifact format: framing, versioning, checksums.

One artifact holds one compiled plan.  The layout is a fixed header
followed by a pickled payload::

    offset  size  field
    0       8     magic            b"RPROPLAN"
    8       4     format version   big-endian uint32 (FORMAT_VERSION)
    12      16    payload checksum BLAKE2b-128 of the payload bytes
    28      -     payload          pickle of a PlanPayload mapping

The payload carries everything needed to rebuild an
:class:`~repro.api.plan.ExecutionPlan` *except* the registry handler:
``{"key", "kind", "shapes", "spec", "options", "executor"}``.  Handlers
are process-local singletons resolved from the problem registry
(:func:`~repro.api.registry.get_handler`) at load time, so an artifact
never freezes registry state and a loaded plan dispatches through the
same handler object a freshly compiled one would.

Reading is strictly validate-then-trust: magic, version and checksum are
checked *before* the payload is unpickled, and the decoded plan's
recomputed key must equal the key stored in the payload.  Every reader
in :class:`~repro.store.store.PlanStore` treats any
:class:`PlanFormatError` as "artifact unusable, recompile" — corruption
degrades a cold start, it never crashes a process.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
from typing import Any, Dict, Tuple

from ..api.plan import ExecutionPlan, PlanKey, make_plan_key
from ..api.registry import get_handler

__all__ = [
    "FORMAT_VERSION",
    "HEADER_SIZE",
    "MAGIC",
    "PlanFormatError",
    "decode_plan",
    "encode_plan",
]

#: Artifact file signature; anything else is not a plan artifact.
MAGIC = b"RPROPLAN"

#: Bump on any incompatible payload change.  Readers reject every other
#: version (newer *or* older) — a version skew is a recompile, never a
#: best-effort parse of bytes written by different code.
FORMAT_VERSION = 1

_VERSION_STRUCT = struct.Struct(">I")
_CHECKSUM_SIZE = 16

#: Total fixed-header bytes preceding the payload.
HEADER_SIZE = len(MAGIC) + _VERSION_STRUCT.size + _CHECKSUM_SIZE


class PlanFormatError(Exception):
    """An artifact failed validation (framing, checksum, or payload).

    Internal to the store layer: :class:`~repro.store.store.PlanStore`
    converts it into a counted fallback-to-compile, so it never escapes
    to solver callers.
    """


def _checksum(payload: bytes) -> bytes:
    return hashlib.blake2b(payload, digest_size=_CHECKSUM_SIZE).digest()


def encode_plan(plan: ExecutionPlan) -> bytes:
    """Serialize one compiled plan into artifact bytes.

    Raises :class:`pickle.PicklingError` (or whatever the executor's
    reduction raises) when the plan cannot be serialized; the store's
    write path wraps that into :class:`~repro.errors.PlanStoreError`.
    """
    payload_dict: Dict[str, Any] = {
        "key": plan.key,
        "kind": plan.kind,
        "shapes": plan.shapes,
        "spec": plan.spec,
        "options": plan.options,
        "executor": plan.executor,
    }
    payload = pickle.dumps(payload_dict, protocol=pickle.HIGHEST_PROTOCOL)
    return b"".join(
        (MAGIC, _VERSION_STRUCT.pack(FORMAT_VERSION), _checksum(payload), payload)
    )


def decode_plan(data: bytes) -> Tuple[PlanKey, ExecutionPlan]:
    """Validate artifact bytes and rebuild the plan they carry.

    Returns ``(key, plan)``.  Raises :class:`PlanFormatError` on any
    defect: short/garbled header, wrong magic, version skew, checksum
    mismatch, unpicklable or structurally wrong payload, or a payload
    whose stored key disagrees with the key recomputed from its own
    fields (a tampered or miskeyed artifact).
    """
    if len(data) < HEADER_SIZE:
        raise PlanFormatError(
            f"artifact truncated: {len(data)} bytes < {HEADER_SIZE}-byte header"
        )
    if data[: len(MAGIC)] != MAGIC:
        raise PlanFormatError("bad magic: not a plan artifact")
    offset = len(MAGIC)
    (version,) = _VERSION_STRUCT.unpack_from(data, offset)
    if version != FORMAT_VERSION:
        raise PlanFormatError(
            f"format version {version} != supported {FORMAT_VERSION}"
        )
    offset += _VERSION_STRUCT.size
    expected = data[offset : offset + _CHECKSUM_SIZE]
    payload = data[HEADER_SIZE:]
    if _checksum(payload) != expected:
        raise PlanFormatError("payload checksum mismatch (corrupt artifact)")
    try:
        decoded = pickle.loads(payload)
    except Exception as exc:
        raise PlanFormatError(f"payload unpicklable: {exc!r}") from exc
    if not isinstance(decoded, dict):
        raise PlanFormatError(
            f"payload is {type(decoded).__name__}, expected a mapping"
        )
    try:
        key = decoded["key"]
        kind = decoded["kind"]
        shapes = decoded["shapes"]
        spec = decoded["spec"]
        options = decoded["options"]
        executor = decoded["executor"]
    except KeyError as exc:
        raise PlanFormatError(f"payload missing field {exc.args[0]!r}") from exc
    try:
        handler = get_handler(kind)
    except Exception as exc:
        raise PlanFormatError(f"unknown plan kind {kind!r}") from exc
    if make_plan_key(kind, shapes, spec.w, options) != key:
        raise PlanFormatError(
            "stored key disagrees with the payload's own fields"
        )
    plan = ExecutionPlan(
        kind=kind,
        shapes=shapes,
        spec=spec,
        options=options,
        executor=executor,
        handler=handler,
    )
    return key, plan
