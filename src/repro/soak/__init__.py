"""Replay/soak harness: seeded mixed-traffic streams against the service.

The proof layer for the serving + persistence + QoS stack.  A
:class:`~repro.soak.workload.SoakWorkload` turns one seed into one
reproducible stream of mixed traffic (matvec / matmul / jacobi /
pipelined graphs / NN forward passes across three priority classes and
their client pools), and :func:`~repro.soak.harness.run_soak` replays it
through a :class:`~repro.service.service.SolverService` with closed-loop
client threads, returning a :class:`~repro.soak.harness.SoakResult`
carrying per-class latency percentiles and typed-error tallies, the
sustained RPS, the process-counter delta (``plan_builds == 0`` after
warm-up — the zero-recompile proof), and the tracer's ``open_spans``
(0 — every path closed its span tree).

``benchmarks/test_soak.py`` runs the smoke scale in tier-1 and the ~1M
request soak under ``REPRO_SOAK_FULL=1``, recording ``BENCH_soak.json``;
``examples/soak_demo.py`` narrates a small run.
"""

from .harness import SoakConfig, SoakResult, run_soak
from .workload import SoakWorkload, WorkItem

__all__ = [
    "SoakConfig",
    "SoakResult",
    "SoakWorkload",
    "WorkItem",
    "run_soak",
]
