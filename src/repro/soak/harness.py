"""The replay/soak harness: drive a service with a seeded mixed stream.

:func:`run_soak` stands up a :class:`~repro.service.service.SolverService`
(or drives one the caller built), replays the
:class:`~repro.soak.workload.SoakWorkload` warm-up set so every plan the
stream will ever need is resident (compiled or store-loaded), snapshots
the process counters, then runs one closed-loop submitting thread per
client — each thread keeps a bounded in-flight window, so offered load
tracks service capacity instead of building an unbounded backlog.

Everything the ISSUE's acceptance criteria ask about comes back in one
:class:`SoakResult`:

* per-priority-class completion counts, typed-error tallies
  (rate-limited / shed / deadline), and p50/p99 latency;
* sustained requests-per-second over the measured phase;
* the :data:`repro.instrumentation.counters` delta across the run —
  ``plan_builds == 0`` after warm-up is the zero-recompile proof;
* ``open_spans`` from the service's tracer — 0 proves every admission,
  shed, rejection and failure path closed its span tree.

The harness is deliberately a library, not a script: the tier-1 smoke
test runs it with a few hundred requests, the gated bench runs the same
code with ~1M, and ``examples/soak_demo.py`` narrates a small run.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Mapping, Optional

from ..errors import (
    DeadlineExceededError,
    RateLimitedError,
    ServiceOverloadedError,
)
from ..instrumentation import Counters, counters
from ..obs.tracing import Tracer
from ..service.service import SolverService
from .workload import SoakWorkload, WorkItem

__all__ = ["SoakConfig", "SoakResult", "run_soak"]


@dataclass(frozen=True)
class SoakConfig:
    """Knobs of one soak run; the defaults are tier-1 smoke scale.

    ``requests`` is the *total* across all clients (split by the
    workload's class traffic mix, then evenly within a class).
    ``inflight``
    bounds each client's outstanding futures — the closed-loop window.
    ``rate_limits`` / ``default_rate_limit`` and ``backpressure`` pass
    straight through to the service when the harness builds one.
    """

    requests: int = 600
    seed: int = 20260808
    w: int = 4
    n_shards: int = 4
    clients_per_class: int = 2
    inflight: int = 8
    queue_depth: int = 64
    backpressure: str = "block"
    max_batch_delay: float = 0.0005
    rate_limits: Optional[Mapping[str, Any]] = None
    default_rate_limit: Optional[Any] = None
    store_root: Optional[str] = None
    trace: bool = True


@dataclass
class ClassStats:
    """Outcome tally for one priority class."""

    submitted: int = 0
    completed: int = 0
    rate_limited: int = 0
    shed: int = 0
    deadline_exceeded: int = 0
    other_errors: int = 0
    latencies: List[float] = field(default_factory=list)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of completed-request latency (seconds)."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[rank]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rate_limited": self.rate_limited,
            "shed": self.shed,
            "deadline_exceeded": self.deadline_exceeded,
            "other_errors": self.other_errors,
            "p50_ms": self.percentile(0.50) * 1e3,
            "p99_ms": self.percentile(0.99) * 1e3,
        }


@dataclass
class SoakResult:
    """Everything one soak run proved, ready for assertions or JSON."""

    config: SoakConfig
    elapsed: float
    warmup_requests: int
    warmup_plan_builds: int
    by_class: Dict[str, ClassStats]
    counter_delta: Counters
    open_spans: int
    store_stats: Optional[Dict[str, int]] = None

    @property
    def submitted(self) -> int:
        return sum(stats.submitted for stats in self.by_class.values())

    @property
    def completed(self) -> int:
        return sum(stats.completed for stats in self.by_class.values())

    @property
    def rps(self) -> float:
        """Completed requests per second over the measured phase."""
        return self.completed / self.elapsed if self.elapsed > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.config.requests,
            "seed": self.config.seed,
            "n_shards": self.config.n_shards,
            "elapsed_s": self.elapsed,
            "rps": self.rps,
            "submitted": self.submitted,
            "completed": self.completed,
            "warmup_requests": self.warmup_requests,
            "warmup_plan_builds": self.warmup_plan_builds,
            "plan_builds_after_warmup": self.counter_delta.plan_builds,
            "plan_store_hits": self.counter_delta.plan_store_hits,
            "open_spans": self.open_spans,
            "by_class": {
                name: stats.to_dict() for name, stats in self.by_class.items()
            },
            **(
                {"store": dict(self.store_stats)}
                if self.store_stats is not None
                else {}
            ),
        }


def _submit(service: SolverService, item: WorkItem):
    if item.graph is not None:
        return service.submit_graph(
            item.graph,
            priority=item.priority,
            client_id=item.client_id,
        )
    return service.submit(
        item.kind,
        *item.operands,
        options=item.options,
        priority=item.priority,
        client_id=item.client_id,
        **item.kwargs,
    )


class _Collector:
    """Thread-safe outcome sink; futures report in via done-callbacks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.by_class: Dict[str, ClassStats] = {}

    def stats_for(self, class_name: str) -> ClassStats:
        with self._lock:
            return self.by_class.setdefault(class_name, ClassStats())

    def record(self, class_name: str, started: float, future: Any) -> None:
        exc = future.exception()
        latency = time.perf_counter() - started
        with self._lock:
            stats = self.by_class.setdefault(class_name, ClassStats())
            if exc is None:
                stats.completed += 1
                stats.latencies.append(latency)
            elif isinstance(exc, ServiceOverloadedError):
                stats.shed += 1
            elif isinstance(exc, DeadlineExceededError):
                stats.deadline_exceeded += 1
            else:
                stats.other_errors += 1


def _client_loop(
    service: SolverService,
    workload: SoakWorkload,
    client_index: int,
    count: int,
    inflight: int,
    collector: _Collector,
    failures: List[BaseException],
) -> None:
    window: Deque[Any] = deque()
    try:
        for item in workload.stream(client_index, count):
            stats = collector.stats_for(item.class_name)
            with collector._lock:
                stats.submitted += 1
            started = time.perf_counter()
            try:
                future = _submit(service, item)
            except RateLimitedError:
                with collector._lock:
                    stats.rate_limited += 1
                continue
            except ServiceOverloadedError:
                with collector._lock:
                    stats.shed += 1
                continue
            future.add_done_callback(
                lambda f, name=item.class_name, t0=started: collector.record(
                    name, t0, f
                )
            )
            window.append(future)
            while len(window) >= inflight:
                window.popleft().exception()
        for future in window:
            future.exception()
    except BaseException as exc:  # surface harness bugs, don't hang the join
        failures.append(exc)


def run_soak(
    config: SoakConfig,
    service: Optional[SolverService] = None,
) -> SoakResult:
    """Replay one seeded soak stream; see the module docstring.

    When ``service`` is None the harness builds one from the config
    (with a tracer, and a :class:`~repro.store.PlanStore` rooted at
    ``config.store_root`` if set) and closes it before returning.
    When the caller passes a service, its lifecycle — and its tracer,
    store and rate limits — stay the caller's.
    """
    workload = SoakWorkload(
        seed=config.seed, w=config.w, clients_per_class=config.clients_per_class
    )
    owns_service = service is None
    tracer: Optional[Tracer] = None
    store = None
    if owns_service:
        tracer = Tracer(enabled=config.trace)
        if config.store_root is not None:
            from ..store import PlanStore

            store = PlanStore(config.store_root)
        service = SolverService(
            workload.w,
            n_shards=config.n_shards,
            queue_depth=config.queue_depth,
            backpressure=config.backpressure,
            max_batch_delay=config.max_batch_delay,
            tracer=tracer,
            store=store,
            rate_limits=config.rate_limits,
            default_rate_limit=config.default_rate_limit,
        )
    assert service is not None
    try:
        # -- warm-up: one request per distinct plan signature ----------------
        before_warmup = counters.snapshot()
        warmup_items = workload.warmup_items()
        for item in warmup_items:
            future = _submit(service, item)
            future.result(timeout=60.0)
        warmup_builds = counters.delta(before_warmup).plan_builds
        # -- the measured phase ----------------------------------------------
        collector = _Collector()
        failures: List[BaseException] = []
        roster = workload.clients()
        stream_lengths = workload.request_counts(config.requests)
        threads = []
        baseline = counters.snapshot()
        t0 = time.perf_counter()
        for index in range(len(roster)):
            count = stream_lengths[index]
            thread = threading.Thread(
                target=_client_loop,
                args=(
                    service, workload, index, count,
                    config.inflight, collector, failures,
                ),
                name=f"soak-{roster[index][0]}",
                daemon=True,
            )
            threads.append(thread)
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - t0
        if failures:
            raise failures[0]
        delta = counters.delta(baseline)
        active_tracer = service.tracer if tracer is None else tracer
        open_spans = (
            active_tracer.open_spans if active_tracer is not None else 0
        )
        store_stats = None
        if service.store is not None:
            described = service.store.stats
            store_stats = {
                "hits": described.hits,
                "misses": described.misses,
                "errors": described.errors,
                "writes": described.writes,
            }
        return SoakResult(
            config=config,
            elapsed=elapsed,
            warmup_requests=len(warmup_items),
            warmup_plan_builds=warmup_builds,
            by_class=dict(collector.by_class),
            counter_delta=delta,
            open_spans=open_spans,
            store_stats=store_stats,
        )
    finally:
        if owns_service:
            assert service is not None
            service.close()
