"""Deterministic seeded workload generation for the soak harness.

A :class:`SoakWorkload` turns one seed into one reproducible stream of
mixed serving traffic: plain matvec (the bread-and-butter kind, in
several shapes so requests spread across shards), matmul, iterative
jacobi sweeps, two-stage matvec pipeline graphs (which take the
cross-shard pipelined path on a multi-shard service) and neural-network
forward passes (a float MLP graph and its int8-quantized twin).  Every
request carries a priority class and a client id drawn from fixed
client pools — ``interactive-*`` submit high, ``standard-*`` normal,
``batch-*`` low — so the stream exercises the QoS admission machinery
end to end.

Operand *values* come from small pre-built pools (a handful of variants
per shape), so a million-request stream costs a million lightweight
:class:`WorkItem` descriptors, not a million fresh arrays — and, more
importantly, the set of plan keys is closed and known up front:
:meth:`SoakWorkload.warmup_items` yields one item per distinct plan
signature, so a harness that replays them once has compiled (or
store-loaded) every plan the stream will ever need.  Zero plan builds
after warm-up is then a hard assertion, not a hope.

Per-client streams are split by seeding each client's RNG with
``(seed, client index)`` — any client's stream is reproducible in
isolation, independent of thread interleaving.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..api.config import ExecutionOptions
from ..iterative.criteria import ConvergenceCriteria
from ..nn.mlp import MLP
from ..service.qos import PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_NORMAL

__all__ = ["SoakWorkload", "WorkItem"]

#: Priority class name → (level, traffic share).  Shares sum to 1.
CLASS_MIX: Sequence[Tuple[str, int, float]] = (
    ("high", PRIORITY_HIGH, 0.2),
    ("normal", PRIORITY_NORMAL, 0.5),
    ("low", PRIORITY_LOW, 0.3),
)

#: Request kind → traffic share within a client's stream.
KIND_MIX: Sequence[Tuple[str, float]] = (
    ("matvec", 0.55),
    ("matmul", 0.15),
    ("jacobi", 0.10),
    ("graph", 0.10),
    ("nn", 0.10),
)

#: Client-id prefixes per class (matches the CLASS_MIX order).
CLASS_CLIENT_PREFIX: Dict[str, str] = {
    "high": "interactive",
    "normal": "standard",
    "low": "batch",
}

#: Value variants per operand pool entry (shapes stay fixed; only
#: values rotate, so variants share plan keys).
_VARIANTS = 3


@dataclass(frozen=True)
class WorkItem:
    """One request of the soak stream, ready to submit.

    ``graph`` is set for pipeline/NN traffic (submitted via
    ``submit_graph``); otherwise ``kind``/``operands``/``kwargs`` feed
    ``submit``.  ``class_name`` is the priority class label the harness
    reports under.
    """

    kind: str
    priority: int
    class_name: str
    client_id: str
    operands: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    options: Optional[ExecutionOptions] = None
    graph: Any = None


class SoakWorkload:
    """One seed, one reproducible mixed-traffic request stream.

    Parameters
    ----------
    seed:
        Master seed; operand pools and every client stream derive from
        it deterministically.
    w:
        The target array size (only used to scale nothing today — plan
        keys incorporate it through the service's spec; kept explicit so
        a workload is self-describing).
    clients_per_class:
        How many distinct client ids each priority class gets.
    """

    def __init__(self, seed: int = 20260808, w: int = 4, clients_per_class: int = 2):
        if clients_per_class < 1:
            raise ValueError(
                f"clients_per_class must be >= 1, got {clients_per_class}"
            )
        self.seed = int(seed)
        self.w = int(w)
        self.clients_per_class = int(clients_per_class)
        rng = np.random.default_rng(self.seed)
        # -- operand pools (fixed shapes, a few value variants each) ---------
        self._matvec: List[Tuple[np.ndarray, np.ndarray]] = []
        for n, m in ((24, 24), (16, 16), (24, 16)):
            for _ in range(_VARIANTS):
                self._matvec.append(
                    (rng.standard_normal((n, m)), rng.standard_normal(m))
                )
        self._matmul: List[Tuple[np.ndarray, np.ndarray]] = [
            (rng.standard_normal((8, 8)), rng.standard_normal((8, 8)))
            for _ in range(_VARIANTS)
        ]
        # Diagonally dominant systems so jacobi contracts; the fixed
        # iteration budget keeps per-request cost flat and the criteria
        # (part of the options, hence of the plan key) identical across
        # the stream.
        self._jacobi: List[Tuple[np.ndarray, np.ndarray]] = []
        for _ in range(_VARIANTS):
            a = rng.standard_normal((12, 12))
            a += np.diag(np.abs(a).sum(axis=1) + 1.0)
            self._jacobi.append((a, rng.standard_normal(12)))
        self._jacobi_options = ExecutionOptions(
            criteria=ConvergenceCriteria(max_iter=4)
        )
        # Two-stage matvec chains — multi-level, so a multi-shard
        # service pipelines them across shards.
        self._graph_mats = (
            rng.standard_normal((12, 16)),
            rng.standard_normal((10, 12)),
        )
        self._graph_x: List[np.ndarray] = [
            rng.standard_normal(16) for _ in range(_VARIANTS)
        ]
        # One small MLP, used both float and int8-quantized; inputs
        # rotate, weights (and the quantization calibration) are fixed.
        w1 = rng.standard_normal((12, 16)) * 0.4
        b1 = rng.standard_normal(12) * 0.1
        w2 = rng.standard_normal((8, 12)) * 0.4
        b2 = rng.standard_normal(8) * 0.1
        self._mlp = MLP([(w1, b1), (w2, b2)])
        self._nn_x: List[np.ndarray] = [
            rng.standard_normal(16) for _ in range(_VARIANTS)
        ]
        self._qmlp = self._mlp.quantized(self._nn_x)

    # -- the client roster --------------------------------------------------------
    def clients(self) -> List[Tuple[str, int, str]]:
        """Every (client_id, priority level, class name), class-major.

        The harness runs one submitting thread per entry; traffic shares
        between classes come from :meth:`request_counts`, which sizes
        each client's stream by its class's ``CLASS_MIX`` share — the
        realized mix is exact, not sampled.
        """
        roster: List[Tuple[str, int, str]] = []
        for name, level, _share in CLASS_MIX:
            prefix = CLASS_CLIENT_PREFIX[name]
            for index in range(self.clients_per_class):
                roster.append((f"{prefix}-{index}", level, name))
        return roster

    def request_counts(self, total: int) -> List[int]:
        """Per-client stream lengths realizing the class traffic mix.

        Aligned with :meth:`clients`; class totals are ``share * total``
        (largest-remainder rounding, so the counts sum to ``total``
        exactly), split evenly across the class's clients with
        remainders going to its earliest clients.
        """
        shares = [(name, share) for name, _level, share in CLASS_MIX]
        floors = [int(share * total) for _name, share in shares]
        remainders = sorted(
            range(len(shares)),
            key=lambda i: shares[i][1] * total - floors[i],
            reverse=True,
        )
        for i in remainders[: total - sum(floors)]:
            floors[i] += 1
        counts: List[int] = []
        for class_total in floors:
            per, extra = divmod(class_total, self.clients_per_class)
            counts.extend(
                per + (1 if index < extra else 0)
                for index in range(self.clients_per_class)
            )
        return counts

    # -- item construction --------------------------------------------------------
    def _item(
        self, kind: str, variant: int, client_id: str, level: int, name: str
    ) -> WorkItem:
        if kind == "matvec":
            a, x = self._matvec[variant % len(self._matvec)]
            return WorkItem(
                kind="matvec", operands=(a, x),
                priority=level, class_name=name, client_id=client_id,
            )
        if kind == "matmul":
            a, b = self._matmul[variant % len(self._matmul)]
            return WorkItem(
                kind="matmul", operands=(a, b),
                priority=level, class_name=name, client_id=client_id,
            )
        if kind == "jacobi":
            a, b = self._jacobi[variant % len(self._jacobi)]
            return WorkItem(
                kind="jacobi", operands=(a, b),
                options=self._jacobi_options,
                priority=level, class_name=name, client_id=client_id,
            )
        if kind == "graph":
            from ..graph import MatVec

            m1, m2 = self._graph_mats
            x = self._graph_x[variant % len(self._graph_x)]
            return WorkItem(
                kind="graph", graph=MatVec(m2, MatVec(m1, x)),
                priority=level, class_name=name, client_id=client_id,
            )
        if kind == "nn":
            x = self._nn_x[variant % len(self._nn_x)]
            # Alternate float and int8 forward passes.
            model = self._mlp if variant % 2 == 0 else self._qmlp
            return WorkItem(
                kind="nn", graph=model.graph(x),
                priority=level, class_name=name, client_id=client_id,
            )
        raise ValueError(f"unknown workload kind {kind!r}")

    def warmup_items(self) -> List[WorkItem]:
        """One item per distinct plan signature in the stream.

        Replaying these once compiles (or store-loads) every plan any
        stream item will ever resolve — afterwards the stream runs with
        zero plan builds.  All warmup items ride an anonymous high
        class, exempt from rate limits and last to shed.
        """
        items: List[WorkItem] = []
        for kind, _share in KIND_MIX:
            # Every variant: value variants share keys (cheap cache
            # hits), but the nn kind alternates two distinct graphs and
            # matvec rotates three shapes — covering all variants covers
            # every signature without kind-specific knowledge here.
            pool = {
                "matvec": len(self._matvec),
                "matmul": len(self._matmul),
                "jacobi": len(self._jacobi),
                "graph": len(self._graph_x),
                "nn": 2 * len(self._nn_x),
            }[kind]
            for variant in range(pool):
                items.append(
                    self._item(kind, variant, "warmup", PRIORITY_HIGH, "high")
                )
        return items

    def stream(self, client_index: int, count: int) -> Iterator[WorkItem]:
        """``count`` items of one client's deterministic stream.

        ``client_index`` indexes :meth:`clients`.  Each stream is seeded
        by ``(seed, client_index)``, so it reproduces independently of
        how other clients' threads interleave.
        """
        roster = self.clients()
        client_id, level, name = roster[client_index % len(roster)]
        rng = random.Random(f"{self.seed}:{client_index}")
        kinds = [kind for kind, _share in KIND_MIX]
        weights = [share for _kind, share in KIND_MIX]
        for _ in range(count):
            kind = rng.choices(kinds, weights)[0]
            variant = rng.randrange(1 << 16)
            yield self._item(kind, variant, client_id, level, name)
