"""Quantized neural-network inference on the systolic machinery.

The paper's arrays are the datapath modern NN accelerators are built on;
this subpackage closes the loop by expressing a TPU-style int8 inference
pass in terms of the package's own graph/plan-cache/service stack:

* :mod:`repro.nn.quantization` — affine int8 parameters and casts,
* :mod:`repro.nn.problems` — typed graph stages :class:`Dense`,
  :class:`Bias`, :class:`Relu`, :class:`Quantize`, :class:`Dequantize`,
* :mod:`repro.nn.engine` — the execution plans (systolic matvec with a
  zero-point prologue; host epilogues),
* :mod:`repro.nn.handlers` — registry handlers (imported here for their
  registration side effect),
* :mod:`repro.nn.mlp` — :class:`MLP` / :class:`QuantizedMLP` builders
  compiling whole forward passes into single pipeline programs.

Quickstart::

    import numpy as np
    from repro import ArraySpec, GraphCompiler, Solver
    from repro.nn import MLP

    rng = np.random.default_rng(0)
    mlp = MLP([(rng.normal(size=(8, 6)), rng.normal(size=8)),
               (rng.normal(size=(4, 8)), rng.normal(size=4))])
    x = rng.normal(size=6)
    qmlp = mlp.quantized(calibration=[x])
    result = GraphCompiler(Solver(ArraySpec(w=4))).run(qmlp.graph(x))
    logits = result.output("logits")        # int8 datapath, float logits
"""

from . import handlers as _handlers  # noqa: F401  (registers the kinds)
from .mlp import MLP, QuantizedMLP
from .problems import Bias, Dense, Dequantize, Quantize, Relu
from .quantization import INT8_MAX, INT8_MIN, QuantParams

__all__ = [
    "Bias",
    "Dense",
    "Dequantize",
    "INT8_MAX",
    "INT8_MIN",
    "MLP",
    "QuantParams",
    "Quantize",
    "QuantizedMLP",
    "Relu",
]
