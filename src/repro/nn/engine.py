"""Execution engines for the NN kinds, layered on the core plans.

:class:`DensePlan` wraps a :class:`~repro.core.plans.MatVecPlan`: the
band geometry, schedules and structural metrics are exactly the matvec
plan's, with the zero-point subtraction applied to the activation vector
before it enters the array.  Under ``dtype_mode="int8"`` the simulate
backend runs the cycle-accurate float engine on the integer operands —
every intermediate is an exact integer far below 2^53, so casting the
result to int32 loses nothing — while the vectorized backend runs the
dedicated :meth:`~repro.backends.vectorized.LinearSweepPlan.int_sweep`
int32-accumulate replay, and the compiled backend an exact-integer
einsum over the lowered band geometry.  Exact integer arithmetic on all
sides is what keeps the cross-backend bit-identity contract for the
quantized kinds.

:class:`ElementwisePlan` covers the host epilogue stations (bias, relu,
quantize, dequantize): O(n) casts and adds that a real accelerator fuses
into the output path; they execute identically on every backend and
report zero array steps.  Under the compiled backend the graph compiler
additionally collapses whole head→epilogue chains into single ``fused``
stages (:mod:`repro.compiled.fusion`) built from these same plans.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from ..backends.registry import SIMULATE, resolve_backend
from ..backends.vectorized import build_linear_run
from ..core.matvec import MatVecSolution
from ..core.plans import MatVecPlan
from ..errors import ShapeError
from .quantization import INT8_MAX, INT8_MIN

__all__ = ["DensePlan", "ElementwisePlan"]


def _require_integer(name: str, values: np.ndarray) -> np.ndarray:
    values = np.asarray(values)
    if not np.issubdtype(values.dtype, np.integer):
        raise TypeError(
            f"dtype_mode='int8' needs integer operands; {name} has dtype "
            f"{values.dtype} (quantize it first)"
        )
    return values


class DensePlan:
    """Shape-keyed plan for ``y = W (x - x_zero_point)``.

    Immutable once built; the zero point is an execution value, so one
    plan serves every calibration of the same layer shape.
    """

    supports_pairing = False

    def __init__(
        self,
        n: int,
        m: int,
        w: int,
        record_trace: bool = False,
        backend: str = SIMULATE,
        dtype_mode: str = "float64",
    ):
        if dtype_mode not in ("float64", "int8"):
            raise ValueError(
                f"dtype_mode must be 'float64' or 'int8', got {dtype_mode!r}"
            )
        self._inner = MatVecPlan(
            n, m, w, record_trace=record_trace, backend=backend
        )
        self._n = int(n)
        self._m = int(m)
        self._w = self._inner.w
        self._dtype_mode = dtype_mode
        # Feedback delays are pure band geometry — identical on every
        # execute of this plan — so the api handler caches the wrapped
        # FeedbackStats here after the first solve instead of rebuilding
        # the O(bands) delay list per request.
        self.feedback_stats: Optional[Any] = None

    @property
    def shape(self) -> Tuple[int, int]:
        return (self._n, self._m)

    @property
    def w(self) -> int:
        return self._w

    @property
    def backend(self) -> str:
        return self._inner.backend

    @property
    def dtype_mode(self) -> str:
        return self._dtype_mode

    @property
    def model(self):
        return self._inner.model

    def execute(
        self, matrix: np.ndarray, x: np.ndarray, x_zero_point: int = 0
    ) -> MatVecSolution:
        zero_point = int(x_zero_point)
        if self._dtype_mode == "int8":
            matrix = _require_integer("matrix", matrix)
            x = _require_integer("x", x)
            if matrix.shape != (self._n, self._m):
                raise ShapeError(
                    f"plan was built for shape {(self._n, self._m)}, "
                    f"got matrix of shape {matrix.shape}"
                )
            if x.shape != (self._m,):
                raise ShapeError(
                    f"x has length {np.shape(x)} but the matrix has "
                    f"{self._m} columns"
                )
            x_shifted = x.astype(np.int32) - np.int32(zero_point)
            sweep = self._inner.sweep_plan
            if sweep is not None:
                band_outputs, y_padded = sweep.int_sweep(
                    matrix, x_shifted, None
                )
                run = build_linear_run(self._w, [sweep], [band_outputs])
                y = y_padded[: self._n].copy()
            else:
                legacy = self._inner.execute(
                    matrix.astype(float), x_shifted.astype(float), None
                )
                # Exact: int8-range products summed over m stay integers
                # below 2^53, so the float simulation is already the int32
                # accumulator's value.
                run = legacy.run
                y = legacy.y.astype(np.int32)
            return MatVecSolution(
                y=y,
                w=self._w,
                overlapped=False,
                transforms=[self._inner.transform],
                run=run,
                model=self._inner.model,
            )
        matrix = np.asarray(matrix, dtype=float)
        x_shifted = np.asarray(x, dtype=float) - float(zero_point)
        return self._inner.execute(matrix, x_shifted, None)


class ElementwisePlan:
    """Host-epilogue plan for bias / relu / quantize / dequantize.

    Value streaming only — there is no band geometry to precompute — but
    the plan still pins the vector length and backend so the plan key
    discriminates shapes exactly like the array kinds.
    """

    supports_pairing = False

    def __init__(
        self,
        kind: str,
        n: int,
        w: int,
        backend: str = SIMULATE,
        dtype_mode: str = "float64",
    ):
        if n < 1:
            raise ShapeError(f"{kind} plan needs a positive length, got {n}")
        self._kind = kind
        self._n = int(n)
        self._w = int(w)
        self._backend = resolve_backend(backend)
        self._dtype_mode = dtype_mode

    @property
    def shape(self) -> Tuple[int]:
        return (self._n,)

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def dtype_mode(self) -> str:
        return self._dtype_mode

    def _check_length(self, name: str, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        if values.shape != (self._n,):
            raise ShapeError(
                f"plan was built for vectors of length {self._n}, "
                f"got {name} of shape {values.shape}"
            )
        return values

    def bias(self, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        x = self._check_length("x", x)
        b = self._check_length("b", b)
        return x + b

    def relu(self, x: np.ndarray) -> np.ndarray:
        x = self._check_length("x", x)
        return np.maximum(x, np.zeros((), dtype=x.dtype))

    def quantize(
        self, x: np.ndarray, scale: float, zero_point: int = 0
    ) -> np.ndarray:
        x = self._check_length("x", x)
        codes = np.rint(np.asarray(x, dtype=float) / float(scale))
        codes = np.clip(codes + int(zero_point), INT8_MIN, INT8_MAX)
        return codes.astype(np.int8)

    def dequantize(
        self, x: np.ndarray, scale: float, zero_point: int = 0
    ) -> np.ndarray:
        x = self._check_length("x", x)
        if not np.issubdtype(x.dtype, np.integer):
            raise TypeError(
                f"dequantize expects integer codes, got dtype {x.dtype}"
            )
        return float(scale) * (
            x.astype(np.int64) - int(zero_point)
        ).astype(float)
