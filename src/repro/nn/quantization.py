"""Affine int8 quantization: parameters, casts, and error bounds.

The quantized datapath of :mod:`repro.nn` is the TPU-style affine
scheme: a real value ``v`` is represented as the int8 code
``q = clip(round(v / scale) + zero_point, -128, 127)`` and recovered as
``v ~ scale * (q - zero_point)``.  Weights use the *symmetric* special
case (``zero_point = 0``), which is what makes the per-layer error
analysis in :meth:`repro.nn.mlp.QuantizedMLP.error_bounds` exact: with
symmetric weights the int32 accumulator ``W_q @ (x_q - zp)`` dequantizes
to exactly ``(scale_w W_q) @ (scale_x (x_q - zp))``, so all quantization
error enters through the operand roundings alone.

Rounding is :func:`numpy.rint` (round half to even) — deterministic and
identical on both backends, which the bit-identity contract needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["INT8_MAX", "INT8_MIN", "QuantParams"]

INT8_MIN = -128
INT8_MAX = 127


@dataclass(frozen=True)
class QuantParams:
    """One affine int8 quantization: ``q = round(v / scale) + zero_point``.

    Frozen (hashable) so parameters can ride inside plan-keyed options if
    a caller ever wants per-tensor plans; the stock NN kinds instead pass
    scale/zero_point as execution *values*, keeping plans value
    independent like every other kind.
    """

    scale: float
    zero_point: int = 0

    def __post_init__(self) -> None:
        if not self.scale > 0.0:
            raise ValueError(f"scale must be > 0, got {self.scale}")
        if not INT8_MIN <= self.zero_point <= INT8_MAX:
            raise ValueError(
                f"zero_point must be in [{INT8_MIN}, {INT8_MAX}], "
                f"got {self.zero_point}"
            )
        object.__setattr__(self, "scale", float(self.scale))
        object.__setattr__(self, "zero_point", int(self.zero_point))

    # -- calibration ---------------------------------------------------------------
    @classmethod
    def from_range(cls, lo: float, hi: float) -> "QuantParams":
        """Affine parameters covering ``[lo, hi]`` (expanded to include 0).

        Zero must be exactly representable (ReLU outputs and zero padding
        would otherwise dequantize to a bias), so the range is widened to
        contain it before the scale is derived.
        """
        lo = min(float(lo), 0.0)
        hi = max(float(hi), 0.0)
        if hi == lo:
            return cls(scale=1.0, zero_point=0)
        scale = (hi - lo) / float(INT8_MAX - INT8_MIN)
        zero_point = int(
            np.clip(np.rint(INT8_MIN - lo / scale), INT8_MIN, INT8_MAX)
        )
        return cls(scale=scale, zero_point=zero_point)

    @classmethod
    def symmetric(cls, max_abs: float) -> "QuantParams":
        """Symmetric parameters (``zero_point = 0``) for ``[-max_abs, max_abs]``.

        The weight scheme: symmetric codes multiply without zero-point
        cross terms, so the int32 accumulator stays an exact scaled dot
        product.
        """
        max_abs = abs(float(max_abs))
        if max_abs == 0.0:
            return cls(scale=1.0, zero_point=0)
        return cls(scale=max_abs / float(INT8_MAX), zero_point=0)

    # -- casts ---------------------------------------------------------------------
    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Real values to saturating int8 codes."""
        codes = np.rint(np.asarray(values, dtype=float) / self.scale)
        codes = np.clip(codes + self.zero_point, INT8_MIN, INT8_MAX)
        return codes.astype(np.int8)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        """Integer codes (int8 or wider accumulators) back to float64."""
        return self.scale * (
            np.asarray(codes, dtype=np.int64) - self.zero_point
        ).astype(float)

    def round_trip_error(self, values: np.ndarray) -> np.ndarray:
        """Elementwise ``|v - dequantize(quantize(v))|`` (actual, not bound)."""
        values = np.asarray(values, dtype=float)
        return np.abs(values - self.dequantize(self.quantize(values)))

    @property
    def step_error(self) -> float:
        """Half-step worst-case rounding error for in-range values."""
        return self.scale / 2.0
