"""Registry handlers wiring the NN kinds into the solver façade.

Imported for its side effects by :mod:`repro.api.problems` (and by
:mod:`repro.nn` itself): each handler registers under its kind, making
``solver.solve("dense", W, x)``, typed :class:`~repro.nn.problems.Dense`
nodes, graph compilation, and service routing all work through the same
machinery as the classic kinds — including did-you-mean suggestions and
``registered_kinds()``, which pick the five kinds up for free.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..api.config import ArraySpec, ExecutionOptions
from ..api.registry import ProblemHandler, register
from ..api.solution import FeedbackStats, Solution
from ..errors import ShapeError
from .engine import DensePlan, ElementwisePlan

__all__ = ["NN_KINDS"]

NN_KINDS = ("dense", "bias", "relu", "quantize", "dequantize")


def _matrix_shape(value, name: str) -> Tuple[int, int]:
    shape = tuple(int(d) for d in np.shape(value))
    if len(shape) != 2:
        raise ShapeError(f"{name} must be a matrix, got shape {shape}")
    return shape


def _pair_shape(shape, kind: str) -> Tuple[int, int]:
    if shape is None:
        raise ShapeError(f"{kind} needs shape=(n, m) (or an operand matrix)")
    shape = tuple(int(d) for d in shape)
    if len(shape) != 2:
        raise ShapeError(f"{kind} needs shape=(n, m), got {shape}")
    return shape


def _vector_shape(shape, kind: str) -> Tuple[int]:
    if shape is None:
        raise ShapeError(f"{kind} needs shape=n (or an operand vector)")
    if isinstance(shape, (int, np.integer)):
        return (int(shape),)
    shape = tuple(int(d) for d in shape)
    if len(shape) != 1:
        raise ShapeError(f"{kind} needs shape=(n,), got {shape}")
    return shape


class DenseHandler(ProblemHandler):
    """``y = W (x - x_zero_point)`` on the linear array (int8 or float64)."""

    kind = "dense"

    def shapes(self, *, operands=None, shape=None) -> Tuple[int, int]:
        if operands is not None:
            return _matrix_shape(operands[0], "matrix")
        return _pair_shape(shape, self.kind)

    def build(self, spec: ArraySpec, options: ExecutionOptions, shapes):
        n, m = shapes
        return DensePlan(
            n, m, spec.w,
            record_trace=options.record_trace,
            backend=options.backend,
            dtype_mode=options.dtype_mode,
        )

    def wrap(self, plan, legacy) -> Solution:
        feedback = plan.executor.feedback_stats
        if feedback is None:
            feedback = FeedbackStats.from_delays(legacy.feedback_delays)
            plan.executor.feedback_stats = feedback
        return Solution(
            kind=self.kind,
            w=plan.spec.w,
            values=legacy.y,
            measured_steps=legacy.measured_steps,
            predicted_steps=legacy.predicted_steps,
            measured_utilization=legacy.measured_utilization,
            predicted_utilization=legacy.predicted_utilization,
            feedback=feedback,
            stats={"dtype_mode": plan.executor.dtype_mode},
            raw=legacy,
            plan_key=plan.key,
        )

    def execute(self, plan, matrix, x, x_zero_point: int = 0) -> Solution:
        return self.wrap(
            plan, plan.executor.execute(matrix, x, x_zero_point=x_zero_point)
        )


class _ElementwiseHandler(ProblemHandler):
    """Shared adapter for the host-epilogue kinds (zero array steps)."""

    def shapes(self, *, operands=None, shape=None) -> Tuple[int]:
        if operands is not None:
            vec_shape = tuple(int(d) for d in np.shape(operands[0]))
            if len(vec_shape) != 1:
                raise ShapeError(
                    f"{self.kind} operand must be a vector, got shape "
                    f"{vec_shape}"
                )
            return vec_shape
        return _vector_shape(shape, self.kind)

    def build(self, spec: ArraySpec, options: ExecutionOptions, shapes):
        return ElementwisePlan(
            self.kind, shapes[0], spec.w,
            backend=options.backend,
            dtype_mode=options.dtype_mode,
        )

    def _wrap(self, plan, values: np.ndarray) -> Solution:
        return Solution(
            kind=self.kind,
            w=plan.spec.w,
            values=values,
            measured_steps=0,
            stats={
                "elements": int(np.shape(values)[0]),
                "dtype_mode": plan.executor.dtype_mode,
            },
            raw=values,
            plan_key=plan.key,
        )


class BiasHandler(_ElementwiseHandler):
    """``y = x + b`` host epilogue."""

    kind = "bias"

    def execute(self, plan, x, b) -> Solution:
        return self._wrap(plan, plan.executor.bias(x, b))


class ReluHandler(_ElementwiseHandler):
    """``y = max(x, 0)`` host epilogue."""

    kind = "relu"

    def execute(self, plan, x) -> Solution:
        return self._wrap(plan, plan.executor.relu(x))


class QuantizeHandler(_ElementwiseHandler):
    """Float to saturating int8 codes."""

    kind = "quantize"

    def execute(self, plan, x, scale: float, zero_point: int = 0) -> Solution:
        return self._wrap(plan, plan.executor.quantize(x, scale, zero_point))


class DequantizeHandler(_ElementwiseHandler):
    """Integer codes back to float64."""

    kind = "dequantize"

    def execute(self, plan, x, scale: float, zero_point: int = 0) -> Solution:
        return self._wrap(plan, plan.executor.dequantize(x, scale, zero_point))


for _handler_class in (
    DenseHandler,
    BiasHandler,
    ReluHandler,
    QuantizeHandler,
    DequantizeHandler,
):
    register(_handler_class())
