"""MLP builders: whole forward passes as compiled pipeline graphs.

:class:`MLP` is the pure-float reference network (dense layers with bias
and ReLU between them).  :meth:`MLP.quantized` calibrates it into a
:class:`QuantizedMLP` whose :meth:`~QuantizedMLP.graph` emits the full
quantized datapath as ONE typed-problem :class:`~repro.graph.graph.Graph`::

    x_q = Quantize(x)                                   # once, at entry
    per layer:  Dense(int8/int32) -> Dequantize -> Bias [-> Relu -> Quantize]

so a 3-layer forward pass compiles to a single plan-cached
:class:`~repro.graph.program.PipelineProgram` — warm re-executions build
zero plans — and serves through ``SolverService.solve_graph`` unchanged.

Weights are quantized *symmetrically* (zero_point 0), which keeps the
int32 accumulator an exact scaled dot product and makes
:meth:`QuantizedMLP.error_bounds` a rigorous elementwise bound rather
than a heuristic: all error enters through operand rounding, propagated
layer by layer (Bias adds exactly, ReLU is 1-Lipschitz, a requantization
step adds at most one scale step plus doubles the incoming error for
values inside the calibrated range).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ShapeError
from ..graph.graph import Graph
from .problems import Bias, Dense, Dequantize, Quantize, Relu
from .quantization import QuantParams

__all__ = ["MLP", "QuantizedMLP"]

#: Pipeline name of the final (logits) stage in every graph built here.
OUTPUT_NAME = "logits"


class MLP:
    """Float reference network: ``h_{i+1} = relu(W_i h_i + b_i)``, last layer linear."""

    def __init__(self, layers: Sequence[Tuple[np.ndarray, np.ndarray]]):
        if not layers:
            raise ShapeError("MLP needs at least one (weights, bias) layer")
        normalized: List[Tuple[np.ndarray, np.ndarray]] = []
        previous: Optional[int] = None
        for index, (weights, bias) in enumerate(layers):
            weights = np.asarray(weights, dtype=float)
            bias = np.asarray(bias, dtype=float)
            if weights.ndim != 2:
                raise ShapeError(
                    f"layer {index} weights must be a matrix, "
                    f"got shape {weights.shape}"
                )
            if bias.shape != (weights.shape[0],):
                raise ShapeError(
                    f"layer {index} bias must have length {weights.shape[0]}, "
                    f"got shape {bias.shape}"
                )
            if previous is not None and weights.shape[1] != previous:
                raise ShapeError(
                    f"layer {index} expects inputs of length {weights.shape[1]} "
                    f"but layer {index - 1} produces {previous}"
                )
            previous = weights.shape[0]
            normalized.append((weights, bias))
        self.layers: Tuple[Tuple[np.ndarray, np.ndarray], ...] = tuple(normalized)

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    @property
    def input_size(self) -> int:
        return self.layers[0][0].shape[1]

    def _check_input(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.shape != (self.input_size,):
            raise ShapeError(
                f"MLP expects an input of length {self.input_size}, "
                f"got shape {x.shape}"
            )
        return x

    def forward_trace(
        self, x: np.ndarray
    ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """``(pre_activations, activations)`` per layer, pure numpy.

        The last layer's activation is its pre-activation (no ReLU on the
        output layer); both lists have one entry per layer.
        """
        h = self._check_input(x)
        pre: List[np.ndarray] = []
        post: List[np.ndarray] = []
        last = self.n_layers - 1
        for index, (weights, bias) in enumerate(self.layers):
            y = weights @ h + bias
            pre.append(y)
            h = y if index == last else np.maximum(y, 0.0)
            post.append(h)
        return pre, post

    def forward(self, x: np.ndarray) -> np.ndarray:
        """The float logits for one input vector."""
        _pre, post = self.forward_trace(x)
        return post[-1]

    def graph(self, x: np.ndarray) -> Graph:
        """The float64 forward pass as one typed-problem pipeline graph.

        Stage names: ``dense_i`` / ``bias_i`` / ``relu_i`` per hidden
        layer, with the final bias stage named ``"logits"``.
        """
        h = self._check_input(x)
        node = None
        last = self.n_layers - 1
        for index, (weights, bias) in enumerate(self.layers):
            source = h if node is None else node
            dense = Dense(weights, source, name=f"dense_{index}")
            bias_name = OUTPUT_NAME if index == last else f"bias_{index}"
            node = Bias(dense, bias, name=bias_name)
            if index != last:
                node = Relu(node, name=f"relu_{index}")
        return Graph(node)

    def quantized(
        self, calibration: Sequence[np.ndarray]
    ) -> "QuantizedMLP":
        """Calibrate an int8 deployment of this network.

        ``calibration`` is a set of representative input vectors; input
        and hidden-activation ranges are taken from the float forward
        passes over it.  The error bounds of the result are rigorous for
        inputs whose activations stay inside these calibrated ranges.
        """
        return QuantizedMLP.from_calibration(self, calibration)


class QuantizedMLP:
    """An int8 deployment of an :class:`MLP`: codes, scales, and graphs."""

    def __init__(
        self,
        mlp: MLP,
        input_params: QuantParams,
        weight_params: Sequence[QuantParams],
        activation_params: Sequence[QuantParams],
    ):
        if len(weight_params) != mlp.n_layers:
            raise ShapeError(
                f"need one weight QuantParams per layer "
                f"({mlp.n_layers}), got {len(weight_params)}"
            )
        if len(activation_params) != mlp.n_layers - 1:
            raise ShapeError(
                f"need one activation QuantParams per hidden layer "
                f"({mlp.n_layers - 1}), got {len(activation_params)}"
            )
        for index, params in enumerate(weight_params):
            if params.zero_point != 0:
                raise ValueError(
                    f"weight quantization must be symmetric "
                    f"(zero_point 0), layer {index} has "
                    f"{params.zero_point}"
                )
        self.mlp = mlp
        self.input_params = input_params
        self.weight_params = tuple(weight_params)
        self.activation_params = tuple(activation_params)
        self.weight_codes: Tuple[np.ndarray, ...] = tuple(
            params.quantize(weights)
            for params, (weights, _bias) in zip(weight_params, mlp.layers)
        )

    @classmethod
    def from_calibration(
        cls, mlp: MLP, calibration: Sequence[np.ndarray]
    ) -> "QuantizedMLP":
        inputs = [mlp._check_input(x) for x in calibration]
        if not inputs:
            raise ShapeError("calibration needs at least one input vector")
        stacked = np.stack(inputs)
        input_params = QuantParams.from_range(stacked.min(), stacked.max())
        weight_params = [
            QuantParams.symmetric(np.abs(weights).max())
            for weights, _bias in mlp.layers
        ]
        activations: List[List[np.ndarray]] = [
            [] for _ in range(mlp.n_layers - 1)
        ]
        for x in inputs:
            _pre, post = mlp.forward_trace(x)
            for index in range(mlp.n_layers - 1):
                activations[index].append(post[index])
        activation_params = [
            QuantParams.from_range(
                np.stack(values).min(), np.stack(values).max()
            )
            for values in activations
        ]
        return cls(mlp, input_params, weight_params, activation_params)

    # -- the compiled datapath ---------------------------------------------------
    def graph(self, x: np.ndarray) -> Graph:
        """The whole int8 forward pass as one pipeline graph.

        Stage names per layer ``i``: ``dense_i`` (int32 accumulator),
        ``dequant_i``, ``bias_i`` (the last layer's is ``"logits"``),
        ``relu_i``, ``quant_i``; plus the entry stage ``x_q``.  A
        3-layer network is a 14-stage graph that compiles to one
        :class:`~repro.graph.program.PipelineProgram`.
        """
        x = self.mlp._check_input(x)
        node = Quantize(x, self.input_params, name="x_q")
        params = self.input_params
        last = self.mlp.n_layers - 1
        for index, (weights, bias) in enumerate(self.mlp.layers):
            accumulator = Dense(
                self.weight_codes[index],
                node,
                x_zero_point=params.zero_point,
                dtype_mode="int8",
                name=f"dense_{index}",
            )
            recovered = Dequantize(
                accumulator,
                self.weight_params[index].scale * params.scale,
                0,
                name=f"dequant_{index}",
            )
            bias_name = OUTPUT_NAME if index == last else f"bias_{index}"
            node = Bias(recovered, bias, name=bias_name)
            if index != last:
                node = Relu(node, name=f"relu_{index}")
                params = self.activation_params[index]
                node = Quantize(node, params, name=f"quant_{index}")
        return Graph(node)

    # -- analysis ------------------------------------------------------------------
    def error_bounds(self, x: np.ndarray) -> Dict[str, np.ndarray]:
        """Elementwise |quantized - float| bounds per float-domain stage.

        Derivation (all elementwise, per layer ``i`` with true input
        activation ``h`` carrying accumulated bound ``e``):

        * the int32 accumulator dequantizes *exactly* to
          ``W~ @ h~`` with ``W~`` the dequantized weights and ``h~`` the
          dequantized activation codes (symmetric weights, so no
          zero-point cross terms), hence
          ``|W h - W~ h~| <= |W - W~| (|h| + e) + |W| e``;
        * Bias adds the same float vector on both sides (exact);
        * ReLU is 1-Lipschitz (bound unchanged);
        * requantization maps a value within ``e`` of ``h`` to within
          ``2 e + scale`` of ``h``, for ``h`` inside the calibrated range
          (one half step of rounding, at most half a step of boundary
          clipping, plus the incoming displacement counted twice).

        Keys: ``dequant_i``, ``bias_i`` / ``logits``, ``relu_i``,
        ``quant_i`` — the ``quant_i`` bound applies to the *dequantized*
        codes of that stage.  Rigorous when the input's activations stay
        inside the calibrated ranges (e.g. the input was calibrated on).
        """
        x = self.mlp._check_input(x)
        _pre, post = self.mlp.forward_trace(x)
        bounds: Dict[str, np.ndarray] = {}
        error = self.input_params.round_trip_error(x)
        h = x
        last = self.mlp.n_layers - 1
        for index, (weights, _bias) in enumerate(self.mlp.layers):
            dequantized = self.weight_params[index].dequantize(
                self.weight_codes[index]
            )
            delta = np.abs(weights - dequantized)
            error = delta @ (np.abs(h) + error) + np.abs(weights) @ error
            bounds[f"dequant_{index}"] = error
            name = OUTPUT_NAME if index == last else f"bias_{index}"
            bounds[name] = error
            if index != last:
                bounds[f"relu_{index}"] = error
                error = 2.0 * error + self.activation_params[index].scale
                bounds[f"quant_{index}"] = error
                h = post[index]
        return bounds

    def float_outputs(self, result) -> Dict[str, np.ndarray]:
        """Float-domain values of every bounded stage of one pipeline run.

        Maps a :class:`~repro.graph.program.PipelineResult` of
        :meth:`graph` to arrays directly comparable against
        :meth:`error_bounds` (the ``quant_i`` codes are dequantized with
        their own parameters; stages already in the float domain pass
        through).
        """
        outputs: Dict[str, np.ndarray] = {}
        last = self.mlp.n_layers - 1
        for index in range(self.mlp.n_layers):
            outputs[f"dequant_{index}"] = result[f"dequant_{index}"].values
            name = OUTPUT_NAME if index == last else f"bias_{index}"
            outputs[name] = result[name].values
            if index != last:
                outputs[f"relu_{index}"] = result[f"relu_{index}"].values
                outputs[f"quant_{index}"] = self.activation_params[
                    index
                ].dequantize(result[f"quant_{index}"].values)
        return outputs
