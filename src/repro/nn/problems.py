"""Typed NN problems: the inference stages as graph nodes.

Five kinds, mirroring the stations of a quantized accelerator datapath:

* :class:`Dense` — ``y = W (x - x_zero_point)`` on the linear systolic
  array (the matvec engine with the zero-point subtraction as an input
  prologue; int32 accumulation under ``dtype_mode="int8"``),
* :class:`Bias` — ``y = x + b`` (host epilogue),
* :class:`Relu` — ``y = max(x, 0)`` (host epilogue),
* :class:`Quantize` / :class:`Dequantize` — the affine int8 casts between
  the float and integer domains.

All five register through
:func:`repro.graph.problems.register_problem_type`, so they compose into
:class:`~repro.graph.graph.Graph` pipelines, carry
``(kind, shapes, w, options)`` plan keys, and serve through
:class:`~repro.service.SolverService` exactly like the classic kinds.
Scales and zero points are execution *values* (not key material): one
plan per shape serves every calibration.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple, Union

from ..api.config import ExecutionOptions
from ..graph.problems import Problem, ShapeOf, _operand, register_problem_type
from .quantization import QuantParams

__all__ = ["Bias", "Dense", "Dequantize", "Quantize", "Relu"]


@register_problem_type
class Dense(Problem):
    """``y = W (x - x_zero_point)`` on the ``w``-cell linear array.

    The zero-point subtraction is the datapath's input station (the
    ``sub_zp`` stage of TPU-style designs), applied before the MACs so an
    affine-quantized activation vector feeds the array directly.  Under
    ``dtype_mode="int8"`` operands must be integer arrays and the
    accumulator is int32; under the default float64 mode this is a plain
    shifted matvec.
    """

    kind = "dense"
    produces = "vector"

    def __init__(
        self,
        matrix: Any,
        x: Any,
        *,
        x_zero_point: int = 0,
        dtype_mode: Optional[str] = None,
        options: Optional[ExecutionOptions] = None,
        name: Optional[str] = None,
    ):
        super().__init__(options=options, name=name)
        self.matrix = _operand(matrix)
        self.x = _operand(x)
        self.x_zero_point = int(x_zero_point)
        self.dtype_mode = dtype_mode

    def operand_values(self) -> Tuple[Any, ...]:
        return (self.matrix, self.x)

    def execute_kwargs(self) -> Dict[str, Any]:
        return {"x_zero_point": self.x_zero_point}

    def option_overrides(self) -> Dict[str, Any]:
        return {"dtype_mode": self.dtype_mode}

    def spec_and_output(self, shape_of: ShapeOf):
        n, m = self._matrix_shape(shape_of, self.matrix, "matrix")
        self._vector_length(shape_of, self.x, "x", m)
        return (n, m), (n,)


class _ElementwiseProblem(Problem):
    """Shared slot/shape logic of the vector-in, vector-out stages."""

    produces = "vector"

    def __init__(
        self,
        x: Any,
        *,
        dtype_mode: Optional[str] = None,
        options: Optional[ExecutionOptions] = None,
        name: Optional[str] = None,
    ):
        super().__init__(options=options, name=name)
        self.x = _operand(x)
        self.dtype_mode = dtype_mode

    def operand_values(self) -> Tuple[Any, ...]:
        return (self.x,)

    def option_overrides(self) -> Dict[str, Any]:
        return {"dtype_mode": self.dtype_mode}

    def spec_and_output(self, shape_of: ShapeOf):
        shape = shape_of(self.x, "x")
        if len(shape) != 1:
            from ..errors import ShapeError

            raise ShapeError(
                f"{self.kind} operand 'x' must be a vector, got shape {shape}"
            )
        return shape, shape


@register_problem_type
class Bias(_ElementwiseProblem):
    """``y = x + b`` — the accumulator's bias-add station."""

    kind = "bias"

    def __init__(
        self,
        x: Any,
        b: Any,
        *,
        dtype_mode: Optional[str] = None,
        options: Optional[ExecutionOptions] = None,
        name: Optional[str] = None,
    ):
        super().__init__(x, dtype_mode=dtype_mode, options=options, name=name)
        self.b = _operand(b)

    def operand_values(self) -> Tuple[Any, ...]:
        return (self.x, self.b)

    def spec_and_output(self, shape_of: ShapeOf):
        spec, output = super().spec_and_output(shape_of)
        self._vector_length(shape_of, self.b, "b", spec[0])
        return spec, output


@register_problem_type
class Relu(_ElementwiseProblem):
    """``y = max(x, 0)`` — saturating-at-zero activation."""

    kind = "relu"


def _unpack_params(
    scale: Union[QuantParams, float], zero_point: Optional[int]
) -> Tuple[float, int]:
    """Accept either ``(QuantParams,)`` or explicit ``(scale, zero_point)``."""
    if isinstance(scale, QuantParams):
        if zero_point is not None:
            raise TypeError(
                "pass either a QuantParams or explicit scale/zero_point, "
                "not both"
            )
        return scale.scale, scale.zero_point
    return float(scale), int(zero_point if zero_point is not None else 0)


@register_problem_type
class Quantize(_ElementwiseProblem):
    """Float to int8: ``q = clip(round(x / scale) + zero_point, -128, 127)``."""

    kind = "quantize"

    def __init__(
        self,
        x: Any,
        scale: Union[QuantParams, float],
        zero_point: Optional[int] = None,
        *,
        options: Optional[ExecutionOptions] = None,
        name: Optional[str] = None,
    ):
        super().__init__(x, options=options, name=name)
        self.scale, self.zero_point = _unpack_params(scale, zero_point)

    def execute_kwargs(self) -> Dict[str, Any]:
        return {"scale": self.scale, "zero_point": self.zero_point}


@register_problem_type
class Dequantize(_ElementwiseProblem):
    """Integer codes to float: ``v = scale * (q - zero_point)``.

    Accepts int8 activation codes and int32 dense accumulators alike —
    the latter is the datapath's requantization multiply (``scale`` then
    being the product of the weight and input scales).
    """

    kind = "dequantize"

    def __init__(
        self,
        x: Any,
        scale: Union[QuantParams, float],
        zero_point: Optional[int] = None,
        *,
        options: Optional[ExecutionOptions] = None,
        name: Optional[str] = None,
    ):
        super().__init__(x, options=options, name=name)
        self.scale, self.zero_point = _unpack_params(scale, zero_point)

    def execute_kwargs(self) -> Dict[str, Any]:
        return {"scale": self.scale, "zero_point": self.zero_point}
