"""Compiled pipeline programs and their aggregated results.

A :class:`PipelineProgram` is what :class:`~repro.graph.compiler.GraphCompiler`
lowers a :class:`~repro.graph.graph.Graph` to: per-stage
:class:`~repro.api.plan.ExecutionPlan` objects (resolved through — and
deduplicated by — the owning solver's plan cache), operand bindings that
feed stage outputs into downstream slots, dependency levels marking
parallelizable stages, and the pairs of independent same-plan matvec
stages that execute together on one overlapped array run.

Running a program streams values only: a warm program performs **zero**
plan or transform construction, which is the whole point — a multi-stage
workload re-executed under new operand values costs k plan executions,
not k Python-API round-trips with re-validation and cache probes.

:class:`PipelineResult` aggregates the per-stage
:class:`~repro.api.solution.Solution` objects, the requested graph
outputs, per-stage residual norms and latencies, and the cold/warm
plan-build accounting for both the compile and the run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..api.plan import ExecutionPlan
from ..api.solution import Solution
from ..instrumentation import counters

__all__ = ["Binding", "PipelineProgram", "PipelineResult", "PipelineStage"]


@dataclass(frozen=True)
class Binding:
    """One operand (or kwarg) slot of a compiled stage.

    Either a concrete ``value``, or a reference to the output of stage
    ``source`` (with ``item`` selecting one element of a multi-valued
    output, e.g. an LU factor).
    """

    value: Any = None
    source: Optional[int] = None
    item: Optional[int] = None

    def resolve(self, outputs: List[Any]) -> Any:
        if self.source is None:
            return self.value
        produced = outputs[self.source]
        if self.item is not None:
            return produced[self.item]
        return produced


@dataclass(frozen=True)
class PipelineStage:
    """One lowered stage: a resolved plan plus its operand bindings."""

    index: int
    name: str
    kind: str
    plan: ExecutionPlan
    operands: Tuple[Binding, ...]
    kwargs: Mapping[str, Binding]
    level: int
    #: Whether the stage's plan was already resident at compile time.
    plan_cached: bool


class PipelineProgram:
    """An executable, reusable lowering of one problem graph.

    Bound to the solver (and plan cache) that compiled it; execute with
    :meth:`run` any number of times.  ``pairs`` lists the stage-index
    pairs the compiler marked for shared overlapped execution;
    ``fused_rewrites`` counts matmul→matvec associativity rewrites the
    compiler applied (only under ``fuse=True``).
    """

    def __init__(
        self,
        stages: Tuple[PipelineStage, ...],
        outputs: Tuple[Tuple[str, int], ...],
        pairs: Tuple[Tuple[int, int], ...] = (),
        fused_rewrites: int = 0,
        compile_plan_builds: int = 0,
    ):
        self._stages = stages
        self._outputs = outputs
        self._pairs = pairs
        self._pair_partner: Dict[int, int] = {}
        for first, second in pairs:
            self._pair_partner[first] = second
            self._pair_partner[second] = first
        self._fused_rewrites = int(fused_rewrites)
        self._compile_plan_builds = int(compile_plan_builds)
        self._ran = False

    # -- introspection ----------------------------------------------------------------
    @property
    def stages(self) -> Tuple[PipelineStage, ...]:
        return self._stages

    @property
    def outputs(self) -> Tuple[Tuple[str, int], ...]:
        return self._outputs

    @property
    def pairs(self) -> Tuple[Tuple[int, int], ...]:
        """Stage-index pairs that share one overlapped array run."""
        return self._pairs

    @property
    def fused_rewrites(self) -> int:
        return self._fused_rewrites

    @property
    def compile_plan_builds(self) -> int:
        """Plans built (not cache-hit) while compiling this program."""
        return self._compile_plan_builds

    @property
    def n_levels(self) -> int:
        return 1 + max((stage.level for stage in self._stages), default=-1)

    def plan_keys(self) -> Tuple[Tuple, ...]:
        return tuple(stage.plan.key for stage in self._stages)

    def describe(self) -> str:
        """Stage table: level, name, kind, plan reuse, pairing."""
        unique_plans = len({id(stage.plan) for stage in self._stages})
        lines = [
            (
                f"PipelineProgram: {len(self._stages)} stage(s) over "
                f"{self.n_levels} level(s), {unique_plans} distinct plan(s), "
                f"{len(self._pairs)} overlapped pair(s), "
                f"{self._fused_rewrites} fusion rewrite(s)"
            )
        ]
        for stage in self._stages:
            marks = []
            if stage.plan_cached:
                marks.append("warm")
            if stage.index in self._pair_partner:
                partner = self._stages[self._pair_partner[stage.index]].name
                marks.append(f"paired with {partner}")
            suffix = f"  [{', '.join(marks)}]" if marks else ""
            lines.append(
                f"  [{stage.level}] {stage.name}: {stage.kind} "
                f"shapes={stage.plan.shapes}{suffix}"
            )
        outputs = ", ".join(name for name, _index in self._outputs)
        lines.append(f"  outputs: {outputs}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PipelineProgram(stages={len(self._stages)}, "
            f"pairs={len(self._pairs)})"
        )

    # -- execution --------------------------------------------------------------------
    def run(self) -> "PipelineResult":
        """Execute every stage in dependency order; returns the result.

        Stage outputs feed downstream operand slots in memory; paired
        stages execute together through the plan's overlapped contraflow
        path (values identical to sequential execution); everything else
        streams through its plan one stage at a time.

        The program's compile-time plan builds are charged to the *first*
        run's result only — they are paid once, so every later run of a
        resident program reports ``warm`` as soon as execution itself
        builds nothing.
        """
        counters.graph_runs += 1
        charged_compile_builds = 0 if self._ran else self._compile_plan_builds
        self._ran = True
        total_start = time.perf_counter()
        n = len(self._stages)
        solutions: List[Optional[Solution]] = [None] * n
        outputs: List[Any] = [None] * n
        latencies: List[float] = [0.0] * n

        def finish(index: int, solution: Solution, elapsed: float) -> None:
            solutions[index] = solution
            outputs[index] = solution.values
            latencies[index] = elapsed

        # Level order, not stage-list order: a paired partner's
        # dependencies may sit *after* the pair's first member in the
        # graph's topological order, but they always sit on a strictly
        # lower level, so walking levels makes every pair fire with both
        # members' inputs resolved.
        for stage in sorted(self._stages, key=lambda s: (s.level, s.index)):
            if solutions[stage.index] is not None:
                continue  # already produced as the second half of a pair
            operands = tuple(
                binding.resolve(outputs) for binding in stage.operands
            )
            partner_index = self._pair_partner.get(stage.index)
            start = time.perf_counter()
            if partner_index is not None:
                partner = self._stages[partner_index]
                partner_operands = tuple(
                    binding.resolve(outputs) for binding in partner.operands
                )
                first, second = stage.plan.execute_pair(
                    _matvec_triple(operands), _matvec_triple(partner_operands)
                )
                elapsed = time.perf_counter() - start
                counters.fused_matvec_pairs += 1
                # The shared run's wall time is attributed to both stages.
                finish(stage.index, first, elapsed)
                finish(partner_index, second, elapsed)
                continue
            kwargs = {
                key: binding.resolve(outputs)
                for key, binding in stage.kwargs.items()
            }
            solution = stage.plan.execute(*operands, **kwargs)
            finish(stage.index, solution, time.perf_counter() - start)

        # Execution-time builds are the inner engine plans the iterative
        # kinds warm up on their first sweep; every solution reports its
        # own (engine-local, hence shard-exact) split, so summing them
        # stays correct while other service shards build concurrently —
        # unlike a diff of the process-global counter.
        run_builds = sum(
            int(solution.stats.get("plan_builds_first_sweep", 0))
            + int(solution.stats.get("plan_builds_warm_sweeps", 0))
            for solution in solutions
            if solution is not None
        )
        return PipelineResult(
            names=tuple(stage.name for stage in self._stages),
            kinds=tuple(stage.kind for stage in self._stages),
            solutions=tuple(solutions),  # type: ignore[arg-type]
            outputs=tuple(
                (name, outputs[index]) for name, index in self._outputs
            ),
            stage_seconds=tuple(latencies),
            total_seconds=time.perf_counter() - total_start,
            plan_builds=run_builds,
            compile_plan_builds=charged_compile_builds,
            fused_pairs=len(self._pairs),
            fused_rewrites=self._fused_rewrites,
            levels=tuple(stage.level for stage in self._stages),
        )


def _matvec_triple(operands: Tuple) -> Tuple:
    """Normalize matvec operands to the (matrix, x, b) pairing form."""
    if len(operands) == 2:
        return (operands[0], operands[1], None)
    return operands


@dataclass(frozen=True)
class PipelineResult:
    """Aggregated result of one :meth:`PipelineProgram.run`.

    ``plan_builds`` counts plans built *during the run* — the inner
    engine plans the iterative kinds warm up on their first sweep, as
    reported per solution (engine-local accounting, exact even while
    other service shards compile concurrently).
    ``compile_plan_builds`` counts stage plans built when the program
    was compiled (charged to the first run).  A fully warm pipeline
    reports zero for both.
    """

    names: Tuple[str, ...]
    kinds: Tuple[str, ...]
    solutions: Tuple[Solution, ...]
    outputs: Tuple[Tuple[str, Any], ...]
    stage_seconds: Tuple[float, ...]
    total_seconds: float
    plan_builds: int
    compile_plan_builds: int
    fused_pairs: int
    fused_rewrites: int
    levels: Tuple[int, ...] = ()

    @property
    def warm(self) -> bool:
        """True when neither compile nor run built a single plan."""
        return self.plan_builds == 0 and self.compile_plan_builds == 0

    @property
    def values(self) -> Any:
        """The single graph output's values (errors if there are several)."""
        if len(self.outputs) != 1:
            names = ", ".join(name for name, _values in self.outputs)
            raise ValueError(
                f"pipeline has {len(self.outputs)} outputs ({names}); "
                f"select one with result.output(name)"
            )
        return self.outputs[0][1]

    def output(self, name: str) -> Any:
        """The values of the graph output called ``name``."""
        for output_name, values in self.outputs:
            if output_name == name:
                return values
        known = ", ".join(output_name for output_name, _values in self.outputs)
        raise KeyError(f"no pipeline output {name!r} (outputs: {known})")

    def __getitem__(self, name: str) -> Solution:
        """The per-stage :class:`Solution` of the stage called ``name``."""
        try:
            return self.solutions[self.names.index(name)]
        except ValueError:
            known = ", ".join(self.names)
            raise KeyError(f"no pipeline stage {name!r} (stages: {known})") from None

    @property
    def residuals(self) -> Mapping[str, float]:
        """Per-stage residual norms, where the stage's kind reports one."""
        found: Dict[str, float] = {}
        for name, solution in zip(self.names, self.solutions):
            residual = solution.stats.get("residual_norm")
            if residual is not None:
                found[name] = float(residual)
        return found

    @property
    def stage_latency(self) -> Mapping[str, float]:
        """Per-stage wall seconds (paired stages share their run's time)."""
        return dict(zip(self.names, self.stage_seconds))

    def describe(self) -> str:
        """Multi-line per-graph report: stages, fusion, builds, latency."""
        build_state = "warm" if self.warm else "cold"
        lines = [
            (
                f"PipelineResult: {len(self.solutions)} stage(s) in "
                f"{self.total_seconds * 1e3:.2f} ms ({build_state}: "
                f"{self.compile_plan_builds} compile + {self.plan_builds} "
                f"run plan build(s))"
            ),
            (
                f"  fusion:    {self.fused_pairs} overlapped pair(s), "
                f"{self.fused_rewrites} matmul->matvec rewrite(s)"
            ),
        ]
        residuals = self.residuals
        for index, (name, solution) in enumerate(zip(self.names, self.solutions)):
            level = self.levels[index] if self.levels else 0
            extra = ""
            if name in residuals:
                extra += f", residual {residuals[name]:.3e}"
            if solution.stats.get("paired"):
                extra += ", paired"
            lines.append(
                f"  [{level}] {name}: {solution.kind} in "
                f"{self.stage_seconds[index] * 1e3:.2f} ms"
                f"{extra}"
            )
        outputs = ", ".join(name for name, _values in self.outputs)
        lines.append(f"  outputs:   {outputs}")
        return "\n".join(lines)
