"""Compiled pipeline programs and their aggregated results.

A :class:`PipelineProgram` is what :class:`~repro.graph.compiler.GraphCompiler`
lowers a :class:`~repro.graph.graph.Graph` to: per-stage
:class:`~repro.api.plan.ExecutionPlan` objects (resolved through — and
deduplicated by — the owning solver's plan cache), operand bindings that
feed stage outputs into downstream slots, dependency levels marking
parallelizable stages, and the pairs of independent same-plan matvec
stages that execute together on one overlapped array run.

Running a program streams values only: a warm program performs **zero**
plan or transform construction, which is the whole point — a multi-stage
workload re-executed under new operand values costs k plan executions,
not k Python-API round-trips with re-validation and cache probes.

Programs are *partitionable*: :meth:`PipelineProgram.segments` splits the
stage list into level-aligned :class:`ProgramSegment` units — one per
dependency level by default, or one per ``(level, shard)`` when given a
placement policy — and :meth:`run` is itself just the sequential
execution of those segments.  The serving layer
(:mod:`repro.service`) executes the same segments on their placed shards
with outputs streamed between them, bit-identical to :meth:`run` because
both walk identical plans over identical operand bindings in level
order.

:class:`PipelineResult` aggregates the per-stage
:class:`~repro.api.solution.Solution` objects, the requested graph
outputs, per-stage residual norms and latencies, the cold/warm
plan-build accounting for both the compile and the run, and — when the
program was served across shards — the per-stage placements plus the
modeled array-time accounting of the level-parallel schedule.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Mapping, Optional, Tuple

from ..api.plan import ExecutionPlan
from ..api.solution import Solution
from ..instrumentation import counters
from ..obs.tracing import NULL_SPAN, Tracer, active_span

__all__ = [
    "Binding",
    "PipelineProgram",
    "PipelineResult",
    "PipelineStage",
    "ProgramSegment",
]


@dataclass(frozen=True)
class Binding:
    """One operand (or kwarg) slot of a compiled stage.

    Either a concrete ``value``, or a reference to the output of stage
    ``source`` (with ``item`` selecting one element of a multi-valued
    output, e.g. an LU factor).
    """

    value: Any = None
    source: Optional[int] = None
    item: Optional[int] = None

    def resolve(self, outputs: List[Any]) -> Any:
        if self.source is None:
            return self.value
        produced = outputs[self.source]
        if self.item is not None:
            return produced[self.item]
        return produced


@dataclass(frozen=True)
class PipelineStage:
    """One lowered stage: a resolved plan plus its operand bindings."""

    index: int
    name: str
    kind: str
    plan: ExecutionPlan
    operands: Tuple[Binding, ...]
    kwargs: Mapping[str, Binding]
    level: int
    #: Whether the stage's plan was already resident at compile time.
    plan_cached: bool


@dataclass(frozen=True)
class ProgramSegment:
    """A level-aligned slice of a program: the unit of placed execution.

    Every stage in a segment sits on the same dependency level, so a
    segment's inputs are fully determined by strictly earlier levels —
    the property that lets the serving layer run one segment per shard
    and stream outputs between segments without ever reordering value
    flow relative to :meth:`PipelineProgram.run`.  ``pairs`` are the
    overlapped matvec pairs falling entirely inside this segment (pair
    members share one plan, hence one placement, so a pair can never
    straddle segments).
    """

    level: int
    stages: Tuple[PipelineStage, ...]
    pairs: Tuple[Tuple[int, int], ...] = ()

    @property
    def stage_indices(self) -> Tuple[int, ...]:
        return tuple(stage.index for stage in self.stages)

    def plan_keys(self) -> Tuple[Tuple, ...]:
        return tuple(stage.plan.key for stage in self.stages)

    def execute(
        self,
        outputs: List[Any],
        solutions: List[Optional[Solution]],
        latencies: List[float],
    ) -> None:
        """Execute this segment's stages against shared execution state.

        ``outputs``/``solutions``/``latencies`` are the whole program's
        per-stage slots; this segment reads upstream outputs from them
        and writes only its own stages' entries.  Paired stages execute
        together through the plan's overlapped contraflow path (values
        identical to sequential execution).
        """
        partner: Dict[int, int] = {}
        for first, second in self.pairs:
            partner[first] = second
            partner[second] = first
        stage_by_index = {stage.index: stage for stage in self.stages}
        # One thread-local read; when nothing is tracing every stage
        # below uses the shared no-op span.
        parent = active_span()

        def finish(index: int, solution: Solution, elapsed: float) -> None:
            solutions[index] = solution
            outputs[index] = solution.values
            latencies[index] = elapsed

        for stage in self.stages:
            if solutions[stage.index] is not None:
                continue  # already produced as the second half of a pair
            operands = tuple(
                binding.resolve(outputs) for binding in stage.operands
            )
            partner_index = partner.get(stage.index)
            start = time.perf_counter()
            if partner_index is not None:
                partner_stage = stage_by_index[partner_index]
                partner_operands = tuple(
                    binding.resolve(outputs)
                    for binding in partner_stage.operands
                )
                span = (
                    NULL_SPAN
                    if parent is None
                    else parent.child(
                        f"stage {stage.name}+{partner_stage.name}",
                        category="stage",
                        kind=stage.kind,
                        level=stage.level,
                        paired=True,
                    )
                )
                with span:
                    first, second = stage.plan.execute_pair(
                        _matvec_triple(operands),
                        _matvec_triple(partner_operands),
                    )
                elapsed = time.perf_counter() - start
                counters.bump("fused_matvec_pairs")
                # The shared run's wall time is attributed to both stages.
                finish(stage.index, first, elapsed)
                finish(partner_index, second, elapsed)
                continue
            kwargs = {
                key: binding.resolve(outputs)
                for key, binding in stage.kwargs.items()
            }
            span = (
                NULL_SPAN
                if parent is None
                else parent.child(
                    f"stage {stage.name}",
                    category="stage",
                    kind=stage.kind,
                    level=stage.level,
                )
            )
            with span:
                solution = stage.plan.execute(*operands, **kwargs)
            finish(stage.index, solution, time.perf_counter() - start)


class PipelineProgram:
    """An executable, reusable lowering of one problem graph.

    Bound to the solver (and plan cache) that compiled it; execute with
    :meth:`run` any number of times.  ``pairs`` lists the stage-index
    pairs the compiler marked for shared overlapped execution;
    ``fused_rewrites`` counts matmul→matvec associativity rewrites the
    compiler applied (only under ``fuse=True``); ``fused_epilogues``
    counts head→epilogue chains collapsed into single ``fused`` stages
    (value-exact; applied by default under the compiled backend).
    """

    def __init__(
        self,
        stages: Tuple[PipelineStage, ...],
        outputs: Tuple[Tuple[str, int], ...],
        pairs: Tuple[Tuple[int, int], ...] = (),
        fused_rewrites: int = 0,
        compile_plan_builds: int = 0,
        fused_epilogues: int = 0,
    ):
        self._stages = stages
        self._outputs = outputs
        self._pairs = pairs
        self._pair_partner: Dict[int, int] = {}
        for first, second in pairs:
            self._pair_partner[first] = second
            self._pair_partner[second] = first
        self._fused_rewrites = int(fused_rewrites)
        self._compile_plan_builds = int(compile_plan_builds)
        self._fused_epilogues = int(fused_epilogues)
        self._ran = False

    # -- introspection ----------------------------------------------------------------
    @property
    def stages(self) -> Tuple[PipelineStage, ...]:
        return self._stages

    @property
    def outputs(self) -> Tuple[Tuple[str, int], ...]:
        return self._outputs

    @property
    def pairs(self) -> Tuple[Tuple[int, int], ...]:
        """Stage-index pairs that share one overlapped array run."""
        return self._pairs

    @property
    def fused_rewrites(self) -> int:
        return self._fused_rewrites

    @property
    def fused_epilogues(self) -> int:
        """Head→epilogue chains collapsed into single ``fused`` stages."""
        return self._fused_epilogues

    @property
    def compile_plan_builds(self) -> int:
        """Plans built (not cache-hit) while compiling this program."""
        return self._compile_plan_builds

    @property
    def n_levels(self) -> int:
        return 1 + max((stage.level for stage in self._stages), default=-1)

    def plan_keys(self) -> Tuple[Tuple, ...]:
        return tuple(stage.plan.key for stage in self._stages)

    def level_partition(self) -> Tuple[Tuple[PipelineStage, ...], ...]:
        """Stages grouped by dependency level, in level order."""
        by_level: Dict[int, List[PipelineStage]] = {}
        for stage in self._stages:
            by_level.setdefault(stage.level, []).append(stage)
        return tuple(
            tuple(sorted(by_level[level], key=lambda s: s.index))
            for level in sorted(by_level)
        )

    def segments(
        self,
        placement: Optional[Callable[[Hashable], int]] = None,
    ) -> Tuple[ProgramSegment, ...]:
        """Split the program into level-aligned execution segments.

        With no ``placement``, one segment per dependency level.  With a
        placement policy (a plan-key → shard callable, e.g.
        ``PlacementTable.shard_of``), each level splits further into one
        segment per shard, ordered by ``(level, shard)`` — the partition
        the serving layer streams across shards.  Executing the segments
        in order is exactly :meth:`run`'s schedule, so any execution that
        respects segment order within a level's *dependencies* (levels
        are independent within themselves) is bit-identical to it.
        """
        grouped: Dict[Tuple[int, int], List[PipelineStage]] = {}
        for stage in self._stages:
            shard = 0 if placement is None else int(placement(stage.plan.key))
            grouped.setdefault((stage.level, shard), []).append(stage)
        segments: List[ProgramSegment] = []
        for level, _shard in sorted(grouped):
            stages = tuple(
                sorted(grouped[(level, _shard)], key=lambda s: s.index)
            )
            indices = {stage.index for stage in stages}
            pairs = tuple(
                (first, second)
                for first, second in self._pairs
                if first in indices and second in indices
            )
            segments.append(
                ProgramSegment(level=level, stages=stages, pairs=pairs)
            )
        return tuple(segments)

    def describe(self) -> str:
        """Stage table: level partition, plan reuse, pairing."""
        unique_plans = len({id(stage.plan) for stage in self._stages})
        lines = [
            (
                f"PipelineProgram: {len(self._stages)} stage(s) over "
                f"{self.n_levels} level(s), {unique_plans} distinct plan(s), "
                f"{len(self._pairs)} overlapped pair(s), "
                f"{self._fused_rewrites} fusion rewrite(s), "
                f"{self._fused_epilogues} fused epilogue group(s)"
            )
        ]
        partition = " | ".join(
            f"{group[0].level}: " + ", ".join(stage.name for stage in group)
            for group in self.level_partition()
        )
        lines.append(f"  levels:    {partition}")
        for stage in self._stages:
            marks = []
            if stage.plan_cached:
                marks.append("warm")
            if stage.index in self._pair_partner:
                partner = self._stages[self._pair_partner[stage.index]].name
                marks.append(f"paired with {partner}")
            suffix = f"  [{', '.join(marks)}]" if marks else ""
            lines.append(
                f"  [{stage.level}] {stage.name}: {stage.kind} "
                f"shapes={stage.plan.shapes}{suffix}"
            )
        outputs = ", ".join(name for name, _index in self._outputs)
        lines.append(f"  outputs: {outputs}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PipelineProgram(stages={len(self._stages)}, "
            f"pairs={len(self._pairs)})"
        )

    # -- execution --------------------------------------------------------------------
    def consume_compile_charge(self) -> int:
        """The compile-time plan builds to charge to the next result.

        Charged exactly once — to the first :meth:`run` (or the first
        served execution) — so every later execution of a resident
        program reports ``warm`` as soon as execution itself builds
        nothing.
        """
        charged = 0 if self._ran else self._compile_plan_builds
        self._ran = True
        return charged

    def run(self, tracer: Optional[Tracer] = None) -> "PipelineResult":
        """Execute every stage in dependency order; returns the result.

        Walks the level-aligned segments in order — stage outputs feed
        downstream operand slots in memory; paired stages execute
        together through the plan's overlapped contraflow path (values
        identical to sequential execution); everything else streams
        through its plan one stage at a time.

        Pass an enabled :class:`~repro.obs.tracing.Tracer` to profile
        the run: a ``pipeline.run`` root span opens with per-stage
        children (and, under them, the plan-level ``plan.execute`` /
        ``plan_lookup`` spans), making warm-up plan builds and cold
        inner-engine compiles visible.  Served executions instead nest
        under the request trace the service attached.
        """
        counters.bump("graph_runs")
        charged_compile_builds = self.consume_compile_charge()
        root = NULL_SPAN
        if tracer is not None and tracer.enabled:
            root = tracer.start_trace(
                "pipeline.run",
                stages=len(self._stages),
                levels=self.n_levels,
            )
        total_start = time.perf_counter()
        n = len(self._stages)
        solutions: List[Optional[Solution]] = [None] * n
        outputs: List[Any] = [None] * n
        latencies: List[float] = [0.0] * n
        # Level order, not stage-list order: a paired partner's
        # dependencies may sit *after* the pair's first member in the
        # graph's topological order, but they always sit on a strictly
        # lower level, so walking level segments makes every pair fire
        # with both members' inputs resolved.
        with root:
            for segment in self.segments():
                segment.execute(outputs, solutions, latencies)
        return self.assemble(
            solutions,
            outputs,
            latencies,
            total_seconds=time.perf_counter() - total_start,
            compile_plan_builds=charged_compile_builds,
        )

    def assemble(
        self,
        solutions: List[Optional[Solution]],
        outputs: List[Any],
        latencies: List[float],
        total_seconds: float,
        compile_plan_builds: int,
        placements: Tuple[int, ...] = (),
    ) -> "PipelineResult":
        """Fold executed per-stage state into a :class:`PipelineResult`.

        Shared by :meth:`run` and the serving layer's cross-shard
        pipelined execution (which passes the per-stage ``placements`` it
        executed under).
        """
        # Execution-time builds are the inner engine plans the iterative
        # kinds warm up on their first sweep; every solution reports its
        # own (engine-local, hence shard-exact) split, so summing them
        # stays correct while other service shards build concurrently —
        # unlike a diff of the process-global counter.
        run_builds = sum(
            int(solution.stats.get("plan_builds_first_sweep", 0))
            + int(solution.stats.get("plan_builds_warm_sweeps", 0))
            for solution in solutions
            if solution is not None
        )
        return PipelineResult(
            names=tuple(stage.name for stage in self._stages),
            kinds=tuple(stage.kind for stage in self._stages),
            solutions=tuple(solutions),  # type: ignore[arg-type]
            outputs=tuple(
                (name, outputs[index]) for name, index in self._outputs
            ),
            stage_seconds=tuple(latencies),
            total_seconds=total_seconds,
            plan_builds=run_builds,
            compile_plan_builds=compile_plan_builds,
            fused_pairs=len(self._pairs),
            fused_rewrites=self._fused_rewrites,
            levels=tuple(stage.level for stage in self._stages),
            placements=tuple(placements),
            fused_epilogues=self._fused_epilogues,
        )


def _matvec_triple(operands: Tuple) -> Tuple:
    """Normalize matvec operands to the (matrix, x, b) pairing form."""
    if len(operands) == 2:
        return (operands[0], operands[1], None)
    return operands


def _solution_steps(solution: Solution) -> int:
    """Modeled array steps of one stage (0 for host-epilogue kinds)."""
    steps = getattr(solution, "measured_steps", 0)
    return int(steps) if steps else 0


@dataclass(frozen=True)
class PipelineResult:
    """Aggregated result of one :meth:`PipelineProgram.run`.

    ``plan_builds`` counts plans built *during the run* — the inner
    engine plans the iterative kinds warm up on their first sweep, as
    reported per solution (engine-local accounting, exact even while
    other service shards compile concurrently).
    ``compile_plan_builds`` counts stage plans built when the program
    was compiled (charged to the first run).  A fully warm pipeline
    reports zero for both.

    ``placements`` is the per-stage shard assignment when the program
    executed through the serving layer's cross-shard pipeline (empty for
    a plain single-solver :meth:`PipelineProgram.run`).
    """

    names: Tuple[str, ...]
    kinds: Tuple[str, ...]
    solutions: Tuple[Solution, ...]
    outputs: Tuple[Tuple[str, Any], ...]
    stage_seconds: Tuple[float, ...]
    total_seconds: float
    plan_builds: int
    compile_plan_builds: int
    fused_pairs: int
    fused_rewrites: int
    levels: Tuple[int, ...] = ()
    placements: Tuple[int, ...] = ()
    #: Head→epilogue chains that executed as single ``fused`` stages.
    fused_epilogues: int = 0

    @property
    def warm(self) -> bool:
        """True when neither compile nor run built a single plan."""
        return self.plan_builds == 0 and self.compile_plan_builds == 0

    @property
    def values(self) -> Any:
        """The single graph output's values (errors if there are several)."""
        if len(self.outputs) != 1:
            names = ", ".join(name for name, _values in self.outputs)
            raise ValueError(
                f"pipeline has {len(self.outputs)} outputs ({names}); "
                f"select one with result.output(name)"
            )
        return self.outputs[0][1]

    def output(self, name: str) -> Any:
        """The values of the graph output called ``name``."""
        for output_name, values in self.outputs:
            if output_name == name:
                return values
        known = ", ".join(output_name for output_name, _values in self.outputs)
        raise KeyError(f"no pipeline output {name!r} (outputs: {known})")

    def __getitem__(self, name: str) -> Solution:
        """The per-stage :class:`Solution` of the stage called ``name``."""
        try:
            return self.solutions[self.names.index(name)]
        except ValueError:
            known = ", ".join(self.names)
            raise KeyError(f"no pipeline stage {name!r} (stages: {known})") from None

    @property
    def residuals(self) -> Mapping[str, float]:
        """Per-stage residual norms, where the stage's kind reports one."""
        found: Dict[str, float] = {}
        for name, solution in zip(self.names, self.solutions):
            residual = solution.stats.get("residual_norm")
            if residual is not None:
                found[name] = float(residual)
        return found

    @property
    def stage_latency(self) -> Mapping[str, float]:
        """Per-stage wall seconds (paired stages share their run's time)."""
        return dict(zip(self.names, self.stage_seconds))

    # -- modeled array-time accounting --------------------------------------------
    def modeled_sequential_steps(self) -> int:
        """Total modeled array steps executed one stage after another.

        The single-array (single-shard) schedule's modeled completion
        time: the sum of every stage's ``measured_steps`` (host-epilogue
        kinds report zero; paired stages each report their shared
        overlapped run, which both schedules count identically).
        """
        return sum(
            _solution_steps(solution) for solution in self.solutions
        )

    def modeled_pipeline_steps(self) -> int:
        """Modeled completion steps of the level-parallel placed schedule.

        Stages on one level are independent; placed on distinct shards
        (arrays) they run simultaneously in the modeled machine, so a
        level costs the *maximum* over shards of that shard's summed
        stage steps — against the sequential schedule's sum.  With no
        placements recorded every level collapses to one shard and this
        equals :meth:`modeled_sequential_steps`.
        """
        by_level: Dict[int, Dict[int, int]] = {}
        for index, solution in enumerate(self.solutions):
            level = self.levels[index] if self.levels else 0
            shard = self.placements[index] if self.placements else 0
            shards = by_level.setdefault(level, {})
            shards[shard] = shards.get(shard, 0) + _solution_steps(solution)
        return sum(
            max(shards.values()) for shards in by_level.values() if shards
        )

    def level_partition(self) -> Tuple[Tuple[str, ...], ...]:
        """Stage names grouped by dependency level, in level order."""
        by_level: Dict[int, List[str]] = {}
        for index, name in enumerate(self.names):
            level = self.levels[index] if self.levels else 0
            by_level.setdefault(level, []).append(name)
        return tuple(
            tuple(by_level[level]) for level in sorted(by_level)
        )

    def describe(self) -> str:
        """Multi-line per-graph report: level partition, placements, fusion,
        builds, latency."""
        build_state = "warm" if self.warm else "cold"
        lines = [
            (
                f"PipelineResult: {len(self.solutions)} stage(s) in "
                f"{self.total_seconds * 1e3:.2f} ms ({build_state}: "
                f"{self.compile_plan_builds} compile + {self.plan_builds} "
                f"run plan build(s))"
            ),
            (
                f"  fusion:    {self.fused_pairs} overlapped pair(s), "
                f"{self.fused_rewrites} matmul->matvec rewrite(s), "
                f"{self.fused_epilogues} fused epilogue group(s)"
            ),
        ]
        partition = " | ".join(
            f"{level}: " + ", ".join(names)
            for level, names in zip(
                sorted({lvl for lvl in (self.levels or (0,) * len(self.names))}),
                self.level_partition(),
            )
        )
        lines.append(f"  levels:    {partition}")
        if self.placements:
            sequential = self.modeled_sequential_steps()
            pipelined = self.modeled_pipeline_steps()
            shards = ", ".join(
                str(shard) for shard in sorted(set(self.placements))
            )
            lines.append(
                f"  placement: shards [{shards}], modeled steps "
                f"{pipelined} pipelined vs {sequential} sequential"
            )
        residuals = self.residuals
        for index, (name, solution) in enumerate(zip(self.names, self.solutions)):
            level = self.levels[index] if self.levels else 0
            extra = ""
            if self.placements:
                extra += f" @shard {self.placements[index]}"
            if name in residuals:
                extra += f", residual {residuals[name]:.3e}"
            if solution.stats.get("paired"):
                extra += ", paired"
            lines.append(
                f"  [{level}] {name}: {solution.kind} in "
                f"{self.stage_seconds[index] * 1e3:.2f} ms"
                f"{extra}"
            )
        outputs = ", ".join(name for name, _values in self.outputs)
        lines.append(f"  outputs:   {outputs}")
        return "\n".join(lines)
