"""Typed problem objects: the canonical request representation.

Each problem kind the solver registry dispatches has (baselines aside) a
typed counterpart here — :class:`MatVec`, :class:`MatMul`,
:class:`Triangular`, :class:`LU`, :class:`Jacobi`, :class:`SOR`,
:class:`CG`, :class:`Refine`, :class:`Power`, :class:`Sparse` — replacing
the stringly-typed ``solver.solve("matvec", a, x, b)`` call shape.  A
typed problem carries

* its **operand slots** (concrete arrays, or :class:`Ref` references to
  the outputs of other problems, which is what composes problems into
  pipeline graphs),
* its **options overrides** (``overlapped=``, ``omega=``, ``criteria=``,
  ``tolerance=`` merge into the solver's :class:`ExecutionOptions`), and
* a **derived plan key** — ``(kind, shapes, w, options)`` — identical to
  the key the string-kind path would compute, so typed requests land on
  the same cached :class:`~repro.api.plan.ExecutionPlan` (and the same
  :mod:`repro.service` shard) as their legacy spellings.

Composition sugar::

    y = MatMul(A, B) @ x            # matvec on the matmul's output
    z = A @ Jacobi(M, b)            # ndarray @ problem works too
    r = LU(A).then(Refine(b))       # sequence, binding Refine's matrix
                                    # (ordering only; see Problem.then)
    t = Triangular(LU(A).lower, c)  # factor selection via Ref items

The stable ``kind -> problem class`` mapping is :func:`problem_types`.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    Iterator,
    Mapping,
    Optional,
    Tuple,
    Type,
)
from types import MappingProxyType

import numpy as np

from ..api.config import ExecutionOptions
from ..errors import GraphError, ShapeError
from ..iterative.criteria import ConvergenceCriteria

__all__ = [
    "CG",
    "LU",
    "Jacobi",
    "MatMul",
    "MatVec",
    "Power",
    "Problem",
    "Ref",
    "Refine",
    "SOR",
    "Sparse",
    "Triangular",
    "problem_types",
    "register_problem_type",
]

#: A shape resolver: maps one operand slot value (array or Ref) to its
#: shape tuple, raising ShapeError with slot context on mismatch.
ShapeOf = Callable[[Any, str], Tuple[int, ...]]


class Ref:
    """A reference to the output of another pipeline node.

    ``item`` selects one element of a multi-valued output (the LU kind
    produces the factor pair ``(L, U)``; ``Ref(lu, 0)`` is ``L``).
    Problems used directly in an operand slot are wrapped into a ``Ref``
    automatically, so explicit construction is only needed for ``item``
    selection — and :attr:`LU.lower` / :attr:`LU.upper` cover that.
    """

    __slots__ = ("node", "item")

    def __init__(self, node: "Problem", item: Optional[int] = None):
        if not isinstance(node, Problem):
            raise TypeError(
                f"Ref targets a typed problem node, got {type(node).__name__}"
            )
        self.node = node
        self.item = item

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        suffix = "" if self.item is None else f"[{self.item}]"
        return f"Ref({self.node!r}{suffix})"


def _operand(value: Any) -> Any:
    """Normalize one operand slot: problems become refs, arrays pass through."""
    if isinstance(value, Problem):
        return Ref(value)
    return value


class Problem:
    """Base class of the typed problem objects.

    Subclasses declare their registry ``kind``, what they ``produce``
    (``"vector"``, ``"matrix"`` or ``"factors"``), their operand slots,
    and how operand shapes map to the handler's plan-key shape spec.
    Identity is node identity: two separately constructed problems are
    two pipeline nodes even when their operands are equal.
    """

    kind: ClassVar[str] = ""
    #: What the node's ``Solution.values`` holds, for composition rules.
    produces: ClassVar[str] = "vector"

    #: Binary numpy ops defer to our reflected methods (``A @ problem``).
    __array_ufunc__ = None

    def __init__(
        self,
        options: Optional[ExecutionOptions] = None,
        name: Optional[str] = None,
    ):
        if options is not None and not isinstance(options, ExecutionOptions):
            raise TypeError(
                f"options must be ExecutionOptions or None, got {options!r}"
            )
        self.options = options
        self.name = name
        #: Pure ordering predecessors added by :meth:`then` — nodes that
        #: must complete first even though no value flows along the edge.
        self.after: Tuple["Problem", ...] = ()
        #: Whether :meth:`then` filled this node's matrix slot (partial
        #: nodes are one-shot; a second then() on one is an error).
        self._then_bound: bool = False

    # -- composition --------------------------------------------------------------
    def named(self, name: str) -> "Problem":
        """Set the node's pipeline name (chains: ``MatVec(a, x).named("y")``)."""
        self.name = str(name)
        return self

    def then(self, successor: "Problem") -> "Problem":
        """Sequence ``successor`` after this node and return it.

        If the successor was built in partial form with an unbound matrix
        slot (``LU(A).then(Refine(b))``), this node's own matrix operand
        is bound into it; either way an ordering edge is added so the
        successor executes after this node.

        ``then`` is an *ordering* combinator, not factor transplantation:
        ``LU(A).then(Refine(b))`` runs the LU stage (whose factor pair is
        available to other consumers via ``.lower``/``.upper``) and then
        a refine stage that factors internally as it always does.  When
        nothing else consumes the factors, plain ``Refine(A, b)`` does
        the same work once.
        """
        if not isinstance(successor, Problem):
            raise TypeError(
                f"then() sequences typed problems, got {type(successor).__name__}"
            )
        if getattr(successor, "matrix", False) is None:
            matrix = getattr(self, "matrix", None)
            if matrix is None:
                raise GraphError(
                    f"{type(successor).__name__} has no matrix bound and "
                    f"{type(self).__name__} carries none to forward"
                )
            setattr(successor, "matrix", matrix)
            successor._then_bound = True
        elif successor._then_bound:
            # The successor's matrix came from an earlier then(): quietly
            # keeping it while adding another ordering edge would solve
            # against the *first* predecessor's matrix — a silently wrong
            # answer.  Partial nodes are one-shot.
            raise GraphError(
                f"{type(successor).__name__} node was already sequenced by "
                f"a previous then() (its matrix is bound to that "
                f"predecessor's); build a fresh problem per pipeline stage"
            )
        successor.after = successor.after + (self,)
        return successor

    def __matmul__(self, other: Any) -> "Problem":
        if self.produces != "matrix":
            return NotImplemented
        if isinstance(other, (Problem, Ref)):
            target = other.node if isinstance(other, Ref) else other
            produces = target.produces
            if isinstance(other, Ref) and other.item is not None:
                produces = "matrix"  # a selected LU factor is a matrix
            if produces == "vector":
                return MatVec(self, other)
            if produces == "matrix":
                return MatMul(self, other)
            return NotImplemented
        ndim = len(np.shape(other))
        if ndim == 1:
            return MatVec(self, other)
        if ndim == 2:
            return MatMul(self, other)
        return NotImplemented

    def __rmatmul__(self, matrix: Any) -> "Problem":
        if len(np.shape(matrix)) != 2:
            return NotImplemented
        if self.produces == "vector":
            return MatVec(matrix, self)
        if self.produces == "matrix":
            return MatMul(matrix, self)
        return NotImplemented

    def require_bare(
        self,
        operands: Tuple[Any, ...] = (),
        kwargs: Optional[Mapping[str, Any]] = None,
        shape: Any = None,
    ) -> None:
        """Reject extra call arguments passed alongside a typed problem.

        The one guard every ``solve``/``plan_key``/``submit`` entry uses
        when handed a problem object instead of a kind string.
        """
        if operands or kwargs or shape is not None:
            raise TypeError(
                "typed problems carry their own operands and execution "
                "arguments; pass only the problem (and optionally options=)"
            )

    # -- the canonical call mapping -------------------------------------------------
    def operand_values(self) -> Tuple[Any, ...]:
        """The positional operand tuple, exactly as the handler expects it."""
        raise NotImplementedError

    def execute_kwargs(self) -> Dict[str, Any]:
        """Kind-specific execution arguments (``lower=``, ``x0=``, ...)."""
        return {}

    def option_overrides(self) -> Dict[str, Any]:
        """Per-problem :class:`ExecutionOptions` overrides (``None`` = unset)."""
        return {}

    def resolved_options(self, base: ExecutionOptions) -> ExecutionOptions:
        """The options a solve of this problem runs under.

        The problem's own ``options`` (when set) replaces ``base``
        wholesale; explicit per-problem overrides are then merged on top.
        """
        resolved = self.options if self.options is not None else base
        overrides = {
            field: value
            for field, value in self.option_overrides().items()
            if value is not None
        }
        return resolved.merged(**overrides) if overrides else resolved

    @classmethod
    def from_call(
        cls,
        operands: Tuple[Any, ...],
        kwargs: Mapping[str, Any],
        options: Optional[ExecutionOptions] = None,
    ) -> "Problem":
        """Build the typed problem for a legacy string-kind call.

        Constructors deliberately mirror the handlers' positional operand
        order and keyword execution arguments, so the string shim is one
        splat; a mismatched call raises ``TypeError`` exactly like the
        constructor would.  The single-operand *partial* forms some
        constructors accept (``Refine(b)``, for ``then()`` composition)
        are rejected here: for a string-kind call a missing matrix is a
        plain arity mistake and keeps its legacy :class:`ShapeError`
        diagnostic.
        """
        problem = cls(*operands, options=options, **kwargs)
        if getattr(problem, "matrix", False) is None:
            raise ShapeError(
                f"{cls.kind} needs a square system matrix as its first "
                f"operand; got {len(operands)} operand(s) (the partial "
                f"matrix-less form is a pipeline-composition spelling, "
                f"see Problem.then)"
            )
        return problem

    # -- shapes and keys -------------------------------------------------------------
    def spec_and_output(self, shape_of: ShapeOf):
        """``(plan shape spec, output shape)`` from resolved operand shapes.

        Validates every operand slot — including the cross-operand
        consistency the string path only discovers at execute time — and
        raises :class:`~repro.errors.ShapeError` otherwise.  The output
        shape is a plain dim tuple for vector/matrix producers and a
        tuple of dim tuples for factor producers.
        """
        raise NotImplementedError

    def iter_refs(self) -> Iterator[Ref]:
        """Every stage reference this problem consumes (operands + kwargs)."""
        for value in self.operand_values():
            if isinstance(value, Ref):
                yield value
        for value in self.execute_kwargs().values():
            if isinstance(value, Ref):
                yield value

    def concrete_operands(self) -> Tuple[Any, ...]:
        """Operands for single-problem execution; refs are an error here."""
        if any(True for _ in self.iter_refs()):
            raise GraphError(
                f"{type(self).__name__} references other pipeline stages; "
                f"build a Graph and run it through GraphCompiler instead of "
                f"a single-problem solve"
            )
        return self.operand_values()

    def plan_shapes(self, shape_of: Optional[ShapeOf] = None) -> Tuple:
        """The normalized plan-key shape tuple (via the kind's handler)."""
        from ..api.registry import get_handler

        if shape_of is None:
            shape_of = self._concrete_shape_of
        spec, _output = self.spec_and_output(shape_of)
        return get_handler(self.kind).shapes(shape=spec)

    def plan_key(
        self, w: int, options: Optional[ExecutionOptions] = None
    ) -> Tuple:
        """The ``(kind, shapes, w, options)`` cache/routing key of this problem.

        For a stand-alone (ref-free) problem; graph-embedded problems get
        their keys from :meth:`repro.graph.graph.Graph.plan_keys`, which
        resolves reference shapes first.
        """
        from ..api.plan import make_plan_key

        base = options if options is not None else ExecutionOptions()
        return make_plan_key(
            self.kind, self.plan_shapes(), w, self.resolved_options(base)
        )

    def _concrete_shape_of(self, value: Any, label: str) -> Tuple[int, ...]:
        if isinstance(value, Ref):
            raise GraphError(
                f"{type(self).__name__}.{label} references another stage; "
                f"shape resolution needs the enclosing Graph"
            )
        return tuple(int(dim) for dim in np.shape(value))

    # -- shared slot validators -------------------------------------------------------
    def _matrix_shape(self, shape_of: ShapeOf, value: Any, label: str):
        shape = shape_of(value, label)
        if len(shape) != 2:
            raise ShapeError(
                f"{self.kind} operand {label!r} must be a matrix, "
                f"got shape {shape}"
            )
        return shape

    def _square_shape(self, shape_of: ShapeOf, value: Any, label: str):
        shape = self._matrix_shape(shape_of, value, label)
        if shape[0] != shape[1]:
            raise ShapeError(
                f"{self.kind} needs a square {label}, got shape {shape}"
            )
        return shape

    def _vector_length(
        self, shape_of: ShapeOf, value: Any, label: str, expected: int
    ) -> None:
        shape = shape_of(value, label)
        if shape != (expected,):
            raise ShapeError(
                f"{self.kind} operand {label!r} must be a vector of length "
                f"{expected}, got shape {shape}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or hex(id(self))
        return f"{type(self).__name__}({label})"


# ----------------------------------------------------------------------------- #
# array kinds
# ----------------------------------------------------------------------------- #
class MatVec(Problem):
    """``y = A x + b`` on the ``w``-cell linear contraflow array."""

    kind = "matvec"
    produces = "vector"

    def __init__(
        self,
        matrix: Any,
        x: Any,
        b: Any = None,
        *,
        overlapped: Optional[bool] = None,
        options: Optional[ExecutionOptions] = None,
        name: Optional[str] = None,
    ):
        super().__init__(options=options, name=name)
        self.matrix = _operand(matrix)
        self.x = _operand(x)
        self.b = _operand(b) if b is not None else None
        self.overlapped = overlapped

    def operand_values(self) -> Tuple[Any, ...]:
        if self.b is None:
            return (self.matrix, self.x)
        return (self.matrix, self.x, self.b)

    def option_overrides(self) -> Dict[str, Any]:
        return {"overlapped": self.overlapped}

    def spec_and_output(self, shape_of: ShapeOf):
        n, m = self._matrix_shape(shape_of, self.matrix, "matrix")
        self._vector_length(shape_of, self.x, "x", m)
        if self.b is not None:
            self._vector_length(shape_of, self.b, "b", n)
        return (n, m), (n,)


class Sparse(MatVec):
    """``y = A x + b`` skipping zero ``w x w`` blocks of the operand."""

    kind = "sparse"

    def __init__(
        self,
        matrix: Any,
        x: Any,
        b: Any = None,
        *,
        tolerance: Optional[float] = None,
        options: Optional[ExecutionOptions] = None,
        name: Optional[str] = None,
    ):
        super().__init__(matrix, x, b, options=options, name=name)
        self.tolerance = tolerance

    def option_overrides(self) -> Dict[str, Any]:
        return {"sparse_tolerance": self.tolerance}


class MatMul(Problem):
    """``C = A B + E`` on the ``w x w`` hexagonal array."""

    kind = "matmul"
    produces = "matrix"

    def __init__(
        self,
        a: Any,
        b: Any,
        e: Any = None,
        *,
        options: Optional[ExecutionOptions] = None,
        name: Optional[str] = None,
    ):
        super().__init__(options=options, name=name)
        self.a = _operand(a)
        self.b = _operand(b)
        self.e = _operand(e) if e is not None else None

    def operand_values(self) -> Tuple[Any, ...]:
        if self.e is None:
            return (self.a, self.b)
        return (self.a, self.b, self.e)

    def spec_and_output(self, shape_of: ShapeOf):
        n, p = self._matrix_shape(shape_of, self.a, "a")
        p2, m = self._matrix_shape(shape_of, self.b, "b")
        if p != p2:
            raise ShapeError(
                f"matmul cannot multiply shapes {(n, p)} and {(p2, m)}"
            )
        if self.e is not None:
            e_shape = shape_of(self.e, "e")
            if e_shape != (n, m):
                raise ShapeError(
                    f"matmul accumulator e must have shape {(n, m)}, "
                    f"got {e_shape}"
                )
        return (n, p, m), (n, m)


class Triangular(Problem):
    """``T x = b`` by blocks; products on the array, diagonal solves on host.

    Partial form ``Triangular(b)`` leaves the matrix slot unbound for
    :meth:`Problem.then` to fill (``LU(A).then(Triangular(b))`` is rarely
    what you want though — prefer ``Triangular(LU(A).lower, b)``).
    """

    kind = "triangular"
    produces = "vector"

    def __init__(
        self,
        matrix: Any = None,
        b: Any = None,
        lower: bool = True,
        *,
        options: Optional[ExecutionOptions] = None,
        name: Optional[str] = None,
    ):
        super().__init__(options=options, name=name)
        if b is None:
            matrix, b = None, matrix
        if b is None:
            raise TypeError(f"{type(self).__name__} needs a right-hand side b")
        self.matrix = _operand(matrix) if matrix is not None else None
        self.b = _operand(b)
        self.lower = bool(lower)

    def operand_values(self) -> Tuple[Any, ...]:
        return (self._bound_matrix(), self.b)

    def execute_kwargs(self) -> Dict[str, Any]:
        return {"lower": self.lower}

    def _bound_matrix(self) -> Any:
        if self.matrix is None:
            raise GraphError(
                f"{type(self).__name__} node has no matrix bound; pass one "
                f"explicitly or sequence it with .then() after a "
                f"matrix-carrying stage"
            )
        return self.matrix

    def spec_and_output(self, shape_of: ShapeOf):
        n, _ = self._square_shape(shape_of, self._bound_matrix(), "matrix")
        self._vector_length(shape_of, self.b, "b", n)
        return (n,), (n,)


class LU(Problem):
    """Blocked LU factorization ``A = L U``; produces the factor pair."""

    kind = "lu"
    produces = "factors"

    def __init__(
        self,
        matrix: Any,
        *,
        options: Optional[ExecutionOptions] = None,
        name: Optional[str] = None,
    ):
        super().__init__(options=options, name=name)
        self.matrix = _operand(matrix)

    @property
    def lower(self) -> Ref:
        """A reference to the ``L`` factor of this node's output."""
        return Ref(self, 0)

    @property
    def upper(self) -> Ref:
        """A reference to the ``U`` factor of this node's output."""
        return Ref(self, 1)

    def operand_values(self) -> Tuple[Any, ...]:
        return (self.matrix,)

    def spec_and_output(self, shape_of: ShapeOf):
        n, _ = self._square_shape(shape_of, self.matrix, "matrix")
        return (n,), ((n, n), (n, n))


# ----------------------------------------------------------------------------- #
# iterative kinds
# ----------------------------------------------------------------------------- #
class _SystemProblem(Problem):
    """Shared shape/slot logic of the ``A x = b`` iterative kinds.

    Partial form ``Kind(b)`` (one operand) leaves the matrix slot unbound
    for :meth:`Problem.then` — the idiom the factor-then-refine pipeline
    uses: ``LU(A).then(Refine(b))``.
    """

    produces = "vector"

    def __init__(
        self,
        matrix: Any = None,
        b: Any = None,
        x0: Any = None,
        *,
        criteria: Optional[ConvergenceCriteria] = None,
        options: Optional[ExecutionOptions] = None,
        name: Optional[str] = None,
    ):
        super().__init__(options=options, name=name)
        if b is None:
            matrix, b = None, matrix
        if b is None:
            raise TypeError(f"{type(self).__name__} needs a right-hand side b")
        self.matrix = _operand(matrix) if matrix is not None else None
        self.b = _operand(b)
        self.x0 = _operand(x0) if x0 is not None else None
        self.criteria = criteria

    def operand_values(self) -> Tuple[Any, ...]:
        if self.matrix is None:
            raise GraphError(
                f"{type(self).__name__} node has no matrix bound; pass one "
                f"explicitly or sequence it with .then() after a "
                f"matrix-carrying stage"
            )
        return (self.matrix, self.b)

    def execute_kwargs(self) -> Dict[str, Any]:
        if self.x0 is None:
            return {}
        return {"x0": self.x0}

    def option_overrides(self) -> Dict[str, Any]:
        return {"criteria": self.criteria}

    def spec_and_output(self, shape_of: ShapeOf):
        n, _ = self._square_shape(shape_of, self.operand_values()[0], "matrix")
        self._vector_length(shape_of, self.b, "b", n)
        if self.x0 is not None:
            self._vector_length(shape_of, self.x0, "x0", n)
        return (n,), (n,)


class Jacobi(_SystemProblem):
    """``A x = b`` by ``x_{k+1} = D^{-1} (b - R x_k)``."""

    kind = "jacobi"


class SOR(_SystemProblem):
    """``A x = b`` by weighted Gauss-Seidel relaxation."""

    kind = "sor"

    def __init__(
        self,
        matrix: Any = None,
        b: Any = None,
        x0: Any = None,
        *,
        omega: Optional[float] = None,
        criteria: Optional[ConvergenceCriteria] = None,
        options: Optional[ExecutionOptions] = None,
        name: Optional[str] = None,
    ):
        super().__init__(
            matrix, b, x0, criteria=criteria, options=options, name=name
        )
        self.omega = omega

    def option_overrides(self) -> Dict[str, Any]:
        overrides = super().option_overrides()
        overrides["sor_omega"] = self.omega
        return overrides


class CG(_SystemProblem):
    """``A x = b`` for SPD ``A`` by conjugate gradients."""

    kind = "cg"


class Refine(_SystemProblem):
    """``A x = b`` by blocked LU plus iterative refinement sweeps."""

    kind = "refine"


class Power(Problem):
    """Dominant eigenpair of a square matrix by power iteration."""

    kind = "power"
    produces = "vector"

    def __init__(
        self,
        matrix: Any,
        x0: Any = None,
        *,
        criteria: Optional[ConvergenceCriteria] = None,
        options: Optional[ExecutionOptions] = None,
        name: Optional[str] = None,
    ):
        super().__init__(options=options, name=name)
        self.matrix = _operand(matrix)
        self.x0 = _operand(x0) if x0 is not None else None
        self.criteria = criteria

    def operand_values(self) -> Tuple[Any, ...]:
        return (self.matrix,)

    def execute_kwargs(self) -> Dict[str, Any]:
        if self.x0 is None:
            return {}
        return {"x0": self.x0}

    def option_overrides(self) -> Dict[str, Any]:
        return {"criteria": self.criteria}

    def spec_and_output(self, shape_of: ShapeOf):
        n, _ = self._square_shape(shape_of, self.matrix, "matrix")
        if self.x0 is not None:
            self._vector_length(shape_of, self.x0, "x0", n)
        return (n,), (n,)


_PROBLEM_TYPES: Dict[str, Type[Problem]] = {
    cls.kind: cls
    for cls in (
        MatVec,
        MatMul,
        Triangular,
        LU,
        Jacobi,
        SOR,
        CG,
        Refine,
        Power,
        Sparse,
    )
}


#: Built once: the mapping is immutable (read-only proxy over a sorted
#: dict), so the string-shim hot path pays a plain function call, not a
#: sort + allocation per solve.
_PROBLEM_TYPES_VIEW: Mapping[str, Type[Problem]] = MappingProxyType(
    dict(sorted(_PROBLEM_TYPES.items()))
)


def problem_types() -> Mapping[str, Type[Problem]]:
    """The stable ``kind -> typed problem class`` mapping (sorted by kind).

    Every kind listed here accepts both spellings through
    :class:`~repro.api.solver.Solver` — ``solve(MatVec(a, x))`` and the
    legacy ``solve("matvec", a, x)`` shim.  Registry kinds missing from
    the mapping (the comparison baselines and the legacy ``gauss_seidel``
    alias) only speak the string form.
    """
    return _PROBLEM_TYPES_VIEW


def register_problem_type(cls: Type[Problem]) -> Type[Problem]:
    """Add a typed problem class to :func:`problem_types` (returns ``cls``).

    The extension point problem families outside this module use —
    :mod:`repro.nn` registers its five kinds through it — keeping
    :func:`problem_types` the single source of truth that
    ``Solver.problem_types()`` and every handler's ``problem_class``
    read.  Usable as a class decorator; last registration per kind wins.
    """
    global _PROBLEM_TYPES_VIEW
    if not (isinstance(cls, type) and issubclass(cls, Problem)):
        raise TypeError(
            f"register_problem_type expects a Problem subclass, got {cls!r}"
        )
    if not cls.kind:
        raise ValueError(f"{cls.__name__} declares no kind")
    _PROBLEM_TYPES[cls.kind] = cls
    _PROBLEM_TYPES_VIEW = MappingProxyType(dict(sorted(_PROBLEM_TYPES.items())))
    return cls
