"""Lowering problem graphs onto cached execution plans.

:class:`GraphCompiler` turns a validated :class:`~repro.graph.graph.Graph`
into a :class:`~repro.graph.program.PipelineProgram`:

* every node's plan is resolved through the owning
  :class:`~repro.api.solver.Solver`'s LRU plan cache, so stages sharing a
  ``(kind, shapes, w, options)`` key — a diamond whose two middle stages
  are the same shape, or a whole warm re-compile — deduplicate to one
  compiled plan (and a warm compile builds nothing at all);
* independent stages land on the same dependency level, marked
  parallelizable; independent *same-plan matvec* stages are paired onto
  one shared overlapped array run (the paper's contraflow idle-cycle
  trick applied across stages), with values identical to sequential
  execution;
* under ``fuse=True``, a matmul whose only consumer is the matrix slot
  of a matvec is rewritten by associativity — ``(A B) x -> A (B x)`` —
  turning an O(n^3) stage into a second O(n^2) matvec.  The rewrite
  changes floating-point association, so it is opt-in and never applied
  to matmuls that are graph outputs, have other consumers, or carry an
  accumulator term;
* head→epilogue chains (``dense → bias → relu``, the quantized
  ``dense → dequantize → bias → relu → quantize``) collapse into single
  ``fused`` stages via
  :func:`repro.compiled.fusion.fuse_epilogue_chains`.  This rewrite is
  *value-exact* (the same elementwise transforms run on the same head
  output, in order) and applies by default when the base options
  resolve to the ``compiled`` backend; ``fuse_epilogues=True/False``
  forces it on or off for any backend.

The emitted program is *partitionable*: because stages carry their
dependency levels and resolved plans, :meth:`PipelineProgram.segments`
can split it into level-aligned
:class:`~repro.graph.program.ProgramSegment` units (optionally per
placed shard) that the serving layer executes across shards,
bit-identically to :meth:`PipelineProgram.run`.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from ..api.config import ExecutionOptions
from ..instrumentation import counters
from .graph import Graph, as_graph
from .problems import MatMul, MatVec, Problem, Ref
from .program import Binding, PipelineProgram, PipelineResult, PipelineStage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.solver import Solver

__all__ = ["GraphCompiler"]


class GraphCompiler:
    """Compiles problem graphs against one solver's plan cache.

    Parameters
    ----------
    solver:
        The :class:`~repro.api.solver.Solver` whose array spec, default
        options and plan cache the lowered program binds to.
    fuse:
        Apply the matmul→matvec associativity rewrite (changes
        floating-point association; off by default so graph execution is
        bit-identical to stage-by-stage solves).
    pair:
        Pair independent same-plan matvec stages onto shared overlapped
        array runs (bit-identical values; on by default).
    fuse_epilogues:
        Collapse head→epilogue chains into single fused stages
        (value-exact).  ``None`` (default) enables the rewrite exactly
        when the base options resolve to the ``compiled`` backend and no
        data-flow trace was requested; ``True``/``False`` forces it.
    options:
        Base :class:`~repro.api.config.ExecutionOptions` the stages'
        per-problem overrides merge into; defaults to the solver's own
        options.  The service worker threads a graph request's options
        through here so routed graphs compile under exactly the options
        their routing keys were derived from.
    """

    def __init__(
        self,
        solver: "Solver",
        *,
        fuse: bool = False,
        pair: bool = True,
        fuse_epilogues: Optional[bool] = None,
        options: Optional[ExecutionOptions] = None,
    ):
        self._solver = solver
        self._fuse = bool(fuse)
        self._pair = bool(pair)
        self._fuse_epilogues = fuse_epilogues
        self._options = options

    @property
    def solver(self) -> "Solver":
        return self._solver

    @property
    def fuse(self) -> bool:
        return self._fuse

    def _epilogues_enabled(self, base_options: ExecutionOptions) -> bool:
        if self._fuse_epilogues is not None:
            return self._fuse_epilogues
        if base_options.record_trace:
            return False  # fused epilogues never record data-flow traces
        from ..backends.registry import COMPILED, resolve_backend

        return resolve_backend(base_options.backend) == COMPILED

    def compile(self, graph: "Graph | Problem") -> PipelineProgram:
        """Lower a graph (or a single problem) to a pipeline program."""
        graph = as_graph(graph)
        counters.bump("graph_compiles")
        base_options = (
            self._options if self._options is not None else self._solver.options
        )
        rewrites = 0
        if self._fuse:
            graph, rewrites = _fuse_matmul_chains(graph)
        epilogues = 0
        if self._epilogues_enabled(base_options):
            # Lazy: the fused kind's handler registers on first use and
            # trace-mode simulate compilations never pay the import.
            from ..compiled.fusion import fuse_epilogue_chains

            graph, epilogues = fuse_epilogue_chains(graph, base_options)
        stages: List[PipelineStage] = []
        for index, node in enumerate(graph.nodes):
            options = node.resolved_options(base_options)
            plan, cached = self._solver.resolve_plan(
                node.kind, shape=graph.spec(index), options=options
            )
            stages.append(
                PipelineStage(
                    index=index,
                    name=graph.names[index],
                    kind=node.kind,
                    plan=plan,
                    operands=tuple(
                        _binding(graph, value)
                        for value in node.operand_values()
                    ),
                    kwargs={
                        key: _binding(graph, value)
                        for key, value in node.execute_kwargs().items()
                    },
                    level=graph.levels[index],
                    plan_cached=cached,
                )
            )
        pairs = _mark_pairs(stages) if self._pair else ()
        return PipelineProgram(
            stages=tuple(stages),
            outputs=graph.outputs,
            pairs=tuple(pairs),
            fused_rewrites=rewrites,
            fused_epilogues=epilogues,
            # Counted from the per-stage cache-hit flags, not the
            # process-global counter: exact even while other service
            # shards compile concurrently.
            compile_plan_builds=sum(
                1 for stage in stages if not stage.plan_cached
            ),
        )

    def run(self, graph: "Graph | Problem") -> PipelineResult:
        """Compile (warm compiles hit the plan cache) and execute a graph."""
        return self.compile(graph).run()


def _binding(graph: Graph, value: object) -> Binding:
    if isinstance(value, Ref):
        return Binding(source=graph.index_of(value.node), item=value.item)
    return Binding(value=value)


def _mark_pairs(stages: List[PipelineStage]) -> List[Tuple[int, int]]:
    """Pairs of independent (same-level) stages sharing a pairable plan."""
    groups: Dict[Tuple[int, int], List[int]] = {}
    for stage in stages:
        if stage.plan.supports_pairing:
            groups.setdefault((stage.level, id(stage.plan)), []).append(
                stage.index
            )
    pairs: List[Tuple[int, int]] = []
    for indices in groups.values():
        for position in range(0, len(indices) - 1, 2):
            pairs.append((indices[position], indices[position + 1]))
    return pairs


# ----------------------------------------------------------------------------- #
# the associativity rewrite
# ----------------------------------------------------------------------------- #
def _fuse_matmul_chains(graph: Graph) -> Tuple[Graph, int]:
    """Rewrite ``MatVec(Ref(MatMul(A, B)), x)`` into ``MatVec(A, MatVec(B, x))``.

    Only exclusive, output-invisible, accumulator-free matmuls without
    node-specific options fuse: the matmul must feed exactly one
    reference — the matvec's matrix slot — and not be a requested graph
    output or the target of an ordering edge, otherwise its product is
    needed anyway and the rewrite would add work rather than remove an
    O(n^3) stage (per-node options are likewise preserved by skipping,
    never silently dropped).  Applied bottom-up and repeatedly, so a
    chain ``(A (B C)) x`` collapses into three matvec stages.

    Returns the rewritten graph and the number of rewrites applied.
    The replacement inner matvec inherits the fused matmul's node name,
    so per-stage lookups keep addressing the same pipeline position.
    """
    consumer_counts: Dict[Problem, int] = {}
    for node in graph.nodes:
        for ref in node.iter_refs():
            consumer_counts[ref.node] = consumer_counts.get(ref.node, 0) + 1
        # Ordering edges count too: a matmul some node sequences .after()
        # must still execute, so eliminating it would either resurrect it
        # through the stale edge or break the ordering contract.
        for predecessor in node.after:
            consumer_counts[predecessor] = (
                consumer_counts.get(predecessor, 0) + 1
            )
    output_nodes = {graph.nodes[index] for _name, index in graph.outputs}

    mapping: Dict[Problem, Problem] = {}
    #: Clone -> original-graph node, so exclusivity/output checks keyed by
    #: originals still apply to nodes that were copied during remapping.
    origin: Dict[Problem, Problem] = {}
    rewrites = 0

    def mapped_operand(value: object) -> object:
        if isinstance(value, Ref) and value.node in mapping:
            return Ref(mapping[value.node], value.item)
        return value

    def remap(node: Problem) -> Problem:
        """A copy of ``node`` with refs updated to rewritten targets."""
        clone: Problem = node
        for attr, value in list(vars(node).items()):
            if isinstance(value, Ref) and value.node in mapping:
                replacement: object = Ref(mapping[value.node], value.item)
            elif attr == "after" and any(p in mapping for p in value):
                replacement = tuple(mapping.get(p, p) for p in value)
            else:
                continue
            if clone is node:
                clone = copy.copy(node)
                origin[clone] = node
            setattr(clone, attr, replacement)
        return clone

    def fusable(value: object) -> bool:
        if not (isinstance(value, Ref) and value.item is None):
            return False
        target = value.node
        source = origin.get(target, target)
        if source in mapping and mapping[source] is not target:
            return False  # stale ref into a node that was rewritten away
        return (
            isinstance(target, MatMul)
            and target.e is None
            # A matmul with node-specific options pins how *that* stage
            # executes; the rewrite would erase the stage (and with it
            # the options), so such nodes are left intact.
            and target.options is None
            and source not in output_nodes
            and consumer_counts.get(source, 0) == 1
        )

    def fuse_matvec(matvec: MatVec) -> MatVec:
        """Collapse every exclusive matmul feeding this matvec's chain."""
        nonlocal rewrites
        while fusable(matvec.matrix):
            matmul: MatMul = matvec.matrix.node  # type: ignore[union-attr]
            inner = MatVec(
                mapped_operand(matmul.b),
                matvec.x,
                options=matvec.options,
                name=matmul.name,
            )
            inner.after = tuple(mapping.get(p, p) for p in matmul.after)
            # B may itself be an exclusive matmul: (A (B C)) x collapses
            # all the way down to a chain of matvec stages.
            inner = fuse_matvec(inner)
            replacement = MatVec(
                mapped_operand(matmul.a),
                inner,
                matvec.b,
                overlapped=matvec.overlapped,
                options=matvec.options,
                name=matvec.name,
            )
            replacement.after = matvec.after
            matvec = replacement
            rewrites += 1
        return matvec

    for node in graph.nodes:
        current = remap(node)
        if type(current) is MatVec:  # not Sparse: its matrix slot is the
            current = fuse_matvec(current)  # sparsity pattern, not a factor
        if current is not node:
            mapping[node] = current

    if not rewrites and not mapping:
        return graph, 0
    named = {}
    positional = []
    for name, index in graph.outputs:
        out = mapping.get(graph.nodes[index], graph.nodes[index])
        if out.name == name:
            positional.append(out)
        else:
            named[name] = out
    return Graph(*positional, **named), rewrites
