"""Lazy expression DAGs over typed problems.

A :class:`Graph` is built from one or more *output* problems; every
problem transitively referenced through :class:`~repro.graph.problems.Ref`
operands (or pure ordering edges from ``.then()``) becomes a node.  Build
time does all the validation the string-kind API deferred to execution:

* **cycle rejection** — a stage cannot (transitively) consume its own
  output (:class:`~repro.errors.GraphCycleError`);
* **shape inference and checking** — every operand slot is checked
  against the producing stage's inferred output shape, so a pipeline
  whose second stage cannot consume its first fails at *build/compile*
  time with a :class:`~repro.errors.ShapeError`, before any plan is
  compiled or value streamed;
* **level assignment** — nodes are topologically ordered and grouped
  into dependency levels; two nodes on the same level are provably
  independent, which is what marks stages parallelizable (and lets the
  compiler pair same-plan matvec stages onto one overlapped array run).

The graph itself holds no plans and no solver: it is a pure, reusable
description.  :meth:`plan_keys` derives the per-node cache/routing keys
for a given array size and option defaults — the same keys the
:class:`~repro.api.solver.Solver` string path computes, which is how
:mod:`repro.service` routes a whole pipeline to its home shard.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..api.config import ExecutionOptions
from ..errors import GraphCycleError, GraphError
from .problems import Problem, Ref

__all__ = ["Graph", "as_graph"]


def _ensure_handlers() -> None:
    """Make sure the problem registry is populated (idempotent import)."""
    from ..api import problems as _problems  # noqa: F401


class Graph:
    """An immutable, validated DAG of typed problems.

    Construct from output problems — positionally (auto-named) and/or as
    keywords (``Graph(y=outer)`` names the output ``"y"``)::

        t = MatVec(B, x)
        y = MatVec(A, t, name="y")
        graph = Graph(y)            # t is pulled in as a dependency

    ``nodes`` is the topological order; ``outputs`` maps the requested
    output names to their nodes.
    """

    def __init__(self, *outputs: Problem, **named_outputs: Problem):
        _ensure_handlers()
        requested: List[Tuple[Optional[str], Problem]] = []
        for problem in outputs:
            requested.append((None, problem))
        for name, problem in named_outputs.items():
            requested.append((name, problem))
        if not requested:
            raise GraphError("a Graph needs at least one output problem")
        for name, problem in requested:
            if not isinstance(problem, Problem):
                raise TypeError(
                    f"Graph outputs must be typed problems, got "
                    f"{type(problem).__name__}"
                )
        # Keyword output names live on the graph, never written back to
        # the problem objects: building a graph must not mutate shared
        # nodes another graph (or the caller) still addresses.
        self._name_overrides: Dict[Problem, str] = {
            problem: name for name, problem in requested if name is not None
        }

        self._nodes: Tuple[Problem, ...] = self._toposort(
            [problem for _name, problem in requested]
        )
        self._index: Dict[Problem, int] = {
            node: index for index, node in enumerate(self._nodes)
        }
        self._names: Tuple[str, ...] = self._assign_names()
        self._deps: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted({self._index[dep] for dep in self._dependencies(node)}))
            for node in self._nodes
        )
        self._levels: Tuple[int, ...] = self._assign_levels()
        self._specs, self._output_shapes = self._infer_shapes()
        self._outputs: Tuple[Tuple[str, int], ...] = tuple(
            (
                name if name is not None else self._names[self._index[problem]],
                self._index[problem],
            )
            for name, problem in requested
        )

    # -- construction internals -----------------------------------------------------
    @staticmethod
    def _dependencies(node: Problem) -> List[Problem]:
        deps = [ref.node for ref in node.iter_refs()]
        deps.extend(node.after)
        return deps

    def _toposort(self, roots: Sequence[Problem]) -> Tuple[Problem, ...]:
        """Iterative DFS post-order; grey-node re-entry is a cycle."""
        WHITE, GREY, BLACK = 0, 1, 2
        state: Dict[Problem, int] = {}
        order: List[Problem] = []
        for root in roots:
            if state.get(root, WHITE) == BLACK:
                continue
            stack: List[Tuple[Problem, bool]] = [(root, False)]
            while stack:
                node, children_done = stack.pop()
                if children_done:
                    state[node] = BLACK
                    order.append(node)
                    continue
                mark = state.get(node, WHITE)
                if mark == BLACK:
                    continue
                if mark == GREY:
                    # Re-entering a node whose subtree is still open: the
                    # path from it back to itself is a reference cycle.
                    raise GraphCycleError(
                        f"problem graph contains a cycle through "
                        f"{type(node).__name__} node "
                        f"{node.name or hex(id(node))}"
                    )
                state[node] = GREY
                stack.append((node, True))
                for dep in self._dependencies(node):
                    mark = state.get(dep, WHITE)
                    if mark == GREY:
                        raise GraphCycleError(
                            f"problem graph contains a cycle through "
                            f"{type(dep).__name__} node "
                            f"{dep.name or hex(id(dep))}"
                        )
                    if mark == WHITE:
                        stack.append((dep, False))
        return tuple(order)

    def _assign_names(self) -> Tuple[str, ...]:
        """Unique per-node names: explicit names must not clash with each
        other; auto-generated names step around anything taken."""
        explicit: Dict[str, int] = {}
        for index, node in enumerate(self._nodes):
            name = self._name_overrides.get(node) or node.name
            if name is None:
                continue
            if name in explicit:
                raise GraphError(
                    f"duplicate node name {name!r} (nodes {explicit[name]} "
                    f"and {index}); name each output/stage uniquely"
                )
            explicit[name] = index
        names: List[str] = []
        taken = set(explicit)
        for index, node in enumerate(self._nodes):
            name = self._name_overrides.get(node) or node.name
            if name is None:
                counter = index
                name = f"{node.kind}_{counter}"
                while name in taken:
                    counter += 1
                    name = f"{node.kind}_{counter}"
                taken.add(name)
            names.append(name)
        return tuple(names)

    def _assign_levels(self) -> Tuple[int, ...]:
        levels: List[int] = []
        for index in range(len(self._nodes)):
            deps = self._deps[index]
            levels.append(1 + max((levels[d] for d in deps), default=-1))
        return tuple(levels)

    def _infer_shapes(self):
        """Validate every node's operands; returns (spec, output shape) maps."""
        specs: List[Tuple] = []
        output_shapes: List[Any] = []

        def shape_of_factory(consumer: Problem):
            def shape_of(value: Any, label: str) -> Tuple[int, ...]:
                if isinstance(value, Ref):
                    producer = value.node
                    if producer not in self._index:
                        raise GraphError(
                            f"{type(consumer).__name__}.{label} references a "
                            f"node outside this graph"
                        )
                    produced = output_shapes[self._index[producer]]
                    if producer.produces == "factors":
                        if value.item is None:
                            raise GraphError(
                                f"{type(consumer).__name__}.{label} consumes "
                                f"a factor pair; select one with .lower/.upper"
                            )
                        return produced[value.item]
                    if value.item is not None:
                        raise GraphError(
                            f"{type(consumer).__name__}.{label}: item "
                            f"selection on a single-valued "
                            f"{type(producer).__name__} output"
                        )
                    return produced
                return tuple(int(dim) for dim in np.shape(value))

            return shape_of

        for node in self._nodes:
            spec, output_shape = node.spec_and_output(shape_of_factory(node))
            specs.append(spec)
            output_shapes.append(output_shape)
        return tuple(specs), tuple(output_shapes)

    # -- introspection ----------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[Problem, ...]:
        """All nodes in topological (dependency-first) order."""
        return self._nodes

    @property
    def names(self) -> Tuple[str, ...]:
        """Node names, aligned with :attr:`nodes`."""
        return self._names

    @property
    def outputs(self) -> Tuple[Tuple[str, int], ...]:
        """The requested graph outputs as ``(name, node index)`` pairs."""
        return self._outputs

    @property
    def levels(self) -> Tuple[int, ...]:
        """Dependency level per node; equal levels are independent stages."""
        return self._levels

    def dependencies(self, index: int) -> Tuple[int, ...]:
        """Indices of the nodes that node ``index`` depends on."""
        return self._deps[index]

    def index_of(self, node: Problem) -> int:
        try:
            return self._index[node]
        except KeyError:
            raise GraphError(f"{node!r} is not a node of this graph") from None

    def spec(self, index: int) -> Tuple:
        """The plan shape spec of node ``index`` (handler ``shape=`` form)."""
        return self._specs[index]

    def output_shape(self, index: int):
        """The inferred output shape of node ``index``."""
        return self._output_shapes[index]

    def plan_keys(
        self, w: int, options: Optional[ExecutionOptions] = None
    ) -> Tuple[Tuple, ...]:
        """Per-node ``(kind, shapes, w, options)`` keys, in topological order.

        These are exactly the keys a :class:`~repro.api.solver.Solver` of
        array size ``w`` with default ``options`` would compute for each
        stage, so they double as the service routing key of the whole
        pipeline.
        """
        from ..api.plan import make_plan_key
        from ..api.registry import get_handler

        base = options if options is not None else ExecutionOptions()
        keys: List[Tuple] = []
        for index, node in enumerate(self._nodes):
            handler = get_handler(node.kind)
            shapes = handler.shapes(shape=self._specs[index])
            keys.append(
                make_plan_key(
                    node.kind, shapes, w, node.resolved_options(base)
                )
            )
        return tuple(keys)

    def describe(self) -> str:
        """One line per node: name, kind, level, dependencies, shapes."""
        lines = [f"Graph with {len(self._nodes)} node(s)"]
        for index, node in enumerate(self._nodes):
            deps = ", ".join(self._names[d] for d in self._deps[index]) or "-"
            lines.append(
                f"  [{self._levels[index]}] {self._names[index]}: {node.kind} "
                f"shapes={self._specs[index]} deps=({deps})"
            )
        outputs = ", ".join(name for name, _index in self._outputs)
        lines.append(f"  outputs: {outputs}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        outputs = ", ".join(name for name, _index in self._outputs)
        return f"Graph(nodes={len(self._nodes)}, outputs=[{outputs}])"


def as_graph(graph: "Graph | Problem") -> Graph:
    """Coerce a bare problem (or pass a graph through) into a :class:`Graph`."""
    if isinstance(graph, Graph):
        return graph
    if isinstance(graph, Problem):
        return Graph(graph)
    raise TypeError(
        f"expected a Graph or a typed Problem, got {type(graph).__name__}"
    )
