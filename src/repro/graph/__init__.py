"""Typed problems and composable pipeline graphs.

The front-door redesign of the package: instead of one isolated
stringly-typed call per problem (``solver.solve("matvec", a, x, b)``),
workloads are described as **typed problem objects** composed into **lazy
expression DAGs**, compiled once, and executed as a whole::

    import numpy as np
    from repro.api import ArraySpec, Solver
    from repro.graph import GraphCompiler, Graph, MatMul, MatVec, Refine

    solver = Solver(ArraySpec(w=4))
    rng = np.random.default_rng(0)
    A, B = rng.normal(size=(12, 12)), rng.normal(size=(12, 12))
    x = rng.normal(size=12)

    y = MatMul(A, B) @ x                    # operator sugar builds the DAG
    result = GraphCompiler(solver).run(y)   # compile + execute
    assert np.allclose(result.values, A @ B @ x)

    program = GraphCompiler(solver).compile(Graph(y))   # explicit compile
    warm = program.run()                                 # 0 plan builds
    assert warm.warm

Pieces:

* :mod:`~repro.graph.problems` — the typed problem classes
  (:class:`MatVec`, :class:`MatMul`, :class:`Triangular`, :class:`LU`,
  :class:`Jacobi`, :class:`SOR`, :class:`CG`, :class:`Refine`,
  :class:`Power`, :class:`Sparse`), :class:`Ref` stage references, and
  the stable :func:`problem_types` ``kind -> class`` mapping.
* :mod:`~repro.graph.graph` — :class:`Graph`: build-time cycle
  rejection, shape inference/checking, and dependency levels.
* :mod:`~repro.graph.compiler` — :class:`GraphCompiler`: lowering
  through the solver's plan cache (shared stages dedup to one plan),
  same-plan matvec stage pairing onto overlapped array runs, and the
  opt-in matmul→matvec associativity rewrite (``fuse=True``).
* :mod:`~repro.graph.program` — :class:`PipelineProgram` (the reusable
  compiled artifact), :class:`ProgramSegment` (its level-aligned
  partition units) and :class:`PipelineResult` (per-stage solutions,
  outputs, residuals, latencies, cold/warm build accounting, and — when
  served — per-stage shard placements with modeled array-time
  accounting).

Whole graphs also execute through :mod:`repro.service`:
``service.submit_graph(graph)`` splits a multi-level pipeline into
placed segments streamed across shards (single-segment graphs run on
one home shard), with every stage plan compiled once and kept hot.
"""

from .compiler import GraphCompiler
from .graph import Graph, as_graph
from .problems import (
    CG,
    LU,
    Jacobi,
    MatMul,
    MatVec,
    Power,
    Problem,
    Ref,
    Refine,
    SOR,
    Sparse,
    Triangular,
    problem_types,
)
from .program import (
    Binding,
    PipelineProgram,
    PipelineResult,
    PipelineStage,
    ProgramSegment,
)

__all__ = [
    "Binding",
    "CG",
    "Graph",
    "GraphCompiler",
    "Jacobi",
    "LU",
    "MatMul",
    "MatVec",
    "PipelineProgram",
    "PipelineResult",
    "PipelineStage",
    "ProgramSegment",
    "Power",
    "Problem",
    "Ref",
    "Refine",
    "SOR",
    "Sparse",
    "Triangular",
    "as_graph",
    "problem_types",
]
