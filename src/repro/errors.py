"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration problems (bad shapes, bad
array sizes) from simulation problems (schedule violations, feedback
underruns).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ShapeError(ReproError, ValueError):
    """An operand has a shape incompatible with the requested operation."""


class BandwidthError(ReproError, ValueError):
    """A band matrix was built or used with an invalid bandwidth."""


class ArraySizeError(ReproError, ValueError):
    """The systolic array size ``w`` is invalid for the requested problem."""


class TransformError(ReproError):
    """A DBT transformation could not be constructed or is inconsistent."""


class ScheduleError(ReproError):
    """A systolic data-flow schedule violates a structural constraint.

    Raised, for example, when two values are scheduled into the same input
    port on the same cycle, or when a feedback value is required before the
    array has produced it.
    """


class FeedbackError(ScheduleError):
    """A feedback path was used before its source value was available."""


class SimulationError(ReproError):
    """The cycle-accurate simulation reached an inconsistent state."""


class RecoveryError(ReproError):
    """Result recovery from the array output band failed a consistency check."""


class ProblemKindError(ReproError, KeyError):
    """An unknown problem kind was requested from the solver registry."""


class PlanError(ReproError):
    """An execution plan was built or used inconsistently."""


class BackendError(ReproError, ValueError):
    """An unknown execution backend was requested, or the requested
    backend cannot satisfy the execution options (e.g. a data-flow trace
    from the vectorized engine)."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solve diverged (or hit a numerical breakdown).

    Raised by the :mod:`repro.iterative` solvers when the residual stops
    being finite, grows past the :class:`~repro.iterative.criteria.ConvergenceCriteria`
    divergence guard, or a method-specific invariant breaks (e.g. a
    non-positive curvature direction in conjugate gradient).  Exhausting
    ``max_iter`` without converging is *not* an error — the result simply
    reports ``converged=False``.
    """

    def __init__(
        self,
        message: str,
        iterations: int = 0,
        residual_norm: float = float("nan"),
    ):
        super().__init__(message)
        self.iterations = iterations
        self.residual_norm = residual_norm


class GraphError(ReproError):
    """A problem graph was built or used inconsistently.

    Raised by :mod:`repro.graph` when a pipeline node is malformed in a
    way that is not a plain shape mismatch — an unbound operand slot
    (``Refine(b)`` never sequenced after a matrix-carrying stage), a
    reference into a node that is not part of the graph, or a typed
    problem carrying stage references handed to the single-problem
    :meth:`~repro.api.solver.Solver.solve` path.
    """


class GraphCycleError(GraphError):
    """A problem graph contains a reference cycle.

    Pipeline graphs must be acyclic: a stage cannot (transitively) consume
    its own output.  Raised at graph *build* time, before any plan is
    compiled or operand is streamed.
    """


class PlanStoreError(ReproError):
    """A persisted plan artifact could not be written.

    Raised only on the *write* side of :class:`repro.store.PlanStore`
    (an unwritable directory, a full disk, an unpicklable executor).
    The read side never raises: any unreadable, corrupt, truncated or
    version-skewed artifact is reported as a miss-with-error so the
    caller falls back to compiling — persistence can slow a cold start
    but can never take a serving process down.
    """


class ServiceError(ReproError):
    """Base class for errors raised by the :mod:`repro.service` layer."""


class ServiceOverloadedError(ServiceError):
    """A shard queue was full and the backpressure policy dropped the request.

    Raised synchronously from ``submit`` under the ``"reject"`` policy, or
    delivered through the shed request's future under ``"shed_oldest"``.
    """


class ServiceClosedError(ServiceError):
    """A request was submitted to (or was still pending in) a closed service."""


class DeadlineExceededError(ServiceError):
    """A request's deadline elapsed before a worker could execute it."""


class RateLimitedError(ServiceError):
    """A client exceeded its per-client admission rate limit.

    Raised synchronously from ``SolverService.submit`` /
    ``submit_graph`` when the client's token bucket is empty — a typed
    rejection the caller can distinguish from queue overload
    (:class:`ServiceOverloadedError`) and back off on.
    """
