"""End-to-end size-independent matrix-vector multiplication (Section 2).

:class:`MatVecSolution` is the result type shared by the plan/execute
engines in :mod:`repro.core.plans` and the unified :mod:`repro.api`
façade.

:class:`SizeIndependentMatVec` is kept as a thin deprecation shim over
:class:`~repro.core.plans.CachedMatVec`: it preserves the original
one-class-per-problem constructor (``w``, ``record_trace``,
``overlapped``) but delegates all work to the shape-keyed execution
plans, so repeated solves of one shape through a single instance no
longer rebuild the DBT transform.  New code should use
:class:`repro.api.Solver` instead.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..systolic.linear_array import LinearRunResult
from ..systolic.trace import DataFlowTrace
from ..matrices.padding import validate_array_size
from .analytic import MatVecModel
from .dbt import DBTByRowsTransform

__all__ = ["MatVecSolution", "SizeIndependentMatVec"]


@dataclass
class MatVecSolution:
    """Result of one size-independent matrix-vector execution."""

    y: np.ndarray
    w: int
    overlapped: bool
    transforms: List[DBTByRowsTransform]
    run: LinearRunResult
    model: MatVecModel

    @property
    def measured_steps(self) -> int:
        return self.run.total_cycles

    @property
    def predicted_steps(self) -> int:
        return self.model.steps

    @property
    def measured_utilization(self) -> float:
        return self.run.report.utilization

    @property
    def predicted_utilization(self) -> float:
        return self.model.utilization

    @property
    def feedback_delays(self) -> List[int]:
        return self.run.feedback_delays()

    @property
    def trace(self) -> Optional[DataFlowTrace]:
        return self.run.trace

    def summary(self) -> str:
        """Short paper-vs-measured report used by the examples."""
        lines = [
            f"size-independent mat-vec on a {self.w}-cell linear array"
            + (" (overlapped)" if self.overlapped else ""),
            f"  steps:       measured {self.measured_steps}, paper formula {self.predicted_steps}",
            f"  utilization: measured {self.measured_utilization:.4f}, "
            f"paper formula {self.predicted_utilization:.4f}",
        ]
        delays = self.feedback_delays
        if delays:
            lo, hi = min(delays), max(delays)
            if lo == hi:
                delay_text = f"every delay = {lo} cycles" + (
                    " (= w)" if lo == self.w else ""
                )
            else:
                delay_text = f"delays {lo}..{hi} cycles (min..max)"
            lines.append(
                f"  feedback:    {len(delays)} values fed back, {delay_text}"
            )
        return "\n".join(lines)


class SizeIndependentMatVec:
    """Solve ``y = A x + b`` for arbitrary dense ``A`` on a ``w``-cell array.

    .. deprecated::
        Thin shim over the shape-keyed execution plans; prefer
        ``repro.api.Solver(w).solve("matvec", matrix, x, b)``.
    """

    def __init__(self, w: int, record_trace: bool = False, overlapped: bool = False):
        warnings.warn(
            "SizeIndependentMatVec is deprecated; use repro.api.Solver "
            "(plan/execute façade) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self._w = validate_array_size(w)
        self._record_trace = record_trace
        self._overlapped = overlapped
        from .plans import CachedMatVec  # deferred: plans imports this module

        self._engine = CachedMatVec(
            self._w, record_trace=record_trace, overlapped=overlapped
        )

    @property
    def w(self) -> int:
        return self._w

    @property
    def overlapped(self) -> bool:
        return self._overlapped

    def solve(
        self,
        matrix: np.ndarray,
        x: np.ndarray,
        b: Optional[np.ndarray] = None,
    ) -> MatVecSolution:
        """Transform, simulate and recover ``y = A x + b``."""
        return self._engine.solve(matrix, x, b)
