"""End-to-end size-independent matrix-vector multiplication (Section 2).

:class:`SizeIndependentMatVec` is the public pipeline tying the pieces
together: it applies DBT-by-rows to the dense operand, streams the
transformed problem through the cycle-accurate linear contraflow array
(with the ``w``-register feedback chain carrying partial results back into
the array), recovers ``y`` from the output stream, and reports measured
time and utilization next to the paper's analytic predictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import ShapeError
from ..matrices.dense import as_matrix, as_vector
from ..matrices.padding import validate_array_size
from ..systolic.linear_array import LinearContraflowArray, LinearProblem, LinearRunResult
from ..systolic.trace import DataFlowTrace
from .analytic import MatVecModel
from .dbt import DBTByRowsTransform
from .schedule import plan_overlap_partition

__all__ = ["MatVecSolution", "SizeIndependentMatVec"]


@dataclass
class MatVecSolution:
    """Result of one size-independent matrix-vector execution."""

    y: np.ndarray
    w: int
    overlapped: bool
    transforms: List[DBTByRowsTransform]
    run: LinearRunResult
    model: MatVecModel

    @property
    def measured_steps(self) -> int:
        return self.run.total_cycles

    @property
    def predicted_steps(self) -> int:
        return self.model.steps

    @property
    def measured_utilization(self) -> float:
        return self.run.report.utilization

    @property
    def predicted_utilization(self) -> float:
        return self.model.utilization

    @property
    def feedback_delays(self) -> List[int]:
        return self.run.feedback_delays()

    @property
    def trace(self) -> Optional[DataFlowTrace]:
        return self.run.trace

    def summary(self) -> str:
        """Short paper-vs-measured report used by the examples."""
        lines = [
            f"size-independent mat-vec on a {self.w}-cell linear array"
            + (" (overlapped)" if self.overlapped else ""),
            f"  steps:       measured {self.measured_steps}, paper formula {self.predicted_steps}",
            f"  utilization: measured {self.measured_utilization:.4f}, "
            f"paper formula {self.predicted_utilization:.4f}",
        ]
        delays = self.feedback_delays
        if delays:
            lines.append(
                f"  feedback:    {len(delays)} values fed back, every delay = "
                f"{delays[0]} cycles (= w)"
            )
        return "\n".join(lines)


class SizeIndependentMatVec:
    """Solve ``y = A x + b`` for arbitrary dense ``A`` on a ``w``-cell array."""

    def __init__(self, w: int, record_trace: bool = False, overlapped: bool = False):
        self._w = validate_array_size(w)
        self._record_trace = record_trace
        self._overlapped = overlapped

    @property
    def w(self) -> int:
        return self._w

    @property
    def overlapped(self) -> bool:
        return self._overlapped

    def solve(
        self,
        matrix: np.ndarray,
        x: np.ndarray,
        b: Optional[np.ndarray] = None,
    ) -> MatVecSolution:
        """Transform, simulate and recover ``y = A x + b``."""
        matrix = as_matrix(matrix, "matrix")
        x = as_vector(x, "x")
        if x.shape[0] != matrix.shape[1]:
            raise ShapeError(
                f"x has length {x.shape[0]} but the matrix has {matrix.shape[1]} columns"
            )
        if b is not None:
            b = as_vector(b, "b")
            if b.shape[0] != matrix.shape[0]:
                raise ShapeError(
                    f"b has length {b.shape[0]} but the matrix has {matrix.shape[0]} rows"
                )

        if self._overlapped:
            return self._solve_overlapped(matrix, x, b)
        return self._solve_plain(matrix, x, b)

    # -- plain (non overlapped) execution -----------------------------------------
    def _solve_plain(
        self, matrix: np.ndarray, x: np.ndarray, b: Optional[np.ndarray]
    ) -> MatVecSolution:
        transform = DBTByRowsTransform(matrix, self._w)
        problem = self._build_problem(transform, matrix, x, b)
        array = LinearContraflowArray(self._w, record_trace=self._record_trace)
        run = array.run(problem)
        y = transform.recover_y(run.y_per_problem[0])
        model = MatVecModel(
            n=matrix.shape[0], m=matrix.shape[1], w=self._w, overlapped=False
        )
        return MatVecSolution(
            y=y,
            w=self._w,
            overlapped=False,
            transforms=[transform],
            run=run,
            model=model,
        )

    # -- overlapped execution --------------------------------------------------------
    def _solve_overlapped(
        self, matrix: np.ndarray, x: np.ndarray, b: Optional[np.ndarray]
    ) -> MatVecSolution:
        partition = plan_overlap_partition(matrix.shape[0], matrix.shape[1], self._w)
        top_rows = partition.first_rows
        top_matrix, bottom_matrix = matrix[:top_rows, :], matrix[top_rows:, :]
        if b is None:
            top_b = bottom_b = None
        else:
            top_b, bottom_b = b[:top_rows], b[top_rows:]

        top_transform = DBTByRowsTransform(top_matrix, self._w)
        bottom_transform = DBTByRowsTransform(bottom_matrix, self._w)
        problems = [
            self._build_problem(top_transform, top_matrix, x, top_b),
            self._build_problem(bottom_transform, bottom_matrix, x, bottom_b),
        ]
        array = LinearContraflowArray(self._w, record_trace=self._record_trace)
        run = array.run_overlapped(problems)
        y_top = top_transform.recover_y(run.y_per_problem[0])
        y_bottom = bottom_transform.recover_y(run.y_per_problem[1])
        y = np.concatenate([y_top, y_bottom])
        model = MatVecModel(
            n=matrix.shape[0], m=matrix.shape[1], w=self._w, overlapped=True
        )
        return MatVecSolution(
            y=y,
            w=self._w,
            overlapped=True,
            transforms=[top_transform, bottom_transform],
            run=run,
            model=model,
        )

    # -- shared helpers -----------------------------------------------------------------
    def _build_problem(
        self,
        transform: DBTByRowsTransform,
        matrix: np.ndarray,
        x: np.ndarray,
        b: Optional[np.ndarray],
    ) -> LinearProblem:
        useful = matrix.shape[0] * matrix.shape[1]
        return LinearProblem(
            band=transform.band,
            x=transform.transform_x(x),
            y_sources=transform.build_y_sources(b),
            x_tags=transform.x_tags(),
            output_tags=transform.output_tags(),
            useful_operations=useful,
        )
