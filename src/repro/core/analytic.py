"""Closed-form time, utilization and memory models from the paper.

These are the quantitative claims of Sections 2 and 3 (rows T1-T7 of the
experiment index in ``DESIGN.md``).  The benchmarks compare the values
measured by the cycle-accurate simulators against these expressions.

Notation: ``n_bar = ceil(n / w)`` etc., written ``n_bar`` / ``p_bar`` /
``m_bar`` below.  Two formulas deserve a remark:

* The matrix-vector utilization printed in the paper is partially garbled
  in the available scan; the expressions used here,
  ``1 / (2 + 2/(n_bar m_bar) - 3/(w n_bar m_bar))`` without overlapping and
  ``1 / (1 + 2/(n_bar m_bar) - 2/(w n_bar m_bar))`` with overlapping, are
  the unique forms consistent with the unambiguous step counts
  ``T = 2 w n_bar m_bar + 2w - 3`` and ``T = w n_bar m_bar + 2w - 2`` and
  with the limits (1/2 and 1) the paper states.
* The matrix-matrix expressions are printed clearly and are used verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..matrices.padding import block_count, validate_array_size

__all__ = [
    "matvec_steps",
    "matvec_utilization",
    "matvec_utilization_limit",
    "matvec_feedback_delay",
    "matvec_feedback_registers",
    "matmul_steps",
    "matmul_utilization",
    "matmul_utilization_limit",
    "matmul_regular_feedback_registers",
    "matmul_irregular_feedback_registers",
    "matmul_irregular_delay_first_row",
    "matmul_irregular_delay_wraparound",
    "MatVecModel",
    "MatMulModel",
]


# --------------------------------------------------------------------------- #
# Matrix-vector multiplication on the linear array (Section 2)
# --------------------------------------------------------------------------- #
def matvec_steps(n_bar: int, m_bar: int, w: int, overlapped: bool = False) -> int:
    """Number of array steps ``T`` for ``y = A~ x~ + b~``.

    ``T = 2 w n_bar m_bar + 2w - 3`` without overlapping and
    ``T = w n_bar m_bar + 2w - 2`` when two disjoint halves of the
    transformed problem are interleaved on the idle cycles.
    """
    w = validate_array_size(w)
    _check_bars(n_bar, m_bar)
    if overlapped:
        return w * n_bar * m_bar + 2 * w - 2
    return 2 * w * n_bar * m_bar + 2 * w - 3


def matvec_utilization(n_bar: int, m_bar: int, w: int, overlapped: bool = False) -> float:
    """Processing element utilization ``eta`` of the linear array."""
    w = validate_array_size(w)
    _check_bars(n_bar, m_bar)
    nm = n_bar * m_bar
    if overlapped:
        return 1.0 / (1.0 + 2.0 / nm - 2.0 / (w * nm))
    return 1.0 / (2.0 + 2.0 / nm - 3.0 / (w * nm))


def matvec_utilization_limit(overlapped: bool = False) -> float:
    """Utilization limit for large problems: 1/2, or 1 with overlapping."""
    return 1.0 if overlapped else 0.5


def matvec_feedback_delay(w: int) -> int:
    """Feedback delay of DBT-by-rows: exactly the array size ``w``."""
    return validate_array_size(w)


def matvec_feedback_registers(w: int) -> int:
    """Registers needed to implement the matrix-vector feedback: ``w``."""
    return validate_array_size(w)


# --------------------------------------------------------------------------- #
# Matrix-matrix multiplication on the hexagonal array (Section 3)
# --------------------------------------------------------------------------- #
def matmul_steps(n_bar: int, p_bar: int, m_bar: int, w: int) -> int:
    """Number of array steps ``T = 3 w p_bar n_bar m_bar + 4w - 5``."""
    w = validate_array_size(w)
    _check_bars(n_bar, p_bar, m_bar)
    return 3 * w * p_bar * n_bar * m_bar + 4 * w - 5


def matmul_utilization(n_bar: int, p_bar: int, m_bar: int, w: int) -> float:
    """Utilization ``eta = 1 / (3 + 4/(p n m) - 5/(w p n m))`` (bars implied)."""
    w = validate_array_size(w)
    _check_bars(n_bar, p_bar, m_bar)
    pnm = p_bar * n_bar * m_bar
    return 1.0 / (3.0 + 4.0 / pnm - 5.0 / (w * pnm))


def matmul_utilization_limit() -> float:
    """Utilization limit of the hexagonal array for large problems: 1/3."""
    return 1.0 / 3.0


def matmul_regular_feedback_registers(w: int) -> int:
    """Memory for constant-delay feedback: ``2w`` (main diagonal) + ``w`` per pair.

    The spiral topology has ``w - 1`` sub-diagonal pairs, so the total is
    ``2w + (w - 1) w``.
    """
    w = validate_array_size(w)
    return 2 * w + (w - 1) * w


def matmul_irregular_feedback_registers(w: int) -> int:
    """Extra memory for the irregular feedback delays: ``3 w (w - 1) / 2``."""
    w = validate_array_size(w)
    return 3 * w * (w - 1) // 2


def matmul_irregular_delay_first_row(n_bar: int, p_bar: int, w: int) -> int:
    """Irregular delay when the ``U_{0,j}`` blocks are fed back.

    The paper gives ``6 (w - 1)(n_bar - 1) p_bar + w`` for the last partial
    result of those blocks.
    """
    w = validate_array_size(w)
    _check_bars(n_bar, p_bar)
    return 6 * (w - 1) * (n_bar - 1) * p_bar + w


def matmul_irregular_delay_wraparound(n_bar: int, p_bar: int, m_bar: int, w: int) -> int:
    """Irregular delay of the global wrap-around (``L_{n_bar-1,0}`` feedback).

    The paper gives ``6 (n_bar p_bar)(m_bar - 1)(w - 1) + w``.
    """
    w = validate_array_size(w)
    _check_bars(n_bar, p_bar, m_bar)
    return 6 * (n_bar * p_bar) * (m_bar - 1) * (w - 1) + w


# --------------------------------------------------------------------------- #
# Convenience models bundling the formulas for one problem instance
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class MatVecModel:
    """Analytic model of one ``y = A x + b`` problem on a ``w``-cell array."""

    n: int
    m: int
    w: int
    overlapped: bool = False

    @property
    def n_bar(self) -> int:
        return block_count(self.n, self.w)

    @property
    def m_bar(self) -> int:
        return block_count(self.m, self.w)

    @property
    def steps(self) -> int:
        return matvec_steps(self.n_bar, self.m_bar, self.w, self.overlapped)

    @property
    def utilization(self) -> float:
        return matvec_utilization(self.n_bar, self.m_bar, self.w, self.overlapped)

    @property
    def utilization_limit(self) -> float:
        return matvec_utilization_limit(self.overlapped)

    @property
    def feedback_delay(self) -> int:
        return matvec_feedback_delay(self.w)

    @property
    def feedback_registers(self) -> int:
        return matvec_feedback_registers(self.w)

    @property
    def processing_elements(self) -> int:
        return self.w


@dataclass(frozen=True)
class MatMulModel:
    """Analytic model of one ``C = A B + E`` problem on a ``w x w`` array."""

    n: int
    p: int
    m: int
    w: int

    @property
    def n_bar(self) -> int:
        return block_count(self.n, self.w)

    @property
    def p_bar(self) -> int:
        return block_count(self.p, self.w)

    @property
    def m_bar(self) -> int:
        return block_count(self.m, self.w)

    @property
    def steps(self) -> int:
        return matmul_steps(self.n_bar, self.p_bar, self.m_bar, self.w)

    @property
    def utilization(self) -> float:
        return matmul_utilization(self.n_bar, self.p_bar, self.m_bar, self.w)

    @property
    def utilization_limit(self) -> float:
        return matmul_utilization_limit()

    @property
    def regular_feedback_registers(self) -> int:
        return matmul_regular_feedback_registers(self.w)

    @property
    def irregular_feedback_registers(self) -> int:
        return matmul_irregular_feedback_registers(self.w)

    @property
    def processing_elements(self) -> int:
        return self.w * self.w


def _check_bars(*bars: int) -> None:
    for value in bars:
        if value < 1:
            raise ValueError(f"block counts must be >= 1, got {value}")
