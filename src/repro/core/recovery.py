"""Partial-result placement, spiral feedback planning and result recovery.

The appendix of the paper describes the input band ``I`` and output band
``O`` of the hexagonal array: both are bands of width ``2w - 1`` split into
``w x w`` square blocks, each further split into upper (``U``), diagonal
(``D``) and lower (``L``) triangular pieces (Fig. 6).  The input band is
assembled from the addend ``E`` and from fed-back output blocks; the result
blocks of ``C`` are read from specific output blocks.

Instead of transcribing the appendix index formulas (whose scan is partly
unreadable), this module *derives* the same information from the operand
provenance maps built by :class:`~repro.core.operands.MatMulOperands`:

* every in-band position of the product band accumulates partial sums of
  exactly one element of ``C`` (``alpha`` = row origin of the band row,
  ``gamma`` = column origin of the band column);
* grouping positions by that target element and ordering each group by the
  cycle at which its token enters the array yields the accumulation chain
  the spiral feedback realizes: the first position receives the ``E``
  element, every later position receives the value the previous one
  carried out of the array, and the last position carries the finished
  result.

The derived plan is what the paper's spiral feedback computes; the module
also classifies the measured feedback delays into the *regular* ones
(bounded by a constant that depends only on ``w``) and the *irregular*
ones (growing with the problem size), which per Section 3 only occur for
the first and last original block rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import RecoveryError
from ..matrices.banded import BandMatrix
from ..systolic.feedback import ExternalSource
from ..systolic.hex_array import CTokenPlan, HexFeedbackSource, HexagonalArray
from .operands import MatMulOperands

__all__ = [
    "AccumulationChain",
    "PartialResultMap",
    "FeedbackClassification",
    "classify_feedback_delays",
]


@dataclass
class AccumulationChain:
    """The ordered band positions accumulating one element of ``C``.

    ``positions`` is ordered by array entry cycle; the first position
    receives the ``E`` element of the target, every subsequent position is
    fed back from its predecessor, and the value carried by the last
    position when it leaves the array is the finished ``C`` element.
    """

    target: Tuple[int, int]
    positions: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def final_position(self) -> Tuple[int, int]:
        return self.positions[-1]

    @property
    def length(self) -> int:
        return len(self.positions)


class PartialResultMap:
    """Placement of every partial result of ``C = A~ * B~`` in the band.

    Built from the operand provenance; provides the
    :class:`~repro.systolic.hex_array.CTokenPlan` for the hexagonal array
    and the recovery map from the output band to the dense result.
    """

    def __init__(self, operands: MatMulOperands, array: Optional[HexagonalArray] = None):
        self._operands = operands
        self._array = array if array is not None else HexagonalArray(operands.w, operands.w)
        self._chains = self._build_chains()

    # -- construction -------------------------------------------------------------
    def _build_chains(self) -> Dict[Tuple[int, int], AccumulationChain]:
        operands = self._operands
        w = operands.w
        a_band = operands.a_operand.band
        b_band = operands.b_operand.band
        row_origin = operands.a_operand.row_origin
        col_origin = operands.b_operand.col_origin
        tail_start = operands.full_block_count * w

        groups: Dict[Tuple[int, int], List[Tuple[int, Tuple[int, int]]]] = {}
        c_lower = a_band.lower + b_band.lower
        c_upper = a_band.upper + b_band.upper
        dimension = operands.dimension
        for i in range(dimension):
            alpha = int(row_origin[i])
            j_lo = max(0, i - c_lower)
            j_hi = min(dimension - 1, i + c_upper)
            for j in range(j_lo, j_hi + 1):
                if i >= tail_start and j >= tail_start:
                    # The tail corner recomputes products already produced by
                    # the first band block; its output is discarded.
                    continue
                gamma = int(col_origin[j])
                entry, _exit = self._array.c_token_window(a_band, b_band, i, j)
                groups.setdefault((alpha, gamma), []).append((entry, (i, j)))

        chains: Dict[Tuple[int, int], AccumulationChain] = {}
        for target, entries in groups.items():
            entries.sort()
            chains[target] = AccumulationChain(
                target=target, positions=[position for _entry, position in entries]
            )
        return chains

    # -- accessors -----------------------------------------------------------------
    @property
    def operands(self) -> MatMulOperands:
        return self._operands

    @property
    def chains(self) -> Dict[Tuple[int, int], AccumulationChain]:
        return dict(self._chains)

    def chain(self, alpha: int, gamma: int) -> AccumulationChain:
        key = (alpha, gamma)
        if key not in self._chains:
            raise RecoveryError(f"no accumulation chain for C element {key}")
        return self._chains[key]

    def chain_lengths(self) -> Dict[int, int]:
        """Histogram of chain lengths (how many partials feed one element)."""
        histogram: Dict[int, int] = {}
        for chain in self._chains.values():
            histogram[chain.length] = histogram.get(chain.length, 0) + 1
        return histogram

    # -- plan and recovery ------------------------------------------------------------
    def build_token_plan(self, e: Optional[np.ndarray] = None) -> CTokenPlan:
        """The C-token plan realizing in-array accumulation of ``C = A B + E``.

        ``e`` is the dense addend (shape ``n x m``), or ``None`` for zero.
        """
        n, _p = self._operands.a_shape
        _p2, m = self._operands.b_shape
        if e is None:
            e_dense = np.zeros((n, m), dtype=float)
        else:
            e_dense = np.asarray(e, dtype=float)
            if e_dense.shape != (n, m):
                raise RecoveryError(
                    f"addend E must have shape {(n, m)}, got {e_dense.shape}"
                )
        plan = CTokenPlan()
        for (alpha, gamma), chain in self._chains.items():
            first = chain.positions[0]
            value = (
                float(e_dense[alpha, gamma])
                if alpha < n and gamma < m
                else 0.0
            )
            if value != 0.0:
                plan.sources[first] = ExternalSource(value=value, tag=("e", alpha, gamma))
            previous = first
            for position in chain.positions[1:]:
                plan.sources[position] = HexFeedbackSource(
                    source_row=previous[0],
                    source_col=previous[1],
                    tag=("c", alpha, gamma),
                )
                previous = position
        return plan

    def recover_c(self, c_band: BandMatrix) -> np.ndarray:
        """Read the finished ``C`` (original shape) out of the output band."""
        n, _p = self._operands.a_shape
        _p2, m = self._operands.b_shape
        padded_rows = self._operands.n_bar * self._operands.w
        padded_cols = self._operands.m_bar * self._operands.w
        out = np.zeros((padded_rows, padded_cols), dtype=float)
        for (alpha, gamma), chain in self._chains.items():
            i, j = chain.final_position
            out[alpha, gamma] = c_band.get(i, j)
        return out[:n, :m].copy()

    def final_positions(self) -> Dict[Tuple[int, int], Tuple[int, int]]:
        """Map from ``C`` element to the band position carrying its final value."""
        return {target: chain.final_position for target, chain in self._chains.items()}

    def feedback_targets(self) -> Dict[Tuple[int, int], Tuple[int, int]]:
        """Map from feedback destination band positions to their ``C`` element."""
        targets: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for target, chain in self._chains.items():
            for position in chain.positions[1:]:
                targets[position] = target
        return targets


@dataclass(frozen=True)
class FeedbackClassification:
    """Measured spiral feedback delays split into regular and irregular ones.

    ``regular_threshold`` is the largest delay that can be served by the
    constant-size register file (a function of ``w`` only); everything
    above it is an irregular delay in the sense of Section 3.
    """

    regular_threshold: int
    regular_delays: Dict[int, int]
    irregular: List[Tuple[Tuple[int, int], int]]

    @property
    def regular_count(self) -> int:
        return sum(self.regular_delays.values())

    @property
    def irregular_count(self) -> int:
        return len(self.irregular)

    @property
    def max_regular_delay(self) -> int:
        return max(self.regular_delays) if self.regular_delays else 0

    @property
    def max_irregular_delay(self) -> int:
        return max((delay for _pos, delay in self.irregular), default=0)


def classify_feedback_delays(
    delays: Dict[Tuple[int, int], int],
    targets: Dict[Tuple[int, int], Tuple[int, int]],
    w: int,
) -> FeedbackClassification:
    """Split measured feedback delays into regular and irregular ones.

    ``delays`` maps destination band positions to measured delays (from
    :class:`~repro.systolic.hex_array.HexRunResult`); ``targets`` maps the
    same positions to the ``C`` element they accumulate.  A delay is
    *regular* when it is at most ``3w`` — with the ``t = i + j + k``
    schedule used by the simulator, partial results of adjacent band blocks
    re-enter the array after ``2w + |d|`` cycles for a diagonal offset
    ``d`` of magnitude less than ``w`` — and *irregular* otherwise.  The
    irregular entries keep the target element so that callers can confirm
    they all belong to the first or last original block row, as the paper
    states.
    """
    regular_threshold = 3 * w
    regular: Dict[int, int] = {}
    irregular: List[Tuple[Tuple[int, int], int]] = []
    for position, delay in delays.items():
        if delay <= regular_threshold:
            regular[delay] = regular.get(delay, 0) + 1
        else:
            irregular.append((targets.get(position, position), delay))
    irregular.sort(key=lambda item: -item[1])
    return FeedbackClassification(
        regular_threshold=regular_threshold,
        regular_delays=regular,
        irregular=irregular,
    )
