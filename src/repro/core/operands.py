"""Operand band construction for matrix-matrix multiplication (Section 3).

To compute ``C = A * B`` (``A`` is ``n x p``, ``B`` is ``p x m``) on the
``w x w`` hexagonal array, the paper builds two square band matrices of
dimension ``m_bar * n_bar * p_bar * w + w - 1``:

* ``A~`` — apply DBT-by-rows to ``A`` (yielding the band ``A^b`` with
  ``n_bar p_bar`` block rows), juxtapose ``m_bar`` copies of ``A^b`` along
  the band, and append the triangular tail ``U'`` (the first ``w-1`` rows
  and columns of ``A^b``).  ``A~`` is upper-band of bandwidth ``w``.
* ``B~`` — split ``B`` into ``m_bar`` column strips of width ``w``, apply
  DBT-transposed-by-rows to every strip (yielding lower bands ``B_c^b``),
  juxtapose ``n_bar`` copies of each strip band into ``B_c^d``, juxtapose
  the ``m_bar`` strip bands, and append the triangular tail ``L'`` (the
  first ``w-1`` rows and columns of ``B_0^b``).  ``B~`` is lower-band of
  bandwidth ``w``.

Both constructions are materialized directly from the block formulas those
steps induce, together with a *provenance* map (band position -> original
padded element) that the matrix-matrix pipeline uses to

* check that every product ``a_ik * b_kj`` of the padded problem is
  computed exactly once inside the band product (the duplicated tail
  corner excepted, see :meth:`MatMulOperands.verify_product_coverage`), and
* derive the partial-result placement and the spiral feedback plan without
  relying on hand-transcribed index formulas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..errors import TransformError
from ..instrumentation import counters
from ..matrices.banded import BandMatrix
from ..matrices.blocks import BlockGrid
from ..matrices.dense import as_matrix
from ..matrices.padding import validate_array_size

__all__ = ["OperandBand", "MatMulOperands"]


@dataclass
class OperandBand:
    """One transformed operand band plus its provenance bookkeeping.

    ``row_origin[i]`` / ``col_origin[j]`` give the original (padded) row /
    column index that band row ``i`` / band column ``j`` corresponds to;
    the DBT conditions guarantee these maps are well defined.
    """

    band: BandMatrix
    provenance: Dict[Tuple[int, int], Tuple[int, int]]
    row_origin: np.ndarray
    col_origin: np.ndarray

    @property
    def dimension(self) -> int:
        return self.band.rows

    def is_band_full(self) -> bool:
        """Whether every in-band position carries an original element."""
        return len(self.provenance) == self.band.band_positions()


class MatMulOperands:
    """Builds ``A~`` and ``B~`` for one ``C = A * B + E`` problem."""

    def __init__(self, a: np.ndarray, b: np.ndarray, w: int):
        counters.bump("transform_constructions")
        self._w = validate_array_size(w)
        a = as_matrix(a, "A")
        b = as_matrix(b, "B")
        if a.shape[1] != b.shape[0]:
            raise TransformError(
                f"cannot multiply shapes {a.shape} and {b.shape}"
            )
        self._a_shape = a.shape
        self._b_shape = b.shape
        self._a_grid = BlockGrid(a, self._w)
        self._b_grid = BlockGrid(b, self._w)
        self._n_bar = self._a_grid.block_rows
        self._p_bar = self._a_grid.block_cols
        self._m_bar = self._b_grid.block_cols
        if self._b_grid.block_rows != self._p_bar:
            raise TransformError(
                "inner block dimensions disagree after padding; this cannot happen"
            )
        self._a_band = self._build_a_band()
        self._b_band = self._build_b_band()

    # -- geometry -----------------------------------------------------------------
    @property
    def w(self) -> int:
        return self._w

    @property
    def n_bar(self) -> int:
        return self._n_bar

    @property
    def p_bar(self) -> int:
        return self._p_bar

    @property
    def m_bar(self) -> int:
        return self._m_bar

    @property
    def full_block_count(self) -> int:
        """Number of full band block rows/columns: ``m_bar * n_bar * p_bar``."""
        return self._m_bar * self._n_bar * self._p_bar

    @property
    def dimension(self) -> int:
        """Dimension of the square transformed operands."""
        return self.full_block_count * self._w + self._w - 1

    @property
    def copy_block_count(self) -> int:
        """Band block rows contributed by one copy of ``A^b``: ``n_bar * p_bar``."""
        return self._n_bar * self._p_bar

    @property
    def a_operand(self) -> OperandBand:
        return self._a_band

    @property
    def b_operand(self) -> OperandBand:
        return self._b_band

    @property
    def a_shape(self) -> Tuple[int, int]:
        return self._a_shape

    @property
    def b_shape(self) -> Tuple[int, int]:
        return self._b_shape

    # -- construction of A~ ----------------------------------------------------------
    def _build_a_band(self) -> OperandBand:
        w = self._w
        dim = self.dimension
        band = BandMatrix(dim, dim, lower=0, upper=w - 1)
        provenance: Dict[Tuple[int, int], Tuple[int, int]] = {}
        row_origin = np.full(dim, -1, dtype=int)
        col_origin = np.full(dim, -1, dtype=int)

        for block in range(self.full_block_count):
            within_copy = block % self.copy_block_count
            r = within_copy // self._p_bar
            s = within_copy % self._p_bar
            s_next = (s + 1) % self._p_bar
            upper = np.triu(self._a_grid.block(r, s))
            lower = np.tril(self._a_grid.block(r, s_next), k=-1)
            base = block * w
            for a_off in range(w):
                row_origin[base + a_off] = r * w + a_off
                for b_off in range(a_off, w):
                    self._place(
                        band, provenance, col_origin,
                        base + a_off, base + b_off,
                        upper[a_off, b_off],
                        (r * w + a_off, s * w + b_off),
                    )
                for b_off in range(a_off):
                    self._place(
                        band, provenance, col_origin,
                        base + a_off, base + w + b_off,
                        lower[a_off, b_off],
                        (r * w + a_off, s_next * w + b_off),
                    )

        # Tail U': the leading (w-1) x (w-1) corner of U_{0,0}.
        tail_base = self.full_block_count * w
        tail_block = np.triu(self._a_grid.block(0, 0))
        for a_off in range(w - 1):
            row_origin[tail_base + a_off] = a_off
            for b_off in range(a_off, w - 1):
                self._place(
                    band, provenance, col_origin,
                    tail_base + a_off, tail_base + b_off,
                    tail_block[a_off, b_off],
                    (a_off, b_off),
                )
        return OperandBand(
            band=band, provenance=provenance,
            row_origin=row_origin, col_origin=col_origin,
        )

    # -- construction of B~ -----------------------------------------------------------
    def _build_b_band(self) -> OperandBand:
        w = self._w
        dim = self.dimension
        band = BandMatrix(dim, dim, lower=w - 1, upper=0)
        provenance: Dict[Tuple[int, int], Tuple[int, int]] = {}
        row_origin = np.full(dim, -1, dtype=int)
        col_origin = np.full(dim, -1, dtype=int)

        for block in range(self.full_block_count):
            strip = block // self.copy_block_count
            q = (block % self.copy_block_count) % self._p_bar
            q_next = (q + 1) % self._p_bar
            diag = np.tril(self._b_grid.block(q, strip))
            sub = np.triu(self._b_grid.block(q_next, strip), k=1)
            base = block * w
            for b_off in range(w):
                col_origin[base + b_off] = strip * w + b_off
            for a_off in range(w):
                for b_off in range(a_off + 1):
                    self._place(
                        band, provenance, row_origin,
                        base + a_off, base + b_off,
                        diag[a_off, b_off],
                        (q * w + a_off, strip * w + b_off),
                        origin_axis=0,
                    )
            for a_off in range(w - 1):
                for b_off in range(a_off + 1, w):
                    self._place(
                        band, provenance, row_origin,
                        base + w + a_off, base + b_off,
                        sub[a_off, b_off],
                        (q_next * w + a_off, strip * w + b_off),
                        origin_axis=0,
                    )

        # Tail L': the leading (w-1) x (w-1) corner of tril(B_{0,0}).
        tail_base = self.full_block_count * w
        tail_block = np.tril(self._b_grid.block(0, 0))
        for b_off in range(w - 1):
            col_origin[tail_base + b_off] = b_off
        for a_off in range(w - 1):
            for b_off in range(a_off + 1):
                self._place(
                    band, provenance, row_origin,
                    tail_base + a_off, tail_base + b_off,
                    tail_block[a_off, b_off],
                    (a_off, b_off),
                    origin_axis=0,
                )
        return OperandBand(
            band=band, provenance=provenance,
            row_origin=row_origin, col_origin=col_origin,
        )

    def _place(
        self,
        band: BandMatrix,
        provenance: Dict[Tuple[int, int], Tuple[int, int]],
        origin_map: np.ndarray,
        i: int,
        j: int,
        value: float,
        origin: Tuple[int, int],
        origin_axis: int = 1,
    ) -> None:
        """Store one band element, its provenance and its row/column origin.

        ``origin_axis`` selects which coordinate of ``origin`` indexes the
        ``origin_map``: the column origin for ``A~`` (axis 1, keyed by band
        column) and the row origin for ``B~`` (axis 0, keyed by band row).
        """
        if i >= band.rows or j >= band.cols:
            raise TransformError(f"band position ({i}, {j}) outside the operand")
        position = (i, j)
        if position in provenance:
            raise TransformError(
                f"band position {position} assigned twice "
                f"({provenance[position]} and {origin})"
            )
        band.set(i, j, value)
        provenance[position] = origin
        key = j if origin_axis == 1 else i
        expected = origin[origin_axis]
        if origin_map[key] == -1:
            origin_map[key] = expected
        elif origin_map[key] != expected:
            raise TransformError(
                f"band index {key} maps to two different original indices "
                f"({origin_map[key]} and {expected}); the DBT conditions are violated"
            )

    # -- audits ----------------------------------------------------------------------
    def inner_origins_consistent(self) -> bool:
        """Column origins of ``A~`` equal row origins of ``B~`` everywhere.

        This is the property that makes the band product meaningful: band
        index ``J`` pairs column ``beta`` of ``A`` with row ``beta`` of
        ``B`` for one and the same ``beta``.
        """
        return bool(
            np.array_equal(self._a_band.col_origin, self._b_band.row_origin)
        )

    def verify_product_coverage(self) -> Tuple[int, int]:
        """Check that the band product computes every padded product once.

        Returns ``(covered, duplicated)`` where ``covered`` is the number of
        distinct ``(alpha, beta, gamma)`` products of the padded problem
        found in the band product (it must equal
        ``n_bar * p_bar * m_bar * w**3``) and ``duplicated`` counts the
        products computed twice.  The only duplicates allowed are those of
        the tail corner block (the ``U' * L'`` overlap), which the recovery
        discards; anything else raises
        :class:`~repro.errors.TransformError`.
        """
        w = self._w
        b_band = self._b_band.band
        a_prov = self._a_band.provenance
        b_prov = self._b_band.provenance
        tail_start = self.full_block_count * w

        seen: Dict[Tuple[int, int, int], Tuple[int, int]] = {}
        duplicated = 0
        for (i, k), (alpha, beta_a) in a_prov.items():
            for j in range(max(0, k - b_band.lower), min(b_band.cols, k + b_band.upper + 1)):
                if (k, j) not in b_prov:
                    continue
                beta_b, gamma = b_prov[(k, j)]
                if beta_a != beta_b:
                    raise TransformError(
                        f"band index {k} pairs A column {beta_a} with B row {beta_b}"
                    )
                product = (alpha, beta_a, gamma)
                if product in seen:
                    duplicated += 1
                    if not (i >= tail_start and j >= tail_start) and not (
                        seen[product][0] >= tail_start and seen[product][1] >= tail_start
                    ):
                        raise TransformError(
                            f"product {product} computed twice outside the tail corner "
                            f"(positions {seen[product]} and {(i, j)})"
                        )
                else:
                    seen[product] = (i, j)

        expected = self._n_bar * self._p_bar * self._m_bar * w ** 3
        if len(seen) != expected:
            raise TransformError(
                f"the band product covers {len(seen)} products, expected {expected}"
            )
        return len(seen), duplicated
