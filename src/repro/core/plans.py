"""Reusable plan/execute engines for the DBT pipelines.

The paper's central property is that the DBT transformations depend only on
the problem *shape* and the array size ``w`` — never on operand values.
This module exploits that: a :class:`MatVecPlan` / :class:`MatMulPlan` is
built once per ``(shape, w)`` from a zero-valued template and captures
everything shape-determined —

* the band geometry and a vectorized *refill gather* (band diagonal
  position -> original padded element) derived from the transform's
  provenance map,
* the ``x``/output stream tags and the ``y``-source skeleton (which band
  rows start from ``b`` and which from the feedback chain),
* for the matrix-matrix case, the partial-result placement, the spiral
  feedback token plan and the (optional) structural verification,
* the closed-form analytic model.

Executing a plan only streams values, through one of two backends: the
cycle-accurate simulators of :mod:`repro.systolic` (``backend="simulate"``,
the default for direct construction) or the NumPy diagonal-sweep engines
of :mod:`repro.backends.vectorized` (``backend="vectorized"``; the api
layer's ``"auto"`` default resolves to it), which replay the same
multiply-accumulate order without per-cycle state and produce
bit-identical values and metrics.  No
:class:`~repro.core.dbt.DBTByRowsTransform` or
:class:`~repro.core.operands.MatMulOperands` is constructed on the
execute path either way, which is what makes repeated same-shape solves —
the hot path of any serving workload — cheap.

:class:`CachedMatVec` and :class:`CachedMatMul` are small engines that
memoize one plan per operand shape; the legacy ``SizeIndependent*``
classes and the :mod:`repro.extensions` pipelines run on top of them, and
the :mod:`repro.api` façade adds the LRU-cached front door.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..backends.registry import COMPILED, SIMULATE, VECTORIZED, resolve_backend
from ..backends.vectorized import HexSweepPlan, LinearSweepPlan, build_linear_run
from ..errors import ShapeError
from ..instrumentation import CacheStats, counters
from ..matrices.banded import BandMatrix
from ..matrices.dense import as_matrix, as_vector
from ..matrices.padding import pad_matrix, pad_vector, validate_array_size
from ..systolic.feedback import ExternalSource, FeedbackSource
from ..systolic.hex_array import CTokenPlan, HexFeedbackSource, HexagonalArray
from ..systolic.linear_array import LinearContraflowArray, LinearProblem
from .analytic import MatMulModel, MatVecModel
from .dbt import DBTByRowsTransform
from .matmul import MatMulSolution
from .matvec import MatVecSolution
from .operands import MatMulOperands
from .recovery import PartialResultMap
from .schedule import plan_overlap_partition

__all__ = [
    "MatVecPlan",
    "OverlappedMatVecPlan",
    "MatMulPlan",
    "CachedMatVec",
    "CachedMatMul",
]


class _BandGather:
    """Vectorized refill of one band's value-bearing positions.

    Built once from a provenance map (band position -> original padded
    element); :meth:`fill` writes the corresponding values of a padded
    operand into a fresh :class:`~repro.matrices.banded.BandMatrix` one
    diagonal at a time.  Positions without provenance are structural zeros
    and stay zero.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        lower: int,
        upper: int,
        provenance: Dict[Tuple[int, int], Tuple[int, int]],
    ):
        self._rows = rows
        self._cols = cols
        self._lower = lower
        self._upper = upper
        template = BandMatrix(rows, cols, lower, upper)
        per_diagonal: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        buckets: Dict[int, List[Tuple[int, int, int]]] = {
            offset: [] for offset in template.offsets()
        }
        for (i, j), (oi, oj) in provenance.items():
            offset = j - i
            along = i if offset >= 0 else j
            buckets[offset].append((along, oi, oj))
        for offset, entries in buckets.items():
            entries.sort()
            along = np.array([e[0] for e in entries], dtype=int)
            oi = np.array([e[1] for e in entries], dtype=int)
            oj = np.array([e[2] for e in entries], dtype=int)
            per_diagonal[offset] = (along, oi, oj)
        self._per_diagonal = per_diagonal

    def fill(self, padded: np.ndarray) -> BandMatrix:
        """A fresh band holding ``padded``'s values at the planned positions."""
        band = BandMatrix(self._rows, self._cols, self._lower, self._upper)
        for offset, (along, oi, oj) in self._per_diagonal.items():
            if along.size == 0:
                continue
            values = np.zeros(band.diagonal_length(offset), dtype=float)
            values[along] = padded[oi, oj]
            band.set_diagonal(offset, values)
        return band


class MatVecPlan:
    """Shape-keyed execution plan for ``y = A x + b`` on the linear array.

    Immutable once built; :meth:`execute` only streams operand values.
    """

    #: Two independent same-plan problems can share one array run through
    #: :meth:`execute_pair` (the api batcher and the graph compiler route
    #: pairable stages through it; the overlapped/split plan cannot, its
    #: idle cycles already carry the second half of its own problem).
    supports_pairing = True

    def __init__(
        self,
        n: int,
        m: int,
        w: int,
        record_trace: bool = False,
        backend: str = SIMULATE,
    ):
        if n < 1 or m < 1:
            raise ShapeError(f"matvec plan needs positive dimensions, got ({n}, {m})")
        self._n = int(n)
        self._m = int(m)
        self._w = validate_array_size(w)
        self._record_trace = bool(record_trace)
        self._backend = resolve_backend(backend, record_trace=self._record_trace)
        template = DBTByRowsTransform(np.zeros((self._n, self._m)), self._w)
        self._template = template
        self._x_tags = template.x_tags()
        self._output_tags = template.output_tags()
        self._x_gather = np.array([tag[1] for tag in self._x_tags], dtype=int)
        # y-source skeleton: padded b index for external rows, the (frozen,
        # reusable) FeedbackSource for fed-back rows.
        self._y_skeleton: List[object] = []
        for source in template.build_y_sources(None):
            if isinstance(source, ExternalSource):
                self._y_skeleton.append(int(source.tag[1]))
            else:
                self._y_skeleton.append(source)
        self._band_gather = _BandGather(
            template.band_rows,
            template.band_cols,
            0,
            self._w - 1,
            template.provenance(),
        )
        self._useful = self._n * self._m
        self._model = MatVecModel(n=self._n, m=self._m, w=self._w, overlapped=False)
        self._array = LinearContraflowArray(self._w, record_trace=self._record_trace)
        # Unpaired feedback delays are pure band geometry — identical on
        # every plain execute of this plan — so the api handler caches
        # the wrapped FeedbackStats here after the first solve instead
        # of rebuilding the O(bands) delay list per request.  Paired
        # (overlapped) runs shift the schedule and are never cached.
        self.feedback_stats: Optional[Any] = None
        self._sweep: Optional[LinearSweepPlan] = None
        if self._backend == VECTORIZED:
            self._sweep = LinearSweepPlan(
                w=self._w,
                n=self._n,
                m=self._m,
                n_bar=template.n_bar,
                m_bar=template.m_bar,
                useful_operations=self._useful,
            )
        elif self._backend == COMPILED:
            # Lazy: the compiled subsystem is only pulled in when a
            # compiled plan is actually built.
            from ..compiled.lowering import lower_linear_plan

            self._sweep = lower_linear_plan(
                w=self._w,
                n=self._n,
                m=self._m,
                n_bar=template.n_bar,
                m_bar=template.m_bar,
                useful_operations=self._useful,
            )

    # -- geometry -----------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return (self._n, self._m)

    @property
    def w(self) -> int:
        return self._w

    @property
    def backend(self) -> str:
        """The resolved execution backend (``simulate``/``vectorized``/``compiled``)."""
        return self._backend

    @property
    def record_trace(self) -> bool:
        return self._record_trace

    @property
    def transform(self) -> DBTByRowsTransform:
        """The structural template transform (its band values are zeros)."""
        return self._template

    @property
    def model(self) -> MatVecModel:
        return self._model

    @property
    def sweep_plan(self) -> Optional[LinearSweepPlan]:
        """The sweep skeleton (``None`` on the simulate backend).

        Exposed for engines that layer other datapaths over the same band
        geometry — the :mod:`repro.nn` int8 dense plan drives
        :meth:`~repro.backends.vectorized.LinearSweepPlan.int_sweep`
        through it.
        """
        return self._sweep

    # -- value streaming ------------------------------------------------------------
    def _validate(
        self, matrix: np.ndarray, x: np.ndarray, b: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        matrix = as_matrix(matrix, "matrix")
        if matrix.shape != (self._n, self._m):
            raise ShapeError(
                f"plan was built for shape {(self._n, self._m)}, "
                f"got matrix of shape {matrix.shape}"
            )
        x = as_vector(x, "x")
        if x.shape[0] != matrix.shape[1]:
            raise ShapeError(
                f"x has length {x.shape[0]} but the matrix has {matrix.shape[1]} columns"
            )
        if b is not None:
            b = as_vector(b, "b")
            if b.shape[0] != matrix.shape[0]:
                raise ShapeError(
                    f"b has length {b.shape[0]} but the matrix has {matrix.shape[0]} rows"
                )
        return matrix, x, b

    def build_problem(
        self,
        matrix: np.ndarray,
        x: np.ndarray,
        b: Optional[np.ndarray] = None,
    ) -> LinearProblem:
        """Stream one operand set into a ready-to-run :class:`LinearProblem`."""
        matrix, x, b = self._validate(matrix, x, b)
        padded = pad_matrix(matrix, self._w)
        band = self._band_gather.fill(padded)
        x_tilde = pad_vector(x, self._w)[self._x_gather]
        padded_b = pad_vector(
            b if b is not None else np.zeros(self._n), self._w
        )
        y_sources: List[object] = [
            source
            if isinstance(source, FeedbackSource)
            else ExternalSource(value=float(padded_b[source]), tag=("b", source))
            for source in self._y_skeleton
        ]
        return LinearProblem(
            band=band,
            x=x_tilde,
            y_sources=y_sources,
            x_tags=self._x_tags,
            output_tags=self._output_tags,
            useful_operations=self._useful,
        )

    def execute(
        self,
        matrix: np.ndarray,
        x: np.ndarray,
        b: Optional[np.ndarray] = None,
    ) -> MatVecSolution:
        """Solve ``y = A x + b`` through the prebuilt plan."""
        if self._sweep is not None:
            matrix, x, b = self._validate(matrix, x, b)
            band_outputs, y_padded = self._sweep.sweep(matrix, x, b)
            run = build_linear_run(self._w, [self._sweep], [band_outputs])
            y = y_padded[: self._n].copy()
        else:
            problem = self.build_problem(matrix, x, b)
            run = self._array.run(problem)
            y = self._template.recover_y(run.y_per_problem[0])
        return MatVecSolution(
            y=y,
            w=self._w,
            overlapped=False,
            transforms=[self._template],
            run=run,
            model=self._model,
        )

    def execute_pair(
        self,
        first: Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]],
        second: Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]],
    ) -> Tuple[MatVecSolution, MatVecSolution]:
        """Run two independent same-shape problems overlapped on odd/even cycles.

        This is the paper's overlapping device applied across *requests*
        instead of across the two halves of one transformed problem: the
        second problem's schedule is shifted by one cycle into the idle
        slots, so the pair finishes in roughly half the sequential time.
        The recovered values are identical to two plain solves.
        """
        if self._sweep is not None:
            swept = [
                self._sweep.sweep(*self._validate(*operands))
                for operands in (first, second)
            ]
            run = build_linear_run(
                self._w,
                [self._sweep, self._sweep],
                [band_outputs for band_outputs, _y in swept],
            )
            ys = [y_padded[: self._n].copy() for _outputs, y_padded in swept]
        else:
            problems = [self.build_problem(*first), self.build_problem(*second)]
            run = self._array.run_overlapped(problems)
            ys = [
                self._template.recover_y(run.y_per_problem[index])
                for index in range(2)
            ]
        solutions = []
        for y in ys:
            solutions.append(
                MatVecSolution(
                    y=y,
                    w=self._w,
                    overlapped=True,
                    transforms=[self._template],
                    run=run,
                    model=self._model,
                )
            )
        return solutions[0], solutions[1]


class OverlappedMatVecPlan:
    """Plan for the paper's split-and-overlap execution of one problem.

    The original problem is cut at an original block-row boundary into two
    halves whose transformed problems interleave on the array's idle
    cycles; each half gets its own :class:`MatVecPlan` skeleton.
    """

    supports_pairing = False

    def __init__(
        self,
        n: int,
        m: int,
        w: int,
        record_trace: bool = False,
        backend: str = SIMULATE,
    ):
        self._n = int(n)
        self._m = int(m)
        self._w = validate_array_size(w)
        self._record_trace = bool(record_trace)
        self._backend = resolve_backend(backend, record_trace=self._record_trace)
        self._partition = plan_overlap_partition(self._n, self._m, self._w)
        top = self._partition.first_rows
        self._top = MatVecPlan(top, self._m, self._w, backend=self._backend)
        self._bottom = MatVecPlan(self._n - top, self._m, self._w, backend=self._backend)
        self._array = LinearContraflowArray(self._w, record_trace=self._record_trace)
        self._model = MatVecModel(n=self._n, m=self._m, w=self._w, overlapped=True)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self._n, self._m)

    @property
    def w(self) -> int:
        return self._w

    @property
    def backend(self) -> str:
        """The resolved execution backend (``simulate`` or ``vectorized``)."""
        return self._backend

    @property
    def model(self) -> MatVecModel:
        return self._model

    def execute(
        self,
        matrix: np.ndarray,
        x: np.ndarray,
        b: Optional[np.ndarray] = None,
    ) -> MatVecSolution:
        matrix = as_matrix(matrix, "matrix")
        if matrix.shape != (self._n, self._m):
            raise ShapeError(
                f"plan was built for shape {(self._n, self._m)}, "
                f"got matrix of shape {matrix.shape}"
            )
        x = as_vector(x, "x")
        if x.shape[0] != self._m:
            raise ShapeError(
                f"x has length {x.shape[0]} but the matrix has {self._m} columns"
            )
        if b is not None:
            b = as_vector(b, "b")
            if b.shape[0] != self._n:
                raise ShapeError(
                    f"b has length {b.shape[0]} but the matrix has {self._n} rows"
                )
        top_rows = self._partition.first_rows
        top_b = b[:top_rows] if b is not None else None
        bottom_b = b[top_rows:] if b is not None else None
        if self._backend in (VECTORIZED, COMPILED):
            top_outputs, top_y = self._top._sweep.sweep(
                matrix[:top_rows, :], x, top_b
            )
            bottom_outputs, bottom_y = self._bottom._sweep.sweep(
                matrix[top_rows:, :], x, bottom_b
            )
            run = build_linear_run(
                self._w,
                [self._top._sweep, self._bottom._sweep],
                [top_outputs, bottom_outputs],
            )
            y = np.concatenate(
                [top_y[:top_rows], bottom_y[: self._n - top_rows]]
            )
            return MatVecSolution(
                y=y,
                w=self._w,
                overlapped=True,
                transforms=[self._top.transform, self._bottom.transform],
                run=run,
                model=self._model,
            )
        problems = [
            self._top.build_problem(matrix[:top_rows, :], x, top_b),
            self._bottom.build_problem(matrix[top_rows:, :], x, bottom_b),
        ]
        run = self._array.run_overlapped(problems)
        y = np.concatenate(
            [
                self._top.transform.recover_y(run.y_per_problem[0]),
                self._bottom.transform.recover_y(run.y_per_problem[1]),
            ]
        )
        return MatVecSolution(
            y=y,
            w=self._w,
            overlapped=True,
            transforms=[self._top.transform, self._bottom.transform],
            run=run,
            model=self._model,
        )


class MatMulPlan:
    """Shape-keyed execution plan for ``C = A B + E`` on the hexagonal array.

    Captures the operand band geometry, the partial-result placement, the
    spiral feedback token plan and (optionally, at *plan* time — structure
    is all that matters) the DBT structural verification.
    """

    def __init__(
        self,
        n: int,
        p: int,
        m: int,
        w: int,
        verify_structure: bool = False,
        backend: str = SIMULATE,
    ):
        if n < 1 or p < 1 or m < 1:
            raise ShapeError(
                f"matmul plan needs positive dimensions, got ({n}, {p}, {m})"
            )
        self._backend = resolve_backend(backend)
        self._n = int(n)
        self._p = int(p)
        self._m = int(m)
        self._w = validate_array_size(w)
        operands = MatMulOperands(
            np.zeros((self._n, self._p)), np.zeros((self._p, self._m)), self._w
        )
        if verify_structure:
            operands.verify_product_coverage()
            if not operands.inner_origins_consistent():
                raise ShapeError("operand bands pair inconsistent inner indices")
        self._operands = operands
        self._array = HexagonalArray(self._w, self._w)
        self._placement = PartialResultMap(operands, self._array)
        a_band = operands.a_operand.band
        b_band = operands.b_operand.band
        self._a_gather = _BandGather(
            a_band.rows, a_band.cols, a_band.lower, a_band.upper,
            operands.a_operand.provenance,
        )
        self._b_gather = _BandGather(
            b_band.rows, b_band.cols, b_band.lower, b_band.upper,
            operands.b_operand.provenance,
        )
        # Token-plan skeleton: the spiral feedback wiring is value
        # independent; only the external E injections change per solve.
        feedback: Dict[Tuple[int, int], object] = {}
        externals: List[Tuple[Tuple[int, int], int, int]] = []
        for (alpha, gamma), chain in self._placement.chains.items():
            first = chain.positions[0]
            externals.append((first, alpha, gamma))
            previous = first
            for position in chain.positions[1:]:
                feedback[position] = HexFeedbackSource(
                    source_row=previous[0],
                    source_col=previous[1],
                    tag=("c", alpha, gamma),
                )
                previous = position
        self._feedback_sources = feedback
        self._external_slots = externals
        self._useful = self._n * self._p * self._m
        self._model = MatMulModel(n=self._n, p=self._p, m=self._m, w=self._w)
        self._hex_sweep: Optional[HexSweepPlan] = None
        if self._backend == VECTORIZED:
            self._hex_sweep = HexSweepPlan(operands, self._placement, self._useful)
        elif self._backend == COMPILED:
            # The hexagonal skeleton is already a lowered straight-line
            # program; the compiled backend adds geometry-keyed sharing
            # of its (expensive) build.  Lazy import as in MatVecPlan.
            from ..compiled.lowering import lower_hex_plan

            self._hex_sweep = lower_hex_plan(operands, self._placement, self._useful)

    # -- geometry -----------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int, int]:
        """Problem dimensions ``(n, p, m)`` of ``C[n,m] = A[n,p] B[p,m]``."""
        return (self._n, self._p, self._m)

    @property
    def w(self) -> int:
        return self._w

    @property
    def backend(self) -> str:
        """The resolved execution backend (``simulate``/``vectorized``/``compiled``)."""
        return self._backend

    @property
    def operands(self) -> MatMulOperands:
        """The structural operand template (its band values are zeros)."""
        return self._operands

    @property
    def placement(self) -> PartialResultMap:
        return self._placement

    @property
    def model(self) -> MatMulModel:
        return self._model

    # -- value streaming ------------------------------------------------------------
    def execute(
        self,
        a: np.ndarray,
        b: np.ndarray,
        e: Optional[np.ndarray] = None,
    ) -> MatMulSolution:
        """Solve ``C = A B + E`` through the prebuilt plan."""
        a = as_matrix(a, "A")
        b = as_matrix(b, "B")
        if a.shape != (self._n, self._p) or b.shape != (self._p, self._m):
            if a.shape[1] != b.shape[0]:
                raise ShapeError(f"cannot multiply shapes {a.shape} and {b.shape}")
            raise ShapeError(
                f"plan was built for shapes {(self._n, self._p)} x "
                f"{(self._p, self._m)}, got {a.shape} x {b.shape}"
            )
        if e is not None:
            e = as_matrix(e, "E")
            if e.shape != (self._n, self._m):
                raise ShapeError(
                    f"E must have shape {(self._n, self._m)}, got {e.shape}"
                )

        if self._hex_sweep is not None:
            c, run = self._hex_sweep.execute(a, b, e)
            return MatMulSolution(
                c=c,
                w=self._w,
                operands=self._operands,
                placement=self._placement,
                run=run,
                model=self._model,
            )

        a_band = self._a_gather.fill(pad_matrix(a, self._w))
        b_band = self._b_gather.fill(pad_matrix(b, self._w))
        plan = CTokenPlan(sources=dict(self._feedback_sources))
        if e is not None:
            for first, alpha, gamma in self._external_slots:
                if alpha < self._n and gamma < self._m:
                    value = float(e[alpha, gamma])
                    if value != 0.0:
                        plan.sources[first] = ExternalSource(
                            value=value, tag=("e", alpha, gamma)
                        )
        run = self._array.run(
            a_band, b_band, c_plan=plan, useful_operations=self._useful
        )
        c = self._placement.recover_c(run.c_band)
        return MatMulSolution(
            c=c,
            w=self._w,
            operands=self._operands,
            placement=self._placement,
            run=run,
            model=self._model,
        )


class CachedMatVec:
    """Mat-vec engine memoizing one :class:`MatVecPlan` per operand shape.

    Drop-in for the solve surface of the legacy ``SizeIndependentMatVec``:
    the first solve of a shape builds the plan, every later solve of the
    same shape only streams values.  The blocked extension pipelines
    (triangular solve, Gauss-Seidel, LU) issue many same-shape products,
    so sharing one engine across a pipeline warms its plans once.
    """

    #: Per-shape plans kept per engine; least recently used shapes are
    #: dropped beyond this (a dropped plan is simply rebuilt on demand).
    MAX_PLANS = 32

    def __init__(
        self,
        w: int,
        record_trace: bool = False,
        overlapped: bool = False,
        backend: str = SIMULATE,
    ):
        self._w = validate_array_size(w)
        self._record_trace = bool(record_trace)
        self._overlapped = bool(overlapped)
        self._backend = resolve_backend(backend, record_trace=self._record_trace)
        self._plans: "OrderedDict[Tuple[int, int], object]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def w(self) -> int:
        return self._w

    @property
    def overlapped(self) -> bool:
        return self._overlapped

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def stats(self) -> CacheStats:
        """Hit/miss/eviction accounting of the per-shape plan memo.

        The iterative solvers aggregate these across their inner engines
        to *prove* warm-plan reuse (a k-sweep solve should show one miss
        per distinct inner shape and hits for everything else).
        """
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._plans),
            maxsize=self.MAX_PLANS,
        )

    def plan_for(self, n: int, m: int):
        """The (memoized) plan for one operand shape."""
        key = (int(n), int(m))
        plan = self._plans.get(key)
        if plan is None:
            self._misses += 1
            counters.bump("plan_builds")
            if self._overlapped:
                plan = OverlappedMatVecPlan(
                    key[0], key[1], self._w,
                    record_trace=self._record_trace,
                    backend=self._backend,
                )
            else:
                plan = MatVecPlan(
                    key[0], key[1], self._w,
                    record_trace=self._record_trace,
                    backend=self._backend,
                )
            self._plans[key] = plan
            while len(self._plans) > self.MAX_PLANS:
                self._plans.popitem(last=False)
                self._evictions += 1
        else:
            self._hits += 1
            self._plans.move_to_end(key)
        return plan

    def solve(
        self,
        matrix: np.ndarray,
        x: np.ndarray,
        b: Optional[np.ndarray] = None,
    ) -> MatVecSolution:
        matrix = as_matrix(matrix, "matrix")
        return self.plan_for(*matrix.shape).execute(matrix, x, b)


class CachedMatMul:
    """Mat-mul engine memoizing one :class:`MatMulPlan` per operand shape."""

    #: See :attr:`CachedMatVec.MAX_PLANS`.
    MAX_PLANS = 32

    def __init__(self, w: int, verify_structure: bool = False, backend: str = SIMULATE):
        self._w = validate_array_size(w)
        self._verify_structure = bool(verify_structure)
        self._backend = resolve_backend(backend)
        self._plans: "OrderedDict[Tuple[int, int, int], MatMulPlan]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def w(self) -> int:
        return self._w

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def stats(self) -> CacheStats:
        """See :attr:`CachedMatVec.stats`."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._plans),
            maxsize=self.MAX_PLANS,
        )

    def plan_for(self, n: int, p: int, m: int) -> MatMulPlan:
        key = (int(n), int(p), int(m))
        plan = self._plans.get(key)
        if plan is None:
            self._misses += 1
            counters.bump("plan_builds")
            plan = MatMulPlan(
                key[0], key[1], key[2], self._w,
                verify_structure=self._verify_structure,
                backend=self._backend,
            )
            self._plans[key] = plan
            while len(self._plans) > self.MAX_PLANS:
                self._plans.popitem(last=False)
                self._evictions += 1
        else:
            self._hits += 1
            self._plans.move_to_end(key)
        return plan

    def solve(
        self,
        a: np.ndarray,
        b: np.ndarray,
        e: Optional[np.ndarray] = None,
    ) -> MatMulSolution:
        a = as_matrix(a, "A")
        b = as_matrix(b, "B")
        if a.shape[1] != b.shape[0]:
            raise ShapeError(f"cannot multiply shapes {a.shape} and {b.shape}")
        return self.plan_for(a.shape[0], a.shape[1], b.shape[1]).execute(a, b, e)
