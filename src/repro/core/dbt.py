"""DBT-by-rows: the paper's dense-to-band transformation for y = A x + b.

Section 2 of the paper defines a family of transformations (DBT: *Dense to
Band matrix Transformation by Triangular blocks partitioning*) that map a
dense ``n x m`` matrix ``A`` onto a band matrix ``A~`` whose bandwidth
equals the linear systolic array size ``w``:

1. ``A`` is padded and split into ``n_bar x m_bar`` blocks ``A_ij`` of
   ``w x w`` elements each.
2. Every block is split into an upper triangle ``U_ij`` (with the main
   diagonal) and a strictly lower triangle ``L_ij``.
3. The triangles are re-packed inside the band: band block row ``k`` holds
   one ``U`` on the diagonal block and one ``L`` on the super-diagonal
   block, chosen so that

   * (condition 1) the ``U`` and ``L`` of a band block row come from the
     same original block row,
   * (condition 2) the ``L`` of band block row ``k`` and the ``U`` of band
     block row ``k+1`` come from the same original block column, and
   * (condition 3) every original triangle appears exactly once.

The *by-rows* member of the family fixes the choice to

    ``U_k = U_{r,s}``  with ``r = floor(k / m_bar)``, ``s = k mod m_bar``
    ``L_k = L_{r,s'}`` with ``s' = (k mod m_bar + 1) mod m_bar``

which walks the original blocks row by row and yields a constant feedback
delay equal to ``w`` (Section 2).  The Priester et al. PRT transformation
is the particular case ``n_bar = m_bar = 1``.

:class:`DBTByRowsTransform` builds the band matrix, the transformed
vectors, the input/output schedules for the linear array, and the result
recovery map, and can audit the three DBT conditions and the
band-completely-filled property on itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import TransformError
from ..instrumentation import counters
from ..matrices.blocks import BlockGrid
from ..matrices.banded import BandMatrix
from ..matrices.dense import as_matrix, as_vector
from ..matrices.padding import pad_vector, validate_array_size
from ..systolic.feedback import ExternalSource, FeedbackSource

__all__ = ["BlockAssignment", "DBTByRowsTransform", "dbt_by_rows"]


@dataclass(frozen=True)
class BlockAssignment:
    """Sources of the two triangles placed in band block row ``k``.

    ``upper_source`` and ``lower_source`` are original block grid indices
    ``(i, j)``; the upper triangle of block ``upper_source`` lands on the
    diagonal block of band block row ``k`` and the strictly lower triangle
    of block ``lower_source`` lands on its super-diagonal block.
    """

    k: int
    upper_source: Tuple[int, int]
    lower_source: Tuple[int, int]


class DBTByRowsTransform:
    """The DBT-by-rows transformation of one dense matrix.

    Parameters
    ----------
    matrix:
        The dense matrix ``A`` (any shape; it is zero padded internally).
    w:
        Systolic array size, which becomes the bandwidth of ``A~``.
    """

    def __init__(self, matrix: np.ndarray, w: int):
        counters.bump("transform_constructions")
        self._w = validate_array_size(w)
        matrix = as_matrix(matrix, "matrix")
        self._original_shape = matrix.shape
        self._grid = BlockGrid(matrix, self._w)
        self._n_bar = self._grid.block_rows
        self._m_bar = self._grid.block_cols
        self._assignments = self._build_assignments()
        self._band, self._provenance = self._assemble_band()

    # -- construction -----------------------------------------------------------
    def _build_assignments(self) -> List[BlockAssignment]:
        assignments = []
        for k in range(self.block_row_count):
            r = k // self._m_bar
            s = k % self._m_bar
            s_lower = (s + 1) % self._m_bar
            assignments.append(
                BlockAssignment(k=k, upper_source=(r, s), lower_source=(r, s_lower))
            )
        return assignments

    def _assemble_band(self) -> Tuple[BandMatrix, Dict[Tuple[int, int], Tuple[int, int]]]:
        w = self._w
        rows = self.band_rows
        cols = self.band_cols
        band = BandMatrix(rows, cols, lower=0, upper=w - 1)
        provenance: Dict[Tuple[int, int], Tuple[int, int]] = {}

        for assignment in self._assignments:
            k = assignment.k
            upper = self._grid.upper(*assignment.upper_source)
            lower = self._grid.lower(*assignment.lower_source)
            ur, us = assignment.upper_source
            lr, ls = assignment.lower_source
            base_row = k * w
            # Upper triangle on the diagonal block.
            for a in range(w):
                for b in range(a, w):
                    i, j = base_row + a, base_row + b
                    band.set(i, j, upper[a, b])
                    self._record_provenance(provenance, (i, j), (ur * w + a, us * w + b))
            # Strictly lower triangle on the super-diagonal block.  Its last
            # column is structurally zero and falls outside the band matrix
            # when k is the last block row, which loses no information.
            for a in range(1, w):
                for b in range(a):
                    i, j = base_row + a, base_row + w + b
                    if j >= cols:
                        raise TransformError(
                            f"band assembly placed an element outside the band matrix "
                            f"at ({i}, {j})"
                        )
                    band.set(i, j, lower[a, b])
                    self._record_provenance(provenance, (i, j), (lr * w + a, ls * w + b))
        return band, provenance

    @staticmethod
    def _record_provenance(
        provenance: Dict[Tuple[int, int], Tuple[int, int]],
        band_position: Tuple[int, int],
        origin: Tuple[int, int],
    ) -> None:
        if band_position in provenance:
            raise TransformError(
                f"band position {band_position} assigned twice "
                f"({provenance[band_position]} and {origin})"
            )
        provenance[band_position] = origin

    # -- geometry ---------------------------------------------------------------
    @property
    def w(self) -> int:
        return self._w

    @property
    def original_shape(self) -> Tuple[int, int]:
        return self._original_shape

    @property
    def n_bar(self) -> int:
        """Number of block rows of the original matrix (``ceil(n / w)``)."""
        return self._n_bar

    @property
    def m_bar(self) -> int:
        """Number of block columns of the original matrix (``ceil(m / w)``)."""
        return self._m_bar

    @property
    def block_row_count(self) -> int:
        """Number of band block rows, ``n_bar * m_bar``."""
        return self._n_bar * self._m_bar

    @property
    def band_rows(self) -> int:
        return self.block_row_count * self._w

    @property
    def band_cols(self) -> int:
        return self.band_rows + self._w - 1

    @property
    def assignments(self) -> Sequence[BlockAssignment]:
        return tuple(self._assignments)

    @property
    def band(self) -> BandMatrix:
        """The transformed band matrix ``A~`` (bandwidth ``w``, upper band)."""
        return self._band.copy()

    @property
    def grid(self) -> BlockGrid:
        return self._grid

    def provenance(self) -> Dict[Tuple[int, int], Tuple[int, int]]:
        """Map from band position to (padded) original position."""
        return dict(self._provenance)

    # -- transformed vectors ------------------------------------------------------
    def transform_x(self, x: np.ndarray) -> np.ndarray:
        """Build the transformed vector ``x~`` of length ``band_cols``.

        Block ``k`` of ``x~`` is block ``k mod m_bar`` of the (padded)
        original vector; the final, ``w-1`` element, block repeats the
        first ``w-1`` elements of block 0 — exactly the amount the strictly
        lower triangle of the last band block row needs.
        """
        x = as_vector(x, "x")
        if x.shape[0] != self._original_shape[1]:
            raise TransformError(
                f"x has length {x.shape[0]}, expected {self._original_shape[1]}"
            )
        padded = pad_vector(x, self._w)
        w = self._w
        out = np.zeros(self.band_cols, dtype=float)
        for k in range(self.block_row_count):
            source = (k % self._m_bar) * w
            out[k * w : (k + 1) * w] = padded[source : source + w]
        out[self.block_row_count * w :] = padded[: w - 1]
        return out

    def x_tags(self) -> List[tuple]:
        """Stream tags naming every element of ``x~`` after its original index."""
        w = self._w
        tags: List[tuple] = []
        for k in range(self.block_row_count):
            base = (k % self._m_bar) * w
            tags.extend(("x", base + offset) for offset in range(w))
        tags.extend(("x", offset) for offset in range(w - 1))
        return tags

    def build_y_sources(self, b: Optional[np.ndarray]) -> List[object]:
        """Initial-value plan for every band row (the ``b~`` rules of Section 2).

        Band block row ``k`` starts from the original ``b`` block when it is
        the first band block row of its original block row
        (``k mod m_bar == 0``); every other band block row starts from the
        partial result fed back from the previous band block row, which the
        array provides through the ``w``-register feedback chain.
        """
        n = self._original_shape[0]
        if b is None:
            b_vec = np.zeros(n, dtype=float)
        else:
            b_vec = as_vector(b, "b")
            if b_vec.shape[0] != n:
                raise TransformError(f"b has length {b_vec.shape[0]}, expected {n}")
        padded = pad_vector(b_vec, self._w)
        w = self._w
        sources: List[object] = []
        for k in range(self.block_row_count):
            r = k // self._m_bar
            pass_index = k % self._m_bar
            for offset in range(w):
                element = r * w + offset
                if pass_index == 0:
                    sources.append(
                        ExternalSource(value=float(padded[element]), tag=("b", element))
                    )
                else:
                    sources.append(FeedbackSource(tag=("y", element, pass_index - 1)))
        return sources

    def output_tags(self) -> List[tuple]:
        """Tags of the band row outputs: partial passes and final results."""
        w = self._w
        tags: List[tuple] = []
        for k in range(self.block_row_count):
            r = k // self._m_bar
            pass_index = k % self._m_bar
            final = pass_index == self._m_bar - 1
            for offset in range(w):
                element = r * w + offset
                if final:
                    tags.append(("y", element))
                else:
                    tags.append(("y", element, pass_index))
        return tags

    def final_band_rows(self) -> List[int]:
        """Band row indices whose output is a final element of ``y``."""
        rows = []
        w = self._w
        for k in range(self.block_row_count):
            if k % self._m_bar == self._m_bar - 1:
                rows.extend(range(k * w, (k + 1) * w))
        return rows

    def recover_y(self, band_outputs: np.ndarray) -> np.ndarray:
        """Extract ``y`` from the per-band-row outputs of the array."""
        band_outputs = np.asarray(band_outputs, dtype=float)
        if band_outputs.shape != (self.band_rows,):
            raise TransformError(
                f"expected {self.band_rows} band outputs, got {band_outputs.shape}"
            )
        w = self._w
        padded = np.zeros(self._n_bar * w, dtype=float)
        for k in range(self.block_row_count):
            if k % self._m_bar != self._m_bar - 1:
                continue
            r = k // self._m_bar
            padded[r * w : (r + 1) * w] = band_outputs[k * w : (k + 1) * w]
        return padded[: self._original_shape[0]].copy()

    # -- audits --------------------------------------------------------------------
    def verify_conditions(self) -> None:
        """Check the three structural DBT conditions of Section 2.

        Raises :class:`~repro.errors.TransformError` when violated; the
        by-rows construction always satisfies them, so this is primarily a
        guard for subclasses or hand-built assignments.
        """
        upper_seen: Dict[Tuple[int, int], int] = {}
        lower_seen: Dict[Tuple[int, int], int] = {}
        for assignment in self._assignments:
            if assignment.upper_source in upper_seen:
                raise TransformError(
                    f"upper triangle {assignment.upper_source} used twice "
                    f"(band rows {upper_seen[assignment.upper_source]} and {assignment.k})"
                )
            if assignment.lower_source in lower_seen:
                raise TransformError(
                    f"lower triangle {assignment.lower_source} used twice "
                    f"(band rows {lower_seen[assignment.lower_source]} and {assignment.k})"
                )
            upper_seen[assignment.upper_source] = assignment.k
            lower_seen[assignment.lower_source] = assignment.k

        expected = {
            (i, j) for i in range(self._n_bar) for j in range(self._m_bar)
        }
        if set(upper_seen) != expected or set(lower_seen) != expected:
            raise TransformError("not every original triangle appears exactly once")

        for assignment in self._assignments:
            # Condition 1: U_k and L_k from the same original block row.
            if assignment.upper_source[0] != assignment.lower_source[0]:
                raise TransformError(
                    f"band block row {assignment.k} mixes original block rows "
                    f"{assignment.upper_source[0]} and {assignment.lower_source[0]}"
                )
        for assignment in self._assignments[:-1]:
            # Condition 2: L_k and U_{k+1} from the same original block column.
            next_upper = self._assignments[assignment.k + 1].upper_source
            if assignment.lower_source[1] != next_upper[1]:
                raise TransformError(
                    f"band block rows {assignment.k} and {assignment.k + 1} mix "
                    f"original block columns {assignment.lower_source[1]} and "
                    f"{next_upper[1]}"
                )

    def band_fill_report(self) -> Tuple[int, int]:
        """``(filled, total)`` in-band positions of the transformed matrix.

        The paper's maximum-efficiency argument rests on the band being
        completely filled with elements of the original (padded) matrix;
        for DBT-by-rows ``filled == total`` always holds.
        """
        total = self._band.band_positions()
        return len(self._provenance), total

    def is_band_full(self) -> bool:
        filled, total = self.band_fill_report()
        return filled == total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DBTByRowsTransform(shape={self._original_shape}, w={self._w}, "
            f"blocks={self._n_bar}x{self._m_bar})"
        )


def dbt_by_rows(matrix: np.ndarray, w: int) -> DBTByRowsTransform:
    """Convenience constructor for :class:`DBTByRowsTransform`."""
    return DBTByRowsTransform(matrix, w)
