"""Problem partitioning and overlapping for the linear array.

The contraflow schedule of the linear array only uses every other cycle,
so its utilization saturates at 1/2.  Section 2 of the paper lists three
ways to recover the idle half: grouping pairs of PEs, overlapping the
execution of several problems, or *partitioning the transformed problem
into two disjoint sub-problems* and interleaving them (the dotted line in
Fig. 2.b).  This module implements the partitioning rule and the helpers
the overlapped pipeline uses.

A valid partition must cut the transformed problem at a multiple of
``m_bar`` band block rows, because feedback only ever flows between band
block rows belonging to the same original block row; cutting anywhere else
would sever a feedback chain.  Cutting at original block-row boundaries is
equivalent to splitting the original matrix ``A`` (and ``b``) into a top
and a bottom group of block rows, which is how
:class:`~repro.core.matvec.SizeIndependentMatVec` realizes it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ScheduleError
from ..matrices.padding import block_count, validate_array_size

__all__ = ["OverlapPartition", "plan_overlap_partition"]


@dataclass(frozen=True)
class OverlapPartition:
    """A split of the original problem into two independently transformable halves.

    ``first_rows`` / ``second_rows`` are the number of *original* matrix
    rows assigned to each half.  ``first_block_rows`` / ``second_block_rows``
    are the corresponding numbers of original block rows; the transformed
    halves occupy ``first_block_rows * m_bar`` and
    ``second_block_rows * m_bar`` band block rows respectively.
    """

    w: int
    n: int
    m: int
    first_block_rows: int
    second_block_rows: int

    @property
    def n_bar(self) -> int:
        return self.first_block_rows + self.second_block_rows

    @property
    def m_bar(self) -> int:
        return block_count(self.m, self.w)

    @property
    def first_rows(self) -> int:
        return min(self.n, self.first_block_rows * self.w)

    @property
    def second_rows(self) -> int:
        return self.n - self.first_rows

    @property
    def cut_band_block_row(self) -> int:
        """Band block row index at which the transformed problem is cut."""
        return self.first_block_rows * self.m_bar

    def is_balanced(self) -> bool:
        return abs(self.first_block_rows - self.second_block_rows) <= 1


def plan_overlap_partition(n: int, m: int, w: int) -> OverlapPartition:
    """Split a problem with ``n_bar >= 2`` block rows into two halves.

    The halves are made as equal as possible (``ceil(n_bar / 2)`` and
    ``floor(n_bar / 2)`` original block rows); the larger half determines
    the overlapped execution time.  Problems with a single block row cannot
    be partitioned this way and raise
    :class:`~repro.errors.ScheduleError` — overlapping them requires a
    second, independent problem instead.
    """
    w = validate_array_size(w)
    n_bar = block_count(n, w)
    if n_bar < 2:
        raise ScheduleError(
            "overlapping by partitioning needs at least two original block rows; "
            f"n={n} with w={w} has only {n_bar}"
        )
    first = (n_bar + 1) // 2
    second = n_bar - first
    return OverlapPartition(
        w=w,
        n=n,
        m=m,
        first_block_rows=first,
        second_block_rows=second,
    )
