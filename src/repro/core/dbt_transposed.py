"""DBT-transposed-by-rows: the lower-band member of the DBT family.

Section 2 of the paper defines the second transformation used by the
matrix-matrix pipeline:

    ``DBT-transposed-by-rows(A) = (DBT-by-rows(A^T))^T``

Applying DBT-by-rows to the transpose of a matrix and transposing the
result produces a *lower*-band matrix of bandwidth ``w`` whose diagonal
blocks are the lower triangles (with the main diagonal) of the original
``w x w`` blocks and whose sub-diagonal blocks are the strictly upper
triangles.  It is the transformation applied to every column strip of the
``B`` operand when solving ``C = A * B`` on the hexagonal array
(Section 3).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..matrices.banded import BandMatrix
from ..matrices.dense import as_matrix
from ..matrices.padding import validate_array_size
from .dbt import BlockAssignment, DBTByRowsTransform

__all__ = ["DBTTransposedByRowsTransform", "dbt_transposed_by_rows"]


class DBTTransposedByRowsTransform:
    """DBT-transposed-by-rows of one dense matrix.

    The object wraps a :class:`~repro.core.dbt.DBTByRowsTransform` of the
    transposed input and re-expresses its band, provenance and block
    assignments in the orientation of the original matrix.
    """

    def __init__(self, matrix: np.ndarray, w: int):
        self._w = validate_array_size(w)
        matrix = as_matrix(matrix, "matrix")
        self._original_shape = matrix.shape
        self._inner = DBTByRowsTransform(matrix.T, self._w)
        self._band = self._inner.band.transpose()
        self._provenance = {
            (j, i): (orig_j, orig_i)
            for (i, j), (orig_i, orig_j) in self._inner.provenance().items()
        }

    @property
    def w(self) -> int:
        return self._w

    @property
    def original_shape(self) -> Tuple[int, int]:
        return self._original_shape

    @property
    def n_bar(self) -> int:
        """Block rows of the original matrix (the inner transform's columns)."""
        return self._inner.m_bar

    @property
    def m_bar(self) -> int:
        """Block columns of the original matrix (the inner transform's rows)."""
        return self._inner.n_bar

    @property
    def block_col_count(self) -> int:
        """Number of band block columns, ``n_bar * m_bar`` of the inner transform."""
        return self._inner.block_row_count

    @property
    def band_rows(self) -> int:
        return self._inner.band_cols

    @property
    def band_cols(self) -> int:
        return self._inner.band_rows

    @property
    def band(self) -> BandMatrix:
        """The transformed band matrix: lower band of bandwidth ``w``."""
        return self._band.copy()

    @property
    def assignments(self) -> List[BlockAssignment]:
        """Assignments of the inner (transposed) by-rows transform.

        The sources are block indices of the *transposed* matrix; callers
        interested in the original orientation should swap the index pairs.
        """
        return list(self._inner.assignments)

    def provenance(self) -> Dict[Tuple[int, int], Tuple[int, int]]:
        """Map from band position to (padded) original position."""
        return dict(self._provenance)

    def band_fill_report(self) -> Tuple[int, int]:
        """``(filled, total)`` in-band positions; the band is always full."""
        return len(self._provenance), self._band.band_positions()

    def is_band_full(self) -> bool:
        filled, total = self.band_fill_report()
        return filled == total

    def verify_conditions(self) -> None:
        """The DBT structural conditions, checked on the inner transform."""
        self._inner.verify_conditions()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DBTTransposedByRowsTransform(shape={self._original_shape}, w={self._w})"
        )


def dbt_transposed_by_rows(matrix: np.ndarray, w: int) -> DBTTransposedByRowsTransform:
    """Convenience constructor for :class:`DBTTransposedByRowsTransform`."""
    return DBTTransposedByRowsTransform(matrix, w)
