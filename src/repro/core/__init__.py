"""The paper's contribution: DBT transformations and the end-to-end pipelines."""

from .analytic import (
    MatMulModel,
    MatVecModel,
    matmul_irregular_delay_first_row,
    matmul_irregular_delay_wraparound,
    matmul_irregular_feedback_registers,
    matmul_regular_feedback_registers,
    matmul_steps,
    matmul_utilization,
    matmul_utilization_limit,
    matvec_feedback_delay,
    matvec_feedback_registers,
    matvec_steps,
    matvec_utilization,
    matvec_utilization_limit,
)
from .dbt import BlockAssignment, DBTByRowsTransform, dbt_by_rows
from .dbt_transposed import DBTTransposedByRowsTransform, dbt_transposed_by_rows
from .matmul import MatMulSolution, SizeIndependentMatMul
from .matvec import MatVecSolution, SizeIndependentMatVec
from .operands import MatMulOperands, OperandBand
from .recovery import (
    AccumulationChain,
    FeedbackClassification,
    PartialResultMap,
    classify_feedback_delays,
)
from .schedule import OverlapPartition, plan_overlap_partition

__all__ = [
    "AccumulationChain",
    "BlockAssignment",
    "DBTByRowsTransform",
    "DBTTransposedByRowsTransform",
    "FeedbackClassification",
    "MatMulModel",
    "MatMulOperands",
    "MatMulSolution",
    "MatVecModel",
    "MatVecSolution",
    "OperandBand",
    "OverlapPartition",
    "PartialResultMap",
    "SizeIndependentMatMul",
    "SizeIndependentMatVec",
    "classify_feedback_delays",
    "dbt_by_rows",
    "dbt_transposed_by_rows",
    "matmul_irregular_delay_first_row",
    "matmul_irregular_delay_wraparound",
    "matmul_irregular_feedback_registers",
    "matmul_regular_feedback_registers",
    "matmul_steps",
    "matmul_utilization",
    "matmul_utilization_limit",
    "matvec_feedback_delay",
    "matvec_feedback_registers",
    "matvec_steps",
    "matvec_utilization",
    "matvec_utilization_limit",
    "plan_overlap_partition",
]
