"""End-to-end size-independent matrix-matrix multiplication (Section 3).

:class:`SizeIndependentMatMul` solves ``C = A * B + E`` for arbitrary
dense operands on the ``w x w`` hexagonal array:

1. build the transformed operand bands ``A~`` and ``B~``
   (:class:`~repro.core.operands.MatMulOperands`),
2. derive the partial-result placement and the spiral feedback plan
   (:class:`~repro.core.recovery.PartialResultMap`),
3. stream the bands through the cycle-accurate hexagonal simulator with
   the addend and all fed-back partial results entering through the ``C``
   input ports, so no arithmetic happens outside the array, and
4. read the finished ``C`` out of the output band and report measured
   time, utilization and feedback delays next to the paper's closed forms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import ShapeError
from ..matrices.dense import as_matrix
from ..matrices.padding import validate_array_size
from ..systolic.hex_array import HexRunResult, HexagonalArray
from .analytic import MatMulModel
from .operands import MatMulOperands
from .recovery import FeedbackClassification, PartialResultMap, classify_feedback_delays

__all__ = ["MatMulSolution", "SizeIndependentMatMul"]


@dataclass
class MatMulSolution:
    """Result of one size-independent matrix-matrix execution."""

    c: np.ndarray
    w: int
    operands: MatMulOperands
    placement: PartialResultMap
    run: HexRunResult
    model: MatMulModel

    @property
    def measured_steps(self) -> int:
        """Steps spanned by the C stream, the paper's ``T`` convention."""
        return self.run.c_stream_cycles

    @property
    def predicted_steps(self) -> int:
        return self.model.steps

    @property
    def measured_utilization(self) -> float:
        return self.run.report.utilization

    @property
    def predicted_utilization(self) -> float:
        return self.model.utilization

    @property
    def feedback_delays(self) -> Dict[Tuple[int, int], int]:
        return dict(self.run.feedback_delays)

    def feedback_classification(self) -> FeedbackClassification:
        """Measured feedback delays split into regular and irregular ones."""
        return classify_feedback_delays(
            self.run.feedback_delays, self.placement.feedback_targets(), self.w
        )

    def summary(self) -> str:
        """Short paper-vs-measured report used by the examples."""
        classification = self.feedback_classification()
        lines = [
            f"size-independent mat-mul on a {self.w}x{self.w} hexagonal array",
            f"  steps:       measured {self.measured_steps}, paper formula {self.predicted_steps}",
            f"  utilization: measured {self.measured_utilization:.4f}, "
            f"paper formula {self.predicted_utilization:.4f}",
            f"  feedback:    {classification.regular_count} regular values "
            f"(delay <= {classification.regular_threshold}), "
            f"{classification.irregular_count} irregular values "
            f"(max delay {classification.max_irregular_delay})",
        ]
        return "\n".join(lines)


class SizeIndependentMatMul:
    """Solve ``C = A B + E`` for arbitrary dense operands on a ``w x w`` array."""

    def __init__(self, w: int, verify_structure: bool = False):
        self._w = validate_array_size(w)
        self._verify_structure = verify_structure

    @property
    def w(self) -> int:
        return self._w

    def solve(
        self,
        a: np.ndarray,
        b: np.ndarray,
        e: Optional[np.ndarray] = None,
    ) -> MatMulSolution:
        """Transform, simulate and recover ``C = A B + E``."""
        a = as_matrix(a, "A")
        b = as_matrix(b, "B")
        if a.shape[1] != b.shape[0]:
            raise ShapeError(f"cannot multiply shapes {a.shape} and {b.shape}")
        if e is not None:
            e = as_matrix(e, "E")
            if e.shape != (a.shape[0], b.shape[1]):
                raise ShapeError(
                    f"E must have shape {(a.shape[0], b.shape[1])}, got {e.shape}"
                )

        operands = MatMulOperands(a, b, self._w)
        if self._verify_structure:
            operands.verify_product_coverage()
            if not operands.inner_origins_consistent():
                raise ShapeError("operand bands pair inconsistent inner indices")

        array = HexagonalArray(self._w, self._w)
        placement = PartialResultMap(operands, array)
        plan = placement.build_token_plan(e)
        useful = a.shape[0] * a.shape[1] * b.shape[1]
        run = array.run(
            operands.a_operand.band,
            operands.b_operand.band,
            c_plan=plan,
            useful_operations=useful,
        )
        c = placement.recover_c(run.c_band)
        model = MatMulModel(n=a.shape[0], p=a.shape[1], m=b.shape[1], w=self._w)
        return MatMulSolution(
            c=c,
            w=self._w,
            operands=operands,
            placement=placement,
            run=run,
            model=model,
        )
