"""End-to-end size-independent matrix-matrix multiplication (Section 3).

:class:`MatMulSolution` is the result type shared by the plan/execute
engines in :mod:`repro.core.plans` and the unified :mod:`repro.api`
façade.  The pipeline itself lives in
:class:`~repro.core.plans.MatMulPlan`:

1. build the transformed operand bands ``A~`` and ``B~`` (structure once
   per shape, values streamed per solve),
2. derive the partial-result placement and the spiral feedback plan,
3. stream the bands through the cycle-accurate hexagonal simulator with
   the addend and all fed-back partial results entering through the ``C``
   input ports, so no arithmetic happens outside the array, and
4. read the finished ``C`` out of the output band and report measured
   time, utilization and feedback delays next to the paper's closed forms.

:class:`SizeIndependentMatMul` is kept as a thin deprecation shim over
:class:`~repro.core.plans.CachedMatMul`; new code should use
:class:`repro.api.Solver`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..matrices.padding import validate_array_size
from ..systolic.hex_array import HexRunResult
from .analytic import MatMulModel
from .operands import MatMulOperands
from .recovery import FeedbackClassification, PartialResultMap, classify_feedback_delays

__all__ = ["MatMulSolution", "SizeIndependentMatMul"]


@dataclass
class MatMulSolution:
    """Result of one size-independent matrix-matrix execution."""

    c: np.ndarray
    w: int
    operands: MatMulOperands
    placement: PartialResultMap
    run: HexRunResult
    model: MatMulModel

    @property
    def measured_steps(self) -> int:
        """Steps spanned by the C stream, the paper's ``T`` convention."""
        return self.run.c_stream_cycles

    @property
    def predicted_steps(self) -> int:
        return self.model.steps

    @property
    def measured_utilization(self) -> float:
        return self.run.report.utilization

    @property
    def predicted_utilization(self) -> float:
        return self.model.utilization

    @property
    def feedback_delays(self) -> Dict[Tuple[int, int], int]:
        return dict(self.run.feedback_delays)

    def feedback_classification(self) -> FeedbackClassification:
        """Measured feedback delays split into regular and irregular ones."""
        return classify_feedback_delays(
            self.run.feedback_delays, self.placement.feedback_targets(), self.w
        )

    def summary(self) -> str:
        """Short paper-vs-measured report used by the examples."""
        classification = self.feedback_classification()
        lines = [
            f"size-independent mat-mul on a {self.w}x{self.w} hexagonal array",
            f"  steps:       measured {self.measured_steps}, paper formula {self.predicted_steps}",
            f"  utilization: measured {self.measured_utilization:.4f}, "
            f"paper formula {self.predicted_utilization:.4f}",
            f"  feedback:    {classification.regular_count} regular values "
            f"(delay <= {classification.regular_threshold}), "
            f"{classification.irregular_count} irregular values "
            f"(max delay {classification.max_irregular_delay})",
        ]
        return "\n".join(lines)


class SizeIndependentMatMul:
    """Solve ``C = A B + E`` for arbitrary dense operands on a ``w x w`` array.

    .. deprecated::
        Thin shim over the shape-keyed execution plans; prefer
        ``repro.api.Solver(w).solve("matmul", a, b, e)``.
    """

    def __init__(self, w: int, verify_structure: bool = False):
        warnings.warn(
            "SizeIndependentMatMul is deprecated; use repro.api.Solver "
            "(plan/execute façade) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self._w = validate_array_size(w)
        self._verify_structure = verify_structure
        from .plans import CachedMatMul  # deferred: plans imports this module

        self._engine = CachedMatMul(self._w, verify_structure=verify_structure)

    @property
    def w(self) -> int:
        return self._w

    def solve(
        self,
        a: np.ndarray,
        b: np.ndarray,
        e: Optional[np.ndarray] = None,
    ) -> MatMulSolution:
        """Transform, simulate and recover ``C = A B + E``."""
        return self._engine.solve(a, b, e)
