"""The common result protocol of the unified solver façade.

Every problem kind routed through :class:`~repro.api.solver.Solver`
returns a :class:`Solution`: the recovered values, the measured and (where
the paper gives a closed form) predicted step counts and utilizations, a
:class:`FeedbackStats` digest of the partial-result feedback traffic,
kind-specific extras in ``stats``, and the underlying kind-specific result
object in ``raw`` for callers that need full detail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

__all__ = ["FeedbackStats", "Solution"]


@dataclass(frozen=True)
class FeedbackStats:
    """Digest of the partial-result feedback traffic of one execution.

    ``count`` is the number of values that re-entered the array through a
    feedback path.  ``min_delay``/``max_delay`` bound the observed delays
    (``None`` when nothing was fed back); for the hexagonal array,
    ``regular``/``irregular`` split the delays per Section 3 of the paper.
    """

    count: int = 0
    min_delay: Optional[int] = None
    max_delay: Optional[int] = None
    regular: Optional[int] = None
    irregular: Optional[int] = None

    @classmethod
    def from_delays(cls, delays) -> "FeedbackStats":
        delays = list(delays)
        if not delays:
            return cls()
        return cls(count=len(delays), min_delay=min(delays), max_delay=max(delays))

    def describe(self) -> str:
        if self.count == 0:
            return "no values fed back"
        text = f"{self.count} values fed back, delays {self.min_delay}..{self.max_delay}"
        if self.regular is not None and self.irregular is not None:
            text += f" ({self.regular} regular, {self.irregular} irregular)"
        return text


@dataclass
class Solution:
    """Uniform result of one :class:`~repro.api.solver.Solver` execution."""

    kind: str
    w: int
    values: Any
    measured_steps: int
    predicted_steps: Optional[int] = None
    measured_utilization: Optional[float] = None
    predicted_utilization: Optional[float] = None
    feedback: FeedbackStats = field(default_factory=FeedbackStats)
    stats: Dict[str, Any] = field(default_factory=dict)
    raw: Any = None
    plan_key: Optional[Tuple] = None
    from_cache: bool = False

    def summary(self) -> str:
        """Uniform short report across all problem kinds."""
        header = f"repro.api {self.kind} on a w={self.w} systolic array"
        if self.from_cache:
            header += " [cached plan]"
        lines = [header]
        if self.predicted_steps is not None:
            lines.append(
                f"  steps:       measured {self.measured_steps}, "
                f"paper formula {self.predicted_steps}"
            )
        else:
            lines.append(f"  steps:       measured {self.measured_steps}")
        if self.measured_utilization is not None:
            if self.predicted_utilization is not None:
                lines.append(
                    f"  utilization: measured {self.measured_utilization:.4f}, "
                    f"paper formula {self.predicted_utilization:.4f}"
                )
            else:
                lines.append(
                    f"  utilization: measured {self.measured_utilization:.4f}"
                )
        lines.append(f"  feedback:    {self.feedback.describe()}")
        for name in sorted(self.stats):
            value = self.stats[name]
            if isinstance(value, float):
                value = f"{value:.4f}"
            lines.append(f"  {name + ':':<13}{value}")
        return "\n".join(lines)
