"""Execution plans and the LRU plan cache.

An :class:`ExecutionPlan` is the immutable product of the *compile* half
of the compile-then-run split: for the array kinds (matvec, matmul) it
wraps a shape-keyed skeleton from :mod:`repro.core.plans` (band geometry,
refill gathers, schedules, placement, token-plan skeleton); for the
blocked pipelines (lu, triangular, gauss_seidel, sparse) it wraps a fully
configured pipeline whose inner per-shape engines warm up on first use.

Plans are keyed by ``(kind, shapes, w, options)`` and held in a
:class:`PlanCache` — an LRU with hit/miss/eviction accounting — so that
repeated same-shape solves, the hot path of a serving workload, skip all
transform construction and only stream operand values.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Optional, Tuple

from ..instrumentation import CacheStats
from .config import ArraySpec, ExecutionOptions

__all__ = ["ExecutionPlan", "CacheStats", "PlanCache", "PlanKey", "make_plan_key"]

#: A plan cache key: (kind, shapes, w, options).
PlanKey = Tuple[str, Tuple, int, ExecutionOptions]


def make_plan_key(
    kind: str, shapes: Tuple, w: int, options: ExecutionOptions
) -> PlanKey:
    """The one assembly point for plan cache / service routing keys.

    Everything that derives a key — ``Solver`` (string and typed paths),
    ``Problem.plan_key``, ``Graph.plan_keys`` — goes through here, so the
    field set can never silently diverge between the key a request routes
    by and the key its home shard caches under.
    """
    return (kind, shapes, int(w), options)


class ExecutionPlan:
    """One reusable, immutable compiled problem.

    Obtained from :meth:`repro.api.solver.Solver.plan` (or implicitly by
    ``solve``); execute it any number of times with same-shape operands.
    """

    __slots__ = ("_kind", "_shapes", "_spec", "_options", "_executor", "_handler")

    def __init__(
        self,
        kind: str,
        shapes: Tuple,
        spec: ArraySpec,
        options: ExecutionOptions,
        executor: Any,
        handler: Any,
    ):
        object.__setattr__(self, "_kind", kind)
        object.__setattr__(self, "_shapes", shapes)
        object.__setattr__(self, "_spec", spec)
        object.__setattr__(self, "_options", options)
        object.__setattr__(self, "_executor", executor)
        object.__setattr__(self, "_handler", handler)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("ExecutionPlan is immutable")

    @property
    def kind(self) -> str:
        return self._kind

    @property
    def shapes(self) -> Tuple:
        """The normalized problem shapes the plan was compiled for."""
        return self._shapes

    @property
    def spec(self) -> ArraySpec:
        return self._spec

    @property
    def options(self) -> ExecutionOptions:
        return self._options

    @property
    def executor(self) -> Any:
        """The kind-specific compiled engine (core plan or pipeline)."""
        return self._executor

    @property
    def handler(self) -> Any:
        """The :class:`~repro.api.registry.ProblemHandler` behind the plan."""
        return self._handler

    @property
    def supports_pairing(self) -> bool:
        """Whether two independent executions can share one array run.

        True only for the plain matvec plan: ``solve_batch`` and the graph
        compiler route pairs of same-plan stages through
        :meth:`execute_pair` so the second problem rides the idle
        contraflow cycles of the first.
        """
        return bool(getattr(self._executor, "supports_pairing", False))

    @property
    def key(self) -> PlanKey:
        return make_plan_key(self._kind, self._shapes, self._spec.w, self._options)

    def _span(self, name: str):
        """An ambient child span for one plan execution (or the no-op).

        Costs one thread-local read when nothing is tracing — the same
        guarded path the rest of the backend uses.
        """
        from ..obs.tracing import NULL_SPAN, active_span

        parent = active_span()
        if parent is None:
            return NULL_SPAN
        return parent.child(name, category="plan", kind=self._kind)

    def execute(self, *operands, **kwargs):
        """Stream one operand set through the plan; returns a Solution."""
        from ..instrumentation import counters

        counters.bump("plan_executions")
        with self._span("plan.execute"):
            return self._handler.execute(self, *operands, **kwargs)

    def execute_problem(self, problem):
        """Stream one *typed* problem through the plan; returns a Solution.

        The typed-problem counterpart of :meth:`execute`: the handler
        consumes the problem object directly instead of re-parsing
        positional operands and kwargs.
        """
        from ..instrumentation import counters

        counters.bump("plan_executions")
        with self._span("plan.execute"):
            return self._handler.execute_problem(self, problem)

    def execute_pair(self, first: Tuple, second: Tuple):
        """Run two independent same-plan problems on one shared array run.

        Only valid when :attr:`supports_pairing` is true.  Returns the two
        wrapped :class:`~repro.api.solution.Solution` objects, marked
        ``stats["paired"]`` and with the paper's single-problem step and
        utilization predictions dropped (the closed forms do not cover two
        interleaved requests sharing one run).
        """
        from ..instrumentation import counters

        counters.bump("plan_executions", 2)
        with self._span("plan.execute_pair"):
            legacy_a, legacy_b = self._executor.execute_pair(first, second)
        solutions = []
        for legacy in (legacy_a, legacy_b):
            solution = self._handler.wrap(self, legacy)
            solution.stats["paired"] = True
            solution.predicted_steps = None
            solution.predicted_utilization = None
            solutions.append(solution)
        return solutions[0], solutions[1]

    def describe(self) -> str:
        text = (
            f"ExecutionPlan(kind={self._kind!r}, shapes={self._shapes}, "
            f"w={self._spec.w}"
        )
        if self._options.dtype_mode != "float64":
            text += f", dtype_mode={self._options.dtype_mode!r}"
        return text + ")"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


class PlanCache:
    """LRU cache of :class:`ExecutionPlan` objects keyed by plan key.

    All operations are thread-safe: a single lock guards the LRU order and
    the hit/miss/eviction counters, so a :class:`~repro.api.solver.Solver`
    can be shared between threads (and the :mod:`repro.service` shard
    workers can trust their per-shard caches) without torn LRU state or
    lost accounting.  Plan *construction* is not serialized — two threads
    missing on the same key may both build the plan and the later ``put``
    wins — which trades a rare duplicate build for never holding the lock
    across a compile.
    """

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError(f"plan cache maxsize must be >= 1, got {maxsize}")
        self._maxsize = int(maxsize)
        self._plans: "OrderedDict[PlanKey, ExecutionPlan]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._lock = threading.Lock()

    def get(self, key: PlanKey) -> Optional[ExecutionPlan]:
        """The cached plan for ``key`` (marks it most recently used)."""
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self._misses += 1
                return None
            self._plans.move_to_end(key)
            self._hits += 1
            return plan

    def put(self, key: PlanKey, plan: ExecutionPlan) -> None:
        with self._lock:
            if key in self._plans:
                self._plans.move_to_end(key)
                self._plans[key] = plan
                return
            self._plans[key] = plan
            while len(self._plans) > self._maxsize:
                self._plans.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every cached plan.

        Lifetime counters (hits, misses, evictions) deliberately survive:
        a cleared cache starts empty but its accounting history — and the
        division-safe ``hit_rate`` derived from it — remains meaningful.
        """
        with self._lock:
            self._plans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, key: PlanKey) -> bool:
        with self._lock:
            return key in self._plans

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._plans),
                maxsize=self._maxsize,
            )
