"""Problem handlers: every workload of the package behind one registry.

The six primary kinds — ``matvec``, ``matmul``, ``lu``, ``triangular``,
``gauss_seidel``, ``sparse`` — the five plan-cached iterative kinds —
``jacobi``, ``sor``, ``cg``, ``refine``, ``power`` — plus the comparison
baselines the paper cites (``prt``, ``naive_matvec``, ``naive_matmul``,
``block_partitioned``) are each wrapped into a
:class:`~repro.api.registry.ProblemHandler` and registered at import time.  Handlers normalize shapes for the plan-cache
key, compile the kind's executor, and adapt the kind-specific result into
the common :class:`~repro.api.solution.Solution` protocol.

Since the typed-problem redesign the execution entry is
``execute_problem`` (inherited from the registry base): the typed problem
object supplies its operand tuple and execution arguments directly, so
handlers no longer re-parse ``*operands``/``**kwargs`` on the canonical
path — the positional ``execute`` remains as the low-level primitive the
legacy string shim and ``solve_batch`` feed.  Primary kinds link to their
typed classes through :func:`repro.graph.problem_types` (see the
``problem_class`` property on every handler); the baselines are
deliberately string-only.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..baselines.block_partition import BlockPartitionedMatVec
from ..baselines.naive_band import NaiveBlockMatMul, NaiveBlockMatVec
from ..baselines.prt import PRTMatVec
from ..core.plans import MatMulPlan, MatVecPlan, OverlappedMatVecPlan
from ..errors import ShapeError
from ..extensions.lu import SystolicLU
from ..extensions.sparse import BlockSparseMatVec
from ..extensions.triangular import SystolicTriangularSolver
from ..iterative import (
    ConjugateGradientSolver,
    ConvergenceCriteria,
    IterativeRefinementSolver,
    IterativeResult,
    JacobiSolver,
    PowerIterationSolver,
    SORSolver,
)
from ..matrices.dense import as_matrix
from .config import ArraySpec, ExecutionOptions
from .registry import ProblemHandler, register
from .solution import FeedbackStats, Solution

__all__ = ["PRIMARY_KINDS", "BASELINE_KINDS", "ITERATIVE_KINDS"]

PRIMARY_KINDS = ("matvec", "matmul", "lu", "triangular", "gauss_seidel", "sparse")
BASELINE_KINDS = ("prt", "naive_matvec", "naive_matmul", "block_partitioned")
ITERATIVE_KINDS = ("jacobi", "sor", "cg", "refine", "power")


def _matrix_shape(value, name: str) -> Tuple[int, int]:
    return tuple(int(d) for d in as_matrix(value, name).shape)


def _square_side(shape, kind: str) -> Tuple[int]:
    """Normalize ``shape=n`` or ``shape=(n, n)`` into ``(n,)``."""
    if shape is None:
        raise ShapeError(f"{kind} needs shape=n (or an operand matrix)")
    if isinstance(shape, (int, np.integer)):
        return (int(shape),)
    shape = tuple(int(d) for d in shape)
    if len(shape) == 1:
        return shape
    if len(shape) == 2 and shape[0] == shape[1]:
        return (shape[0],)
    raise ShapeError(f"{kind} needs a square problem, got shape {shape}")


def _pair_shape(shape, kind: str) -> Tuple[int, int]:
    """Normalize ``shape=(n, m)`` into a 2-tuple of ints."""
    if shape is None:
        raise ShapeError(f"{kind} needs shape=(n, m) (or an operand matrix)")
    shape = tuple(int(d) for d in shape)
    if len(shape) != 2:
        raise ShapeError(f"{kind} needs shape=(n, m), got {shape}")
    return shape


# --------------------------------------------------------------------------- #
# matvec
# --------------------------------------------------------------------------- #
class MatVecHandler(ProblemHandler):
    """``y = A x + b`` on the ``w``-cell linear contraflow array."""

    kind = "matvec"

    def shapes(self, *, operands=None, shape=None) -> Tuple[int, int]:
        if operands is not None:
            return _matrix_shape(operands[0], "matrix")
        return _pair_shape(shape, self.kind)

    def build(self, spec: ArraySpec, options: ExecutionOptions, shapes):
        n, m = shapes
        if options.overlapped:
            return OverlappedMatVecPlan(
                n, m, spec.w,
                record_trace=options.record_trace,
                backend=options.backend,
            )
        return MatVecPlan(
            n, m, spec.w,
            record_trace=options.record_trace,
            backend=options.backend,
        )

    def wrap(self, plan, legacy) -> Solution:
        """Adapt a :class:`~repro.core.matvec.MatVecSolution`."""
        # Unpaired delays are pure band geometry, so they are cached on
        # the plan after the first solve (getattr: plans persisted before
        # the cache slot existed deserialize without it).  Paired runs
        # shift the second problem's schedule into the idle cycles, so
        # their delays are computed per run, never cached.
        feedback = None
        if not legacy.overlapped:
            feedback = getattr(plan.executor, "feedback_stats", None)
        if feedback is None:
            feedback = FeedbackStats.from_delays(legacy.feedback_delays)
            if not legacy.overlapped and hasattr(plan.executor, "feedback_stats"):
                plan.executor.feedback_stats = feedback
        return Solution(
            kind=self.kind,
            w=plan.spec.w,
            values=legacy.y,
            measured_steps=legacy.measured_steps,
            predicted_steps=legacy.predicted_steps,
            measured_utilization=legacy.measured_utilization,
            predicted_utilization=legacy.predicted_utilization,
            feedback=feedback,
            stats={"overlapped": legacy.overlapped},
            raw=legacy,
            plan_key=plan.key,
        )

    def execute(self, plan, matrix, x, b=None) -> Solution:
        return self.wrap(plan, plan.executor.execute(matrix, x, b))


# --------------------------------------------------------------------------- #
# matmul
# --------------------------------------------------------------------------- #
class MatMulHandler(ProblemHandler):
    """``C = A B + E`` on the ``w x w`` hexagonal array."""

    kind = "matmul"

    def shapes(self, *, operands=None, shape=None) -> Tuple[int, int, int]:
        if operands is not None:
            a_shape = _matrix_shape(operands[0], "A")
            b_shape = _matrix_shape(operands[1], "B")
            if a_shape[1] != b_shape[0]:
                raise ShapeError(
                    f"cannot multiply shapes {a_shape} and {b_shape}"
                )
            return (a_shape[0], a_shape[1], b_shape[1])
        if shape is None:
            raise ShapeError("matmul needs shape=(n, p, m) or ((n, p), (p, m))")
        shape = tuple(shape)
        if len(shape) == 3:
            return tuple(int(d) for d in shape)
        if len(shape) == 2 and all(hasattr(s, "__len__") for s in shape):
            (n, p), (p2, m) = (tuple(map(int, s)) for s in shape)
            if p != p2:
                raise ShapeError(
                    f"cannot multiply shapes {(n, p)} and {(p2, m)}"
                )
            return (n, p, m)
        raise ShapeError(f"matmul needs shape=(n, p, m), got {shape}")

    def build(self, spec: ArraySpec, options: ExecutionOptions, shapes):
        n, p, m = shapes
        return MatMulPlan(
            n, p, m, spec.w,
            verify_structure=options.verify_structure,
            backend=options.backend,
        )

    def wrap(self, plan, legacy) -> Solution:
        classification = legacy.feedback_classification()
        delays = list(legacy.feedback_delays.values())
        return Solution(
            kind=self.kind,
            w=plan.spec.w,
            values=legacy.c,
            measured_steps=legacy.measured_steps,
            predicted_steps=legacy.predicted_steps,
            measured_utilization=legacy.measured_utilization,
            predicted_utilization=legacy.predicted_utilization,
            feedback=FeedbackStats(
                count=len(delays),
                min_delay=min(delays) if delays else None,
                max_delay=max(delays) if delays else None,
                regular=classification.regular_count,
                irregular=classification.irregular_count,
            ),
            raw=legacy,
            plan_key=plan.key,
        )

    def execute(self, plan, a, b, e=None) -> Solution:
        return self.wrap(plan, plan.executor.execute(a, b, e))


# --------------------------------------------------------------------------- #
# triangular solve
# --------------------------------------------------------------------------- #
class TriangularHandler(ProblemHandler):
    """``T x = b`` by blocks; products on the array, diagonal solves on host."""

    kind = "triangular"

    def shapes(self, *, operands=None, shape=None) -> Tuple[int]:
        if operands is not None:
            matrix_shape = _matrix_shape(operands[0], "matrix")
            if matrix_shape[0] != matrix_shape[1]:
                raise ShapeError(
                    f"triangular solve needs a square matrix, got {matrix_shape}"
                )
            return (matrix_shape[0],)
        return _square_side(shape, self.kind)

    def build(self, spec: ArraySpec, options: ExecutionOptions, shapes):
        return SystolicTriangularSolver(spec.w, backend=options.backend)

    def execute(self, plan, matrix, b, lower: bool = True) -> Solution:
        solver = plan.executor
        result = solver.solve_lower(matrix, b) if lower else solver.solve_upper(matrix, b)
        return Solution(
            kind=self.kind,
            w=plan.spec.w,
            values=result.x,
            measured_steps=result.array_steps,
            stats={
                "array_share": result.array_share,
                "host_operations": result.host_operations,
                "block_solves": result.block_solves,
                "matvec_calls": result.matvec_calls,
                "residual_norm": result.residual_norm,
                "lower": lower,
            },
            raw=result,
            plan_key=plan.key,
        )


# --------------------------------------------------------------------------- #
# LU factorization
# --------------------------------------------------------------------------- #
class LUHandler(ProblemHandler):
    """Blocked LU ``A = L U``; trailing updates on the hexagonal array."""

    kind = "lu"

    def shapes(self, *, operands=None, shape=None) -> Tuple[int]:
        if operands is not None:
            matrix_shape = _matrix_shape(operands[0], "matrix")
            if matrix_shape[0] != matrix_shape[1]:
                raise ShapeError(f"LU needs a square matrix, got {matrix_shape}")
            return (matrix_shape[0],)
        return _square_side(shape, self.kind)

    def build(self, spec: ArraySpec, options: ExecutionOptions, shapes):
        return SystolicLU(spec.w, backend=options.backend)

    def execute(self, plan, matrix) -> Solution:
        result = plan.executor.factor(matrix)
        return Solution(
            kind=self.kind,
            w=plan.spec.w,
            values=(result.l, result.u),
            measured_steps=result.array_steps,
            stats={
                "array_share": result.array_share,
                "host_operations": result.host_operations,
                "update_calls": result.update_calls,
                "residual_norm": result.residual(matrix),
            },
            raw=result,
            plan_key=plan.key,
        )


# --------------------------------------------------------------------------- #
# iterative solvers (jacobi / sor / cg / refine / power + legacy gauss_seidel)
# --------------------------------------------------------------------------- #
class _IterativeHandler(ProblemHandler):
    """Shared adapter for the :mod:`repro.iterative` plan-cached solvers.

    The compiled "plan" is the solver engine itself: its inner per-shape
    plan caches are what a k-sweep solve keeps hot, and what repeated
    same-shape requests through :mod:`repro.service` reuse across jobs.
    """

    def shapes(self, *, operands=None, shape=None) -> Tuple[int]:
        if operands is not None:
            matrix_shape = _matrix_shape(operands[0], "matrix")
            if matrix_shape[0] != matrix_shape[1]:
                raise ShapeError(
                    f"{self.kind} needs a square matrix, got {matrix_shape}"
                )
            return (matrix_shape[0],)
        return _square_side(shape, self.kind)

    def _wrap(self, plan, result: IterativeResult) -> Solution:
        stats = {
            "iterations": result.iterations,
            "converged": result.converged,
            "residual_norm": result.residual_norm,
            "plan_builds_first_sweep": result.plan_builds_first_sweep,
            "plan_builds_warm_sweeps": result.plan_builds_warm_sweeps,
            "cache": result.cache,
        }
        if result.eigenvalue is not None:
            stats["eigenvalue"] = result.eigenvalue
        return Solution(
            kind=self.kind,
            w=plan.spec.w,
            values=result.x,
            measured_steps=result.array_steps,
            stats=stats,
            raw=result,
            plan_key=plan.key,
        )

    def execute(self, plan, matrix, b, x0=None) -> Solution:
        return self._wrap(plan, plan.executor.solve(matrix, b, x0))


class JacobiHandler(_IterativeHandler):
    """``A x = b`` by ``x_{k+1} = D^{-1} (b - R x_k)``."""

    kind = "jacobi"

    def build(self, spec: ArraySpec, options: ExecutionOptions, shapes):
        return JacobiSolver(
            spec.w, criteria=options.criteria, backend=options.backend
        )


class SORHandler(_IterativeHandler):
    """``A x = b`` by weighted Gauss-Seidel relaxation (``sor_omega``)."""

    kind = "sor"

    def build(self, spec: ArraySpec, options: ExecutionOptions, shapes):
        return SORSolver(
            spec.w,
            omega=options.sor_omega,
            criteria=options.criteria,
            backend=options.backend,
        )


class ConjugateGradientHandler(_IterativeHandler):
    """``A x = b`` for SPD ``A`` by conjugate gradients."""

    kind = "cg"

    def build(self, spec: ArraySpec, options: ExecutionOptions, shapes):
        return ConjugateGradientSolver(
            spec.w, criteria=options.criteria, backend=options.backend
        )


class IterativeRefinementHandler(_IterativeHandler):
    """``A x = b`` by blocked LU plus refinement sweeps."""

    kind = "refine"

    def build(self, spec: ArraySpec, options: ExecutionOptions, shapes):
        return IterativeRefinementSolver(
            spec.w, criteria=options.criteria, backend=options.backend
        )


class PowerIterationHandler(_IterativeHandler):
    """Dominant eigenpair of a square matrix by power iteration."""

    kind = "power"

    def build(self, spec: ArraySpec, options: ExecutionOptions, shapes):
        return PowerIterationSolver(
            spec.w, criteria=options.criteria, backend=options.backend
        )

    def execute(self, plan, matrix, x0=None) -> Solution:
        return self._wrap(plan, plan.executor.solve(matrix, x0))


class GaussSeidelHandler(_IterativeHandler):
    """``A x = b`` by the splitting ``(D + L) x_{k+1} = b - U x_k``.

    Kept for the seed API: the legacy ``gs_tolerance`` /
    ``gs_max_iterations`` options map onto the SOR engine with
    ``omega = 1`` (and, like the seed, no divergence guard).
    """

    kind = "gauss_seidel"

    def build(self, spec: ArraySpec, options: ExecutionOptions, shapes):
        return SORSolver(
            spec.w,
            omega=1.0,
            criteria=ConvergenceCriteria(
                atol=options.gs_tolerance,
                rtol=0.0,
                max_iter=options.gs_max_iterations,
                divergence_ratio=float("inf"),
            ),
            backend=options.backend,
        )

    def execute(self, plan, matrix, b, x0=None) -> Solution:
        result = plan.executor.solve(matrix, b, x0)
        return Solution(
            kind=self.kind,
            w=plan.spec.w,
            values=result.x,
            measured_steps=result.array_steps,
            stats={
                "iterations": result.iterations,
                "converged": result.converged,
                "residual_norm": result.residual_norm,
            },
            raw=result,
            plan_key=plan.key,
        )


# --------------------------------------------------------------------------- #
# block-sparse matvec
# --------------------------------------------------------------------------- #
class SparseHandler(ProblemHandler):
    """``y = A x + b`` skipping zero ``w x w`` blocks of the operand.

    The band layout of the sparse transform depends on the operand's
    sparsity *pattern* (a value property), so the compiled plan holds the
    configured pipeline rather than a band skeleton; the transform is
    rebuilt per solve, exactly as the paper's refinement requires.
    """

    kind = "sparse"

    def shapes(self, *, operands=None, shape=None) -> Tuple[int, int]:
        if operands is not None:
            return _matrix_shape(operands[0], "matrix")
        return _pair_shape(shape, self.kind)

    def build(self, spec: ArraySpec, options: ExecutionOptions, shapes):
        return BlockSparseMatVec(
            spec.w, tolerance=options.sparse_tolerance, backend=options.backend
        )

    def execute(self, plan, matrix, x, b=None) -> Solution:
        result = plan.executor.solve(matrix, x, b)
        delays = result.run.feedback_delays() if result.run is not None else []
        return Solution(
            kind=self.kind,
            w=plan.spec.w,
            values=result.y,
            measured_steps=result.measured_steps,
            predicted_steps=result.dense_steps,
            measured_utilization=result.measured_utilization,
            feedback=FeedbackStats.from_delays(delays),
            stats={
                "saving": result.saving,
                "dense_steps": result.dense_steps,
                "nonzero_blocks": result.transform.nonzero_block_count,
                "skipped_blocks": result.transform.skipped_block_count,
                "separators": result.transform.separator_count,
            },
            raw=result,
            plan_key=plan.key,
        )


# --------------------------------------------------------------------------- #
# comparison baselines
# --------------------------------------------------------------------------- #
class PRTHandler(ProblemHandler):
    """Priester et al. single-block transformation (DBT with n_bar=m_bar=1)."""

    kind = "prt"

    def shapes(self, *, operands=None, shape=None) -> Tuple[int, int]:
        if operands is not None:
            return _matrix_shape(operands[0], "matrix")
        return _pair_shape(shape, self.kind)

    def build(self, spec: ArraySpec, options: ExecutionOptions, shapes):
        return PRTMatVec(spec.w, backend=options.backend)

    def execute(self, plan, matrix, x, b=None) -> Solution:
        result = plan.executor.solve(matrix, x, b)
        return Solution(
            kind=self.kind,
            w=plan.spec.w,
            values=result.y,
            measured_steps=result.measured_steps,
            measured_utilization=result.measured_utilization,
            feedback=FeedbackStats.from_delays(result.run.feedback_delays()),
            stats={"array_size": plan.executor.array_size},
            raw=result,
            plan_key=plan.key,
        )


class _BlockBaselineHandler(ProblemHandler):
    """Shared adapter for the block-by-block host-accumulation baselines."""

    def _wrap(self, plan, result) -> Solution:
        return Solution(
            kind=self.kind,
            w=plan.spec.w,
            values=result.result,
            measured_steps=result.total_steps,
            measured_utilization=result.utilization,
            stats={
                "processing_elements": result.processing_elements,
                "block_runs": result.block_runs,
                "external_additions": result.external_additions,
            },
            raw=result,
            plan_key=plan.key,
        )


class NaiveMatVecHandler(_BlockBaselineHandler):
    """Block-by-block ``y = A x + b`` on a ``2w - 1`` cell array."""

    kind = "naive_matvec"

    def shapes(self, *, operands=None, shape=None) -> Tuple[int, int]:
        if operands is not None:
            return _matrix_shape(operands[0], "matrix")
        return _pair_shape(shape, self.kind)

    def build(self, spec: ArraySpec, options: ExecutionOptions, shapes):
        return NaiveBlockMatVec(spec.w, backend=options.backend)

    def execute(self, plan, matrix, x, b=None) -> Solution:
        return self._wrap(plan, plan.executor.solve(matrix, x, b))


class NaiveMatMulHandler(_BlockBaselineHandler):
    """Block-by-block ``C = A B + E`` on a ``(2w-1) x (2w-1)`` array."""

    kind = "naive_matmul"

    def shapes(self, *, operands=None, shape=None) -> Tuple[int, int, int]:
        if operands is not None:
            a_shape = _matrix_shape(operands[0], "A")
            b_shape = _matrix_shape(operands[1], "B")
            if a_shape[1] != b_shape[0]:
                raise ShapeError(f"cannot multiply shapes {a_shape} and {b_shape}")
            return (a_shape[0], a_shape[1], b_shape[1])
        shape = tuple(int(d) for d in (shape or ()))
        if len(shape) != 3:
            raise ShapeError(f"naive_matmul needs shape=(n, p, m), got {shape}")
        return shape

    def build(self, spec: ArraySpec, options: ExecutionOptions, shapes):
        return NaiveBlockMatMul(spec.w, backend=options.backend)

    def execute(self, plan, a, b, e=None) -> Solution:
        return self._wrap(plan, plan.executor.solve(a, b, e))


class BlockPartitionedHandler(_BlockBaselineHandler):
    """Block-partitioned ``y = A x + b`` on a ``w`` cell array."""

    kind = "block_partitioned"

    def shapes(self, *, operands=None, shape=None) -> Tuple[int, int]:
        if operands is not None:
            return _matrix_shape(operands[0], "matrix")
        return _pair_shape(shape, self.kind)

    def build(self, spec: ArraySpec, options: ExecutionOptions, shapes):
        return BlockPartitionedMatVec(spec.w, backend=options.backend)

    def execute(self, plan, matrix, x, b=None) -> Solution:
        return self._wrap(plan, plan.executor.solve(matrix, x, b))


for _handler_class in (
    MatVecHandler,
    MatMulHandler,
    TriangularHandler,
    LUHandler,
    GaussSeidelHandler,
    SparseHandler,
    JacobiHandler,
    SORHandler,
    ConjugateGradientHandler,
    IterativeRefinementHandler,
    PowerIterationHandler,
    PRTHandler,
    NaiveMatVecHandler,
    NaiveMatMulHandler,
    BlockPartitionedHandler,
):
    register(_handler_class())

# The NN inference kinds (dense / bias / relu / quantize / dequantize)
# register themselves on import, exactly like the handlers above; pulling
# the module in here keeps "import repro.api" sufficient for every kind.
from ..nn import handlers as _nn_handlers  # noqa: E402,F401

# The fused-chain kind registers the same way: the graph compiler only
# *creates* fused stages, but a persisted fused plan must re-resolve its
# handler at load time through the ordinary registry path.
from ..compiled import fusion as _compiled_fusion  # noqa: E402,F401
