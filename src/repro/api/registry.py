"""The problem registry behind the unified solver façade.

Each problem kind the package can solve is described by a
:class:`ProblemHandler` and registered under a string key ("matvec",
"matmul", "lu", "triangular", "gauss_seidel", "sparse", plus the
comparison baselines).  The :class:`~repro.api.solver.Solver` façade
resolves kinds through this registry, so adding a workload is: implement a
handler, call :func:`register` — no façade changes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..errors import ProblemKindError
from .config import ArraySpec, ExecutionOptions
from .solution import Solution

__all__ = ["ProblemHandler", "register", "get_handler", "registered_kinds"]


class ProblemHandler:
    """Interface one problem kind implements to join the registry.

    ``kind``
        The registry key.
    ``shapes(...)``
        Normalize either an operand set or an explicit ``shape=`` spec
        into the hashable shape tuple that keys the plan cache.
    ``build(...)``
        Compile the plan executor for one ``(spec, options, shapes)``.
    ``execute(...)``
        Stream one operand set through a compiled plan and wrap the
        kind-specific result into the common :class:`Solution` protocol.
    """

    kind: str = ""

    def shapes(
        self,
        *,
        operands: Optional[Tuple] = None,
        shape=None,
    ) -> Tuple:
        raise NotImplementedError

    def build(self, spec: ArraySpec, options: ExecutionOptions, shapes: Tuple):
        raise NotImplementedError

    def execute(self, plan, *operands, **kwargs) -> Solution:
        raise NotImplementedError


_REGISTRY: Dict[str, ProblemHandler] = {}


def register(handler: ProblemHandler) -> ProblemHandler:
    """Register a handler under its ``kind`` (last registration wins)."""
    if not handler.kind:
        raise ValueError(f"handler {handler!r} declares no kind")
    _REGISTRY[handler.kind] = handler
    return handler


def get_handler(kind: str) -> ProblemHandler:
    """The handler for ``kind``; raises :class:`ProblemKindError` if unknown."""
    try:
        return _REGISTRY[kind]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ProblemKindError(
            f"unknown problem kind {kind!r}; registered kinds: {known}"
        ) from None


def registered_kinds() -> Tuple[str, ...]:
    """All registered problem kinds, sorted."""
    return tuple(sorted(_REGISTRY))
