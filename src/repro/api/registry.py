"""The problem registry behind the unified solver façade.

Each problem kind the package can solve is described by a
:class:`ProblemHandler` and registered under a string key ("matvec",
"matmul", "lu", "triangular", "gauss_seidel", "sparse", the NN inference
kinds of :mod:`repro.nn` — "dense", "bias", "relu", "quantize",
"dequantize" — plus the comparison baselines).  The
:class:`~repro.api.solver.Solver` façade resolves kinds through this
registry, so adding a workload is: implement a handler, call
:func:`register` — no façade changes; unknown-kind did-you-mean
suggestions and :func:`registered_kinds` pick the new kind up for free.
"""

from __future__ import annotations

import difflib
from typing import Dict, Optional, Tuple

from ..errors import ProblemKindError
from .config import ArraySpec, ExecutionOptions
from .solution import Solution

__all__ = ["ProblemHandler", "register", "get_handler", "registered_kinds"]


class ProblemHandler:
    """Interface one problem kind implements to join the registry.

    ``kind``
        The registry key.
    ``shapes(...)``
        Normalize either an operand set or an explicit ``shape=`` spec
        into the hashable shape tuple that keys the plan cache.
    ``build(...)``
        Compile the plan executor for one ``(spec, options, shapes)``.
    ``execute(...)``
        Stream one operand set through a compiled plan and wrap the
        kind-specific result into the common :class:`Solution` protocol.
    """

    kind: str = ""

    def shapes(
        self,
        *,
        operands: Optional[Tuple] = None,
        shape=None,
    ) -> Tuple:
        raise NotImplementedError

    def build(self, spec: ArraySpec, options: ExecutionOptions, shapes: Tuple):
        raise NotImplementedError

    def execute(self, plan, *operands, **kwargs) -> Solution:
        raise NotImplementedError

    def execute_problem(self, plan, problem) -> Solution:
        """Stream one *typed* problem (:mod:`repro.graph`) through a plan.

        The canonical execution entry since the typed-problem redesign:
        the problem object carries its own operand tuple and execution
        arguments (``lower=``, ``x0=``, ...), so nothing is re-parsed from
        ``**kwargs``.  Handlers inherit this adapter; the legacy
        positional :meth:`execute` remains the low-level primitive.
        """
        return self.execute(
            plan, *problem.operand_values(), **problem.execute_kwargs()
        )

    @property
    def problem_class(self) -> Optional[type]:
        """The typed problem class for this kind (``None`` for baselines).

        The stable ``kind -> problem class`` mapping lives in
        :func:`repro.graph.problem_types`; this property is the per-handler
        view of it.
        """
        from ..graph.problems import problem_types

        return problem_types().get(self.kind)


_REGISTRY: Dict[str, ProblemHandler] = {}


def register(handler: ProblemHandler) -> ProblemHandler:
    """Register a handler under its ``kind`` (last registration wins)."""
    if not handler.kind:
        raise ValueError(f"handler {handler!r} declares no kind")
    _REGISTRY[handler.kind] = handler
    return handler


def get_handler(kind: str) -> ProblemHandler:
    """The handler for ``kind``; raises :class:`ProblemKindError` if unknown.

    Unknown kinds name the nearest registered kind (when one is close
    enough) so a typo like ``"matvce"`` points straight at ``"matvec"``
    instead of a bare KeyError.
    """
    try:
        return _REGISTRY[kind]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        message = f"unknown problem kind {kind!r}"
        close = difflib.get_close_matches(str(kind), list(_REGISTRY), n=1)
        if close:
            message += f"; did you mean {close[0]!r}?"
        raise ProblemKindError(
            f"{message} (registered kinds: {known})"
        ) from None


def registered_kinds() -> Tuple[str, ...]:
    """All registered problem kinds, sorted."""
    return tuple(sorted(_REGISTRY))
