"""Configuration objects for the unified solver façade.

The seed exposed one bespoke class per problem, each with its own
constructor kwargs (``record_trace``, ``overlapped``, ``verify_structure``,
``tolerance``, ...).  The api layer replaces that scatter with two frozen
— therefore hashable, therefore cache-key-able — dataclasses:

* :class:`ArraySpec` describes the hardware: the systolic array size ``w``
  (the linear array has ``w`` cells, the hexagonal array ``w x w``).
* :class:`ExecutionOptions` gathers every execution knob of every problem
  kind.  Irrelevant knobs are simply ignored by a kind (e.g.
  ``overlapped`` by matmul), mirroring how serving configs work; the
  options object participates in the plan key as a whole, which keeps the
  keying rule trivially correct.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..backends.registry import AUTO_BACKEND, get_backend
from ..errors import ArraySizeError
from ..iterative.criteria import ConvergenceCriteria
from ..matrices.padding import validate_array_size

__all__ = ["ArraySpec", "ExecutionOptions"]


@dataclass(frozen=True)
class ArraySpec:
    """The fixed-size systolic array a :class:`~repro.api.solver.Solver` targets.

    ``w`` is the paper's array size: the bandwidth of every transformed
    band, the number of cells of the linear array and the side of the
    hexagonal array.
    """

    w: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "w", validate_array_size(self.w))

    @classmethod
    def of(cls, spec: "ArraySpec | int") -> "ArraySpec":
        """Coerce an ``ArraySpec`` or a bare array size into an ``ArraySpec``."""
        if isinstance(spec, ArraySpec):
            return spec
        try:
            return cls(w=spec)
        except ArraySizeError:
            raise
        except TypeError:
            raise ArraySizeError(
                f"expected an ArraySpec or an integer array size, got {spec!r}"
            )


@dataclass(frozen=True)
class ExecutionOptions:
    """Every execution knob of every registered problem kind, in one place.

    Fields (consumers in parentheses):

    backend
        Execution engine streaming values through a compiled plan (all
        kinds): ``"simulate"`` for the cycle-accurate simulators,
        ``"vectorized"`` for the NumPy diagonal-sweep engines (identical
        values and metrics, no cycle-level artifacts), ``"compiled"``
        for the ahead-of-time lowered fused kernels of
        :mod:`repro.compiled` (same bit-identity contract, optional
        Numba acceleration, epilogue fusion at graph-compile time), or
        ``"auto"`` (the default) which picks the vectorized engine
        unless a data-flow trace is requested — never ``compiled``;
        promoting the compiled backend to the default is deliberately
        left as its own future change.
    record_trace
        Record the cycle-by-cycle data-flow trace (matvec; forces the
        simulator backend under ``backend="auto"``).
    overlapped
        Split the transformed problem at an original block-row boundary
        and interleave the halves on the idle cycles (matvec).
    verify_structure
        Audit the DBT structural conditions; with the plan/execute split
        this runs once at *plan* time, since the conditions are purely
        structural (matmul).
    sparse_tolerance
        Magnitude below which a ``w x w`` block counts as zero (sparse).
    gs_tolerance / gs_max_iterations
        Legacy convergence control (gauss_seidel); superseded by
        ``criteria`` for the :mod:`repro.iterative` kinds.
    criteria
        :class:`~repro.iterative.criteria.ConvergenceCriteria` for the
        iterative kinds (jacobi, sor, cg, refine, power).  Frozen and
        hashable, so it participates in the plan key like every other
        option.
    sor_omega
        Relaxation factor for the ``sor`` kind (``1.0`` is Gauss-Seidel;
        convergence needs ``0 < omega < 2``).
    dtype_mode
        Numeric datapath of the NN kinds (:mod:`repro.nn`):
        ``"float64"`` (the default, and what every classic kind uses) or
        ``"int8"`` — int8 operands accumulated in int32, the quantized
        inference datapath.  Participates in the plan key like every
        other option, so float and int8 plans for the same shape never
        collide.
    """

    record_trace: bool = False
    overlapped: bool = False
    verify_structure: bool = False
    sparse_tolerance: float = 0.0
    gs_tolerance: float = 1e-10
    gs_max_iterations: int = 200
    criteria: ConvergenceCriteria = ConvergenceCriteria()
    sor_omega: float = 1.0
    backend: str = AUTO_BACKEND
    dtype_mode: str = "float64"

    def __post_init__(self) -> None:
        if self.backend != AUTO_BACKEND:
            get_backend(self.backend)  # raises BackendError for unknown names
        if self.sparse_tolerance < 0.0:
            raise ValueError(
                f"sparse_tolerance must be >= 0, got {self.sparse_tolerance}"
            )
        if self.gs_tolerance <= 0.0:
            raise ValueError(f"gs_tolerance must be > 0, got {self.gs_tolerance}")
        if self.gs_max_iterations < 1:
            raise ValueError(
                f"gs_max_iterations must be >= 1, got {self.gs_max_iterations}"
            )
        if not isinstance(self.criteria, ConvergenceCriteria):
            raise ValueError(
                f"criteria must be a ConvergenceCriteria, got {self.criteria!r}"
            )
        if not 0.0 < self.sor_omega < 2.0:
            raise ValueError(
                f"sor_omega must satisfy 0 < omega < 2, got {self.sor_omega}"
            )
        if self.dtype_mode not in ("float64", "int8"):
            raise ValueError(
                f"dtype_mode must be 'float64' or 'int8', got {self.dtype_mode!r}"
            )

    def merged(self, **overrides) -> "ExecutionOptions":
        """A copy with the given fields replaced (unknown names raise)."""
        return replace(self, **overrides)
