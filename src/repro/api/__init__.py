"""Unified plan/execute solver façade for the whole package.

This subpackage is the single front door to every workload the
reproduction implements::

    import numpy as np
    from repro.api import ArraySpec, Solver

    solver = Solver(ArraySpec(w=4))
    a = np.random.default_rng(0).normal(size=(10, 7))
    x = np.random.default_rng(1).normal(size=7)

    solution = solver.solve("matvec", a, x)     # first solve compiles a plan
    again = solver.solve("matvec", a, x)        # same shape: cache hit
    assert again.from_cache
    print(again.summary())

Key pieces:

* :class:`~repro.api.config.ArraySpec` / :class:`~repro.api.config.ExecutionOptions`
  — the configuration layer replacing the seed's scattered kwargs.
* :class:`~repro.api.solver.Solver` — registry-dispatched façade over the
  problem kinds (``matvec``, ``matmul``, ``lu``, ``triangular``,
  ``gauss_seidel``, ``sparse`` and the comparison baselines), returning
  the common :class:`~repro.api.solution.Solution` protocol.
* :meth:`~repro.api.solver.Solver.plan` — the explicit compile step: an
  immutable, LRU-cached :class:`~repro.api.plan.ExecutionPlan` keyed by
  ``(kind, shapes, w, options)``; warm solves stream values only.
* :meth:`~repro.api.solver.Solver.solve_batch` — one plan across a list
  of operand sets, with automatic pairwise-overlapped matvec execution.
"""

from .config import ArraySpec, ExecutionOptions
from .plan import CacheStats, ExecutionPlan, PlanCache, PlanKey
from .registry import ProblemHandler, get_handler, register, registered_kinds
from .solution import FeedbackStats, Solution
from .solver import Solver

__all__ = [
    "ArraySpec",
    "CacheStats",
    "ExecutionOptions",
    "ExecutionPlan",
    "FeedbackStats",
    "PlanCache",
    "PlanKey",
    "ProblemHandler",
    "Solution",
    "Solver",
    "get_handler",
    "register",
    "registered_kinds",
]
