"""The unified solver façade: one front door for every problem kind.

:class:`Solver` ties the pieces together — registry dispatch, the
plan/execute split, and the LRU plan cache.  Since the typed-problem
redesign the canonical request representation is a typed problem object
from :mod:`repro.graph`::

    from repro.api import ArraySpec, Solver
    from repro.graph import MatVec

    solver = Solver(ArraySpec(w=4))
    first = solver.solve(MatVec(a, x, b))          # cache miss: builds plan
    second = solver.solve(MatVec(a2, x2, b2))      # cache hit: streams values

The legacy string spelling — ``solver.solve("matvec", a, x, b)`` — keeps
working as a thin shim that builds the equivalent single-node typed
problem (kinds without a typed class, i.e. the comparison baselines and
the ``gauss_seidel`` alias, dispatch directly); new code should prefer
the typed form, and multi-stage workloads should compose problems into a
:class:`~repro.graph.graph.Graph` and run them through
:class:`~repro.graph.compiler.GraphCompiler` so stages fuse, pair, and
reuse plans as a pipeline.

``solve_batch`` reuses one plan across a list of operand sets and, for the
plain matrix-vector kind, automatically routes pairs of requests through
the array's overlapped execution so the idle contraflow cycles of one
request carry the other.
"""

from __future__ import annotations

from typing import (
    List, Mapping, Optional, Sequence, Tuple, Type, TYPE_CHECKING,
)

from ..errors import PlanStoreError
from ..graph.problems import Problem, problem_types
from ..instrumentation import counters
from ..obs.tracing import NULL_SPAN, active_span
from .config import ArraySpec, ExecutionOptions
from .plan import ExecutionPlan, CacheStats, PlanCache, PlanKey, make_plan_key
from .registry import get_handler, registered_kinds
from .solution import Solution

# Importing the handlers populates the registry.
from . import problems as _problems  # noqa: F401

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..store import PlanStore

__all__ = ["Solver"]


class Solver:
    """Façade over the problem registry with an LRU-cached plan step.

    Parameters
    ----------
    spec:
        An :class:`ArraySpec` or a bare array size ``w``.
    options:
        Solver-wide :class:`ExecutionOptions` defaults; per-call
        ``options=`` arguments override them wholesale.
    plan_cache_size:
        Capacity of the LRU plan cache.
    store:
        Optional :class:`~repro.store.PlanStore`.  A plan-cache miss
        then tries the store before compiling (a disk read instead of a
        cold build — no ``plan_builds`` bump), and every fresh compile
        writes through to the store best-effort (write failures are
        counted, never raised on the solve path).
    """

    def __init__(
        self,
        spec: "ArraySpec | int",
        options: Optional[ExecutionOptions] = None,
        plan_cache_size: int = 128,
        store: "Optional[PlanStore]" = None,
    ):
        self._spec = ArraySpec.of(spec)
        self._options = options if options is not None else ExecutionOptions()
        self._cache = PlanCache(plan_cache_size)
        self._store = store

    # -- introspection ----------------------------------------------------------
    @property
    def spec(self) -> ArraySpec:
        return self._spec

    @property
    def w(self) -> int:
        return self._spec.w

    @property
    def options(self) -> ExecutionOptions:
        return self._options

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction accounting of the plan cache."""
        return self._cache.stats

    @property
    def store(self) -> "Optional[PlanStore]":
        """The plan persistence store, when one was attached."""
        return self._store

    @staticmethod
    def kinds() -> Tuple[str, ...]:
        """All problem kinds the registry can dispatch.

        The stable ``kind -> typed problem class`` mapping behind the
        primary kinds is :meth:`problem_types`; kinds listed here but
        absent there (the comparison baselines, the legacy
        ``gauss_seidel`` alias) only speak the string form.
        """
        return registered_kinds()

    @staticmethod
    def problem_types() -> Mapping[str, Type[Problem]]:
        """Stable mapping of kind to its typed problem class.

        Sorted by kind; see :func:`repro.graph.problem_types`.
        """
        return problem_types()

    # -- lifetime ---------------------------------------------------------------
    def reset(self) -> None:
        """Drop every cached plan while preserving ``cache_stats`` history.

        After a reset the next same-shape solve recompiles its plan, but
        lifetime hit/miss/eviction accounting survives — the natural
        behaviour for services that recycle solvers between load phases.
        """
        self._cache.clear()

    def __enter__(self) -> "Solver":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.reset()

    # -- the plan step ----------------------------------------------------------
    def plan_key(
        self,
        kind: "str | Problem",
        *operands,
        shape=None,
        options: Optional[ExecutionOptions] = None,
        **option_overrides,
    ) -> PlanKey:
        """The cache/routing key a solve of this problem would use.

        Computed without compiling anything: ``(kind, shapes, w, options)``.
        This is what :mod:`repro.service` hashes to route a request to a
        shard, so every same-shaped request lands on the same hot cache.
        Pass a typed problem object, or a kind string with either an
        operand set or an explicit ``shape=`` spec.
        """
        if isinstance(kind, Problem):
            problem = kind
            problem.require_bare(operands, option_overrides, shape)
            problem.concrete_operands()  # stage refs get the clear GraphError
            base = options if options is not None else self._options
            # One key-assembly path for typed problems: Problem.plan_key
            # derives the identical (kind, shapes, w, options) tuple the
            # string branch below computes from operands.
            return problem.plan_key(self._spec.w, base)
        handler = get_handler(kind)
        opts = self._resolve_options(options, option_overrides)
        if operands:
            shapes = handler.shapes(operands=operands)
        else:
            shapes = handler.shapes(shape=shape)
        return make_plan_key(handler.kind, shapes, self._spec.w, opts)

    def resolve_plan(
        self,
        kind: str,
        *,
        shape=None,
        options: Optional[ExecutionOptions] = None,
    ) -> Tuple[ExecutionPlan, bool]:
        """Compile-or-fetch a plan for an explicit shape spec.

        Returns ``(plan, from_cache)``.  This is the
        :class:`~repro.graph.compiler.GraphCompiler` lowering entry:
        pipeline stages resolve their plans here so shared stages
        deduplicate through this solver's LRU cache exactly like direct
        solves do (``shape`` always goes through the handler's
        normalization, so graph keys can never drift from solve keys).
        """
        handler = get_handler(kind)
        opts = self._resolve_options(options, {})
        shapes = handler.shapes(shape=shape)
        return self._plan_for(handler, shapes, opts)

    def plan(
        self,
        kind: str,
        *,
        shape=None,
        options: Optional[ExecutionOptions] = None,
        **option_overrides,
    ) -> ExecutionPlan:
        """Compile (or fetch from cache) the plan for one problem shape.

        ``shape`` is the kind's shape spec — ``(n, m)`` for matvec/sparse,
        ``(n, p, m)`` for matmul, ``n`` for the square kinds.  Keyword
        overrides (``overlapped=True``, ...) are merged into the solver's
        default options.
        """
        opts = self._resolve_options(options, option_overrides)
        return self.resolve_plan(kind, shape=shape, options=opts)[0]

    def solve(
        self,
        kind: "str | Problem",
        *operands,
        options: Optional[ExecutionOptions] = None,
        **kwargs,
    ) -> Solution:
        """Plan (with caching) and execute one problem.

        The canonical form takes a typed problem object —
        ``solve(MatVec(a, x, b))`` — which carries its own operands,
        execution arguments and options overrides.  The legacy string
        spelling ``solve("matvec", a, x, b)`` remains supported as a thin
        shim that builds the equivalent typed problem (extra keyword
        arguments are execution arguments of the kind, e.g.
        ``lower=False`` for ``triangular``; options overrides go through
        ``options=``); prefer the typed form in new code.
        """
        if isinstance(kind, Problem):
            kind.require_bare(operands, kwargs)
            return self.solve_problem(kind, options=options)
        problem_class = problem_types().get(kind)
        if problem_class is not None:
            # Constructor errors (wrong arity, bad options, unknown
            # kwargs) propagate: the typed constructors mirror the
            # handlers' execute signatures exactly, so their diagnostics
            # are the authoritative ones for these kinds.
            problem = problem_class.from_call(operands, kwargs, options)
            return self.solve_problem(problem, options=options)
        handler = get_handler(kind)
        opts = self._resolve_options(options, {})
        shapes = handler.shapes(operands=operands)
        plan, hit = self._plan_for(handler, shapes, opts)
        solution = plan.execute(*operands, **kwargs)
        solution.from_cache = hit
        if not hit:
            self._persist(plan)  # re-save with execution-warmed state
        return solution

    def solve_problem(
        self,
        problem: Problem,
        options: Optional[ExecutionOptions] = None,
    ) -> Solution:
        """Plan (with caching) and execute one *typed* problem.

        The single-node fast path of the pipeline machinery: the handler
        consumes the problem object directly — no kwargs re-parsing — and
        the plan key derives from the problem's operand specs and options
        overrides.  Problems referencing other pipeline stages must go
        through :class:`~repro.graph.compiler.GraphCompiler` instead.
        """
        handler = get_handler(problem.kind)
        base = options if options is not None else self._options
        opts = problem.resolved_options(base)
        operands = problem.concrete_operands()
        shapes = handler.shapes(operands=operands)
        plan, hit = self._plan_for(handler, shapes, opts)
        solution = plan.execute_problem(problem)
        solution.from_cache = hit
        if not hit:
            self._persist(plan)  # re-save with execution-warmed state
        return solution

    def solve_batch(
        self,
        kind: "str | Type[Problem]",
        batch: Sequence[Tuple],
        options: Optional[ExecutionOptions] = None,
    ) -> List[Solution]:
        """Solve a list of operand sets, reusing one plan per shape.

        ``kind`` is a kind string or a typed problem class
        (``solver.solve_batch(MatVec, [(a, x), (a2, x2)])``).  For the
        plain (non-overlapped) matvec kind, requests that share a
        plan are grouped and executed *pairwise overlapped* — the second
        problem's schedule slots into the idle cycles of the first — so a
        uniform batch finishes in roughly half the sequential array time
        while producing values identical to sequential solves.  Grouping
        happens by plan, not by adjacency: a shape-interleaved batch
        (A, B, A, B) still pairs the two A's and the two B's.  Results
        come back in the original batch order.
        """
        if isinstance(kind, type) and issubclass(kind, Problem):
            kind = kind.kind
        handler = get_handler(kind)
        opts = self._resolve_options(options, {})
        entries = [tuple(entry) for entry in batch]
        if kind == "matvec":
            entries = [self._matvec_triple(entry) for entry in entries]
        planned = []
        for entry in entries:
            shapes = handler.shapes(operands=entry)
            planned.append(self._plan_for(handler, shapes, opts))

        results: List[Optional[Solution]] = [None] * len(entries)
        pending: List[int] = []
        groups: "dict[int, List[int]]" = {}
        for index, (plan, _hit) in enumerate(planned):
            if plan.supports_pairing:
                groups.setdefault(id(plan), []).append(index)
            else:
                pending.append(index)
        for indices in groups.values():
            for position in range(0, len(indices) - 1, 2):
                first, second = indices[position], indices[position + 1]
                plan = planned[first][0]
                paired = plan.execute_pair(entries[first], entries[second])
                for index, solution in zip((first, second), paired):
                    solution.from_cache = planned[index][1]
                    results[index] = solution
            if len(indices) % 2:
                pending.append(indices[-1])
        for index in pending:
            plan, hit = planned[index]
            solution = plan.execute(*entries[index])
            solution.from_cache = hit
            results[index] = solution
        return results

    # -- internals ----------------------------------------------------------------
    def _resolve_options(
        self,
        options: Optional[ExecutionOptions],
        overrides: dict,
    ) -> ExecutionOptions:
        base = options if options is not None else self._options
        return base.merged(**overrides) if overrides else base

    def adopt_plan(self, plan: ExecutionPlan) -> None:
        """Install an externally obtained plan into this solver's cache.

        The warm-start entry point: a plan deserialized from a
        :class:`~repro.store.PlanStore` (or handed over from another
        solver) becomes a cache hit for its own key.  The plan must
        match this solver's array spec — executors are compiled against
        one geometry.
        """
        if plan.spec.w != self._spec.w:
            raise ValueError(
                f"cannot adopt a plan compiled for w={plan.spec.w} "
                f"into a w={self._spec.w} solver"
            )
        self._cache.put(plan.key, plan)

    def _plan_for(self, handler, shapes, opts) -> Tuple[ExecutionPlan, bool]:
        key = make_plan_key(handler.kind, shapes, self._spec.w, opts)
        plan = self._cache.get(key)
        # Ambient tracing: when some caller (a traced service worker)
        # activated a span, plan lookups report under it — cache hits as
        # zero-cost markers, misses as spans covering the cold build.
        parent = active_span()
        if plan is not None:
            if parent is not None:
                parent.child(
                    "plan_lookup", category="plan",
                    kind=handler.kind, cache="hit",
                ).finish()
            return plan, True
        if self._store is not None:
            stored = self._store.load(key)
            if stored is not None:
                # A disk read instead of a cold build: no plan_builds
                # bump, and the caller sees it as a (store-tier) hit.
                self._cache.put(key, stored)
                if parent is not None:
                    parent.child(
                        "plan_lookup", category="plan",
                        kind=handler.kind, cache="store",
                    ).finish()
                return stored, True
        counters.bump("plan_builds")
        span = (
            NULL_SPAN if parent is None
            else parent.child(
                "plan_lookup", category="plan",
                kind=handler.kind, cache="miss",
            )
        )
        with span:
            executor = handler.build(self._spec, opts, shapes)
            plan = ExecutionPlan(
                kind=handler.kind,
                shapes=shapes,
                spec=self._spec,
                options=opts,
                executor=executor,
                handler=handler,
            )
            self._cache.put(key, plan)
        self._persist(plan)
        return plan, False

    def _persist(self, plan: ExecutionPlan) -> None:
        """Best-effort write-through to the plan store.

        An unwritable store must never fail the solve that just compiled
        a perfectly good plan, so write errors are counted, not raised.
        Called once at build time, and again after a cold plan's first
        execution (see :meth:`solve` / :meth:`solve_problem`): iterative
        executors memoize inner per-shape plans lazily during execution,
        and the re-save persists that warm state — a store-restored
        jacobi plan then runs its first sweep with zero inner rebuilds.
        """
        if self._store is None:
            return
        try:
            self._store.save(plan.key, plan)
        except PlanStoreError:
            counters.bump("plan_store_errors")

    @staticmethod
    def _matvec_triple(entry: Tuple) -> Tuple:
        """Normalize a matvec operand set to ``(matrix, x, b)``."""
        if len(entry) == 2:
            return (entry[0], entry[1], None)
        if len(entry) == 3:
            return entry
        raise ValueError(
            f"matvec operand sets are (matrix, x[, b]); got {len(entry)} items"
        )
