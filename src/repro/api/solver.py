"""The unified solver façade: one front door for every problem kind.

:class:`Solver` ties the pieces together — registry dispatch, the
plan/execute split, and the LRU plan cache::

    from repro.api import ArraySpec, Solver

    solver = Solver(ArraySpec(w=4))
    plan = solver.plan("matvec", shape=(10, 7))   # compile once
    first = solver.solve("matvec", a, x, b)        # cache miss: builds plan
    second = solver.solve("matvec", a2, x2, b2)    # cache hit: streams values

``solve_batch`` reuses one plan across a list of operand sets and, for the
plain matrix-vector kind, automatically routes pairs of requests through
the array's overlapped execution so the idle contraflow cycles of one
request carry the other.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..instrumentation import counters
from .config import ArraySpec, ExecutionOptions
from .plan import ExecutionPlan, CacheStats, PlanCache, PlanKey
from .registry import get_handler, registered_kinds
from .solution import Solution

# Importing the handlers populates the registry.
from . import problems as _problems  # noqa: F401

__all__ = ["Solver"]


class Solver:
    """Façade over the problem registry with an LRU-cached plan step.

    Parameters
    ----------
    spec:
        An :class:`ArraySpec` or a bare array size ``w``.
    options:
        Solver-wide :class:`ExecutionOptions` defaults; per-call
        ``options=`` arguments override them wholesale.
    plan_cache_size:
        Capacity of the LRU plan cache.
    """

    def __init__(
        self,
        spec: "ArraySpec | int",
        options: Optional[ExecutionOptions] = None,
        plan_cache_size: int = 128,
    ):
        self._spec = ArraySpec.of(spec)
        self._options = options if options is not None else ExecutionOptions()
        self._cache = PlanCache(plan_cache_size)

    # -- introspection ----------------------------------------------------------
    @property
    def spec(self) -> ArraySpec:
        return self._spec

    @property
    def w(self) -> int:
        return self._spec.w

    @property
    def options(self) -> ExecutionOptions:
        return self._options

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction accounting of the plan cache."""
        return self._cache.stats

    @staticmethod
    def kinds() -> Tuple[str, ...]:
        """All problem kinds the registry can dispatch."""
        return registered_kinds()

    # -- lifetime ---------------------------------------------------------------
    def reset(self) -> None:
        """Drop every cached plan while preserving ``cache_stats`` history.

        After a reset the next same-shape solve recompiles its plan, but
        lifetime hit/miss/eviction accounting survives — the natural
        behaviour for services that recycle solvers between load phases.
        """
        self._cache.clear()

    def __enter__(self) -> "Solver":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.reset()

    # -- the plan step ----------------------------------------------------------
    def plan_key(
        self,
        kind: str,
        *operands,
        shape=None,
        options: Optional[ExecutionOptions] = None,
        **option_overrides,
    ) -> PlanKey:
        """The cache/routing key a solve of this problem would use.

        Computed without compiling anything: ``(kind, shapes, w, options)``.
        This is what :mod:`repro.service` hashes to route a request to a
        shard, so every same-shaped request lands on the same hot cache.
        Pass either an operand set or an explicit ``shape=`` spec.
        """
        handler = get_handler(kind)
        opts = self._resolve_options(options, option_overrides)
        if operands:
            shapes = handler.shapes(operands=operands)
        else:
            shapes = handler.shapes(shape=shape)
        return (handler.kind, shapes, self._spec.w, opts)
    def plan(
        self,
        kind: str,
        *,
        shape=None,
        options: Optional[ExecutionOptions] = None,
        **option_overrides,
    ) -> ExecutionPlan:
        """Compile (or fetch from cache) the plan for one problem shape.

        ``shape`` is the kind's shape spec — ``(n, m)`` for matvec/sparse,
        ``(n, p, m)`` for matmul, ``n`` for the square kinds.  Keyword
        overrides (``overlapped=True``, ...) are merged into the solver's
        default options.
        """
        handler = get_handler(kind)
        opts = self._resolve_options(options, option_overrides)
        shapes = handler.shapes(shape=shape)
        plan, _hit = self._plan_for(handler, shapes, opts)
        return plan

    def solve(
        self,
        kind: str,
        *operands,
        options: Optional[ExecutionOptions] = None,
        **kwargs,
    ) -> Solution:
        """Plan (with caching) and execute one problem.

        Extra keyword arguments are execution arguments of the kind (e.g.
        ``lower=False`` for ``triangular``); options overrides go through
        ``options=``.
        """
        handler = get_handler(kind)
        opts = self._resolve_options(options, {})
        shapes = handler.shapes(operands=operands)
        plan, hit = self._plan_for(handler, shapes, opts)
        solution = plan.execute(*operands, **kwargs)
        solution.from_cache = hit
        return solution

    def solve_batch(
        self,
        kind: str,
        batch: Sequence[Tuple],
        options: Optional[ExecutionOptions] = None,
    ) -> List[Solution]:
        """Solve a list of operand sets, reusing one plan per shape.

        For the plain (non-overlapped) matvec kind, requests that share a
        plan are grouped and executed *pairwise overlapped* — the second
        problem's schedule slots into the idle cycles of the first — so a
        uniform batch finishes in roughly half the sequential array time
        while producing values identical to sequential solves.  Grouping
        happens by plan, not by adjacency: a shape-interleaved batch
        (A, B, A, B) still pairs the two A's and the two B's.  Results
        come back in the original batch order.
        """
        handler = get_handler(kind)
        opts = self._resolve_options(options, {})
        entries = [tuple(entry) for entry in batch]
        if kind == "matvec":
            entries = [self._matvec_triple(entry) for entry in entries]
        planned = []
        for entry in entries:
            shapes = handler.shapes(operands=entry)
            planned.append(self._plan_for(handler, shapes, opts))

        results: List[Optional[Solution]] = [None] * len(entries)
        pair_capable = kind == "matvec" and not opts.overlapped
        if pair_capable:
            groups: "dict[int, List[int]]" = {}
            for index, (plan, _hit) in enumerate(planned):
                groups.setdefault(id(plan), []).append(index)
            pending: List[int] = []
            for indices in groups.values():
                for position in range(0, len(indices) - 1, 2):
                    first, second = indices[position], indices[position + 1]
                    plan = planned[first][0]
                    counters.plan_executions += 2
                    legacy_a, legacy_b = plan.executor.execute_pair(
                        entries[first], entries[second]
                    )
                    for index, legacy in ((first, legacy_a), (second, legacy_b)):
                        solution = handler.wrap(plan, legacy)
                        solution.from_cache = planned[index][1]
                        solution.stats["paired"] = True
                        # The paper's closed forms cover a standalone
                        # problem (plain or split-overlapped), not two
                        # interleaved requests sharing one run; drop the
                        # predictions rather than report a false model
                        # mismatch.
                        solution.predicted_steps = None
                        solution.predicted_utilization = None
                        results[index] = solution
                if len(indices) % 2:
                    pending.append(indices[-1])
        else:
            pending = list(range(len(entries)))
        for index in pending:
            plan, hit = planned[index]
            solution = plan.execute(*entries[index])
            solution.from_cache = hit
            results[index] = solution
        return results

    # -- internals ----------------------------------------------------------------
    def _resolve_options(
        self,
        options: Optional[ExecutionOptions],
        overrides: dict,
    ) -> ExecutionOptions:
        base = options if options is not None else self._options
        return base.merged(**overrides) if overrides else base

    def _plan_for(self, handler, shapes, opts) -> Tuple[ExecutionPlan, bool]:
        key = (handler.kind, shapes, self._spec.w, opts)
        plan = self._cache.get(key)
        if plan is not None:
            return plan, True
        counters.plan_builds += 1
        executor = handler.build(self._spec, opts, shapes)
        plan = ExecutionPlan(
            kind=handler.kind,
            shapes=shapes,
            spec=self._spec,
            options=opts,
            executor=executor,
            handler=handler,
        )
        self._cache.put(key, plan)
        return plan, False

    @staticmethod
    def _matvec_triple(entry: Tuple) -> Tuple:
        """Normalize a matvec operand set to ``(matrix, x, b)``."""
        if len(entry) == 2:
            return (entry[0], entry[1], None)
        if len(entry) == 3:
            return entry
        raise ValueError(
            f"matvec operand sets are (matrix, x[, b]); got {len(entry)} items"
        )
