"""The execution-backend registry.

The package can *execute* a compiled plan in more than one way:

``simulate``
    The register-level / cycle-faithful simulators in
    :mod:`repro.systolic`.  Authoritative for anything cycle-level —
    data-flow traces, output streams, per-cell activity — and the
    reference the other backends are checked against.

``vectorized``
    The NumPy diagonal-sweep engines in
    :mod:`repro.backends.vectorized`.  They replay the *same* sequence
    of multiply-accumulates each array cell would perform — one shifted
    multiply/add sweep per band diagonal, partial results carried
    between sweeps exactly as the feedback hardware carries them — so
    the recovered values are bit-identical to the simulator's, and the
    step/utilization metrics are produced from the same structural
    quantities.  No per-cycle state is kept, which makes large-``N``
    solves orders of magnitude faster.

``compiled``
    The ahead-of-time lowered kernels in :mod:`repro.compiled`.  Every
    cached plan is a perfect compilation unit — the gather/feedback
    schedule depends only on ``(kind, shapes, w, options)`` — so the
    compiled backend lowers a plan's geometry once into fused
    strided-view/einsum kernels (optionally Numba-jitted when Numba is
    importable) that replay the simulator's exact fold order without the
    vectorized backend's per-sweep Python loop.  Values and metrics stay
    bit-identical to both other backends.

``auto``
    Resolution rule, not an engine: ``vectorized`` when only values and
    metrics are needed, ``simulate`` when a cycle-level artifact (a
    data-flow trace) was requested.  ``auto`` deliberately does *not*
    resolve to ``compiled`` yet: the compiled backend is explicit opt-in
    (``backend="compiled"``) until it is soak-proven, at which point the
    rule flips in one place here.

Backends are registered as :class:`BackendSpec` descriptors so that new
engines (a GPU sweep, a distributed executor) plug in without touching
the plan code: register a spec, teach the plans to dispatch on its name.
"""

from __future__ import annotations

import difflib
import threading
from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import BackendError

__all__ = [
    "BackendSpec",
    "AUTO_BACKEND",
    "SIMULATE",
    "VECTORIZED",
    "COMPILED",
    "register_backend",
    "get_backend",
    "available_backends",
    "resolve_backend",
]

#: Name of the resolution pseudo-backend.
AUTO_BACKEND = "auto"
#: Name of the cycle-accurate simulator backend.
SIMULATE = "simulate"
#: Name of the NumPy diagonal-sweep backend.
VECTORIZED = "vectorized"
#: Name of the ahead-of-time lowered kernel backend.
COMPILED = "compiled"


@dataclass(frozen=True)
class BackendSpec:
    """Descriptor of one execution backend.

    ``supports_trace`` declares whether the backend can produce the
    cycle-by-cycle data-flow artifacts (:class:`~repro.systolic.trace.DataFlowTrace`,
    tagged output streams); ``auto`` resolution falls back to a
    trace-capable backend whenever a trace is requested.
    """

    name: str
    description: str
    supports_trace: bool = False


_REGISTRY: Dict[str, BackendSpec] = {}
# Registration can race with option validation / plan builds once the
# service layer's shard threads are running; one lock keeps the registry
# consistent without slowing the (dict-read) lookup hot path.
_REGISTRY_LOCK = threading.Lock()


def register_backend(spec: BackendSpec) -> BackendSpec:
    """Register a backend descriptor under its name (last one wins).

    Thread-safe: a custom engine may be registered while service shard
    workers are already executing plans.
    """
    if not spec.name or spec.name == AUTO_BACKEND:
        raise BackendError(f"invalid backend name {spec.name!r}")
    with _REGISTRY_LOCK:
        _REGISTRY[spec.name] = spec
    return spec


def get_backend(name: str) -> BackendSpec:
    """The descriptor for ``name``; raises :class:`BackendError` if unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        with _REGISTRY_LOCK:
            names = sorted(_REGISTRY) + [AUTO_BACKEND]
        message = f"unknown execution backend {name!r}; available: {', '.join(names)}"
        close = difflib.get_close_matches(str(name), names, n=1)
        if close:
            message += f"; did you mean {close[0]!r}?"
        raise BackendError(message) from None


def available_backends() -> Tuple[str, ...]:
    """All registered backend names, sorted (``auto`` is a rule, not a backend)."""
    with _REGISTRY_LOCK:
        return tuple(sorted(_REGISTRY))


def resolve_backend(name: str = AUTO_BACKEND, record_trace: bool = False) -> str:
    """Resolve a requested backend name into a concrete engine name.

    ``auto`` picks ``vectorized`` for plain value/metric execution and
    ``simulate`` when a data-flow trace is requested.  An explicit
    backend that cannot produce a requested trace raises
    :class:`~repro.errors.BackendError` instead of silently dropping the
    trace.
    """
    if name == AUTO_BACKEND:
        return SIMULATE if record_trace else VECTORIZED
    spec = get_backend(name)
    if record_trace and not spec.supports_trace:
        raise BackendError(
            f"backend {name!r} cannot record a data-flow trace; use "
            f"backend={SIMULATE!r} (or backend={AUTO_BACKEND!r}) when "
            f"record_trace is set"
        )
    return spec.name


register_backend(
    BackendSpec(
        name=SIMULATE,
        description="register-level cycle-accurate array simulators",
        supports_trace=True,
    )
)
register_backend(
    BackendSpec(
        name=VECTORIZED,
        description="NumPy diagonal-sweep engines (bit-identical values, no cycle state)",
        supports_trace=False,
    )
)
register_backend(
    BackendSpec(
        name=COMPILED,
        description=(
            "ahead-of-time lowered sweep kernels with cross-stage fusion "
            "(bit-identical values, optional Numba specialization)"
        ),
        supports_trace=False,
    )
)
