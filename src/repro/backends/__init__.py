"""Execution backends: how a compiled plan turns operand values into results.

The plan/execute split of :mod:`repro.api` compiles everything
shape-determined once; *backends* are the interchangeable engines that
stream values through a compiled plan:

* ``simulate`` — the register-level simulators of :mod:`repro.systolic`
  (cycle-accurate; the only backend that records data-flow traces);
* ``vectorized`` — NumPy diagonal-sweep engines that replay the same MAC
  order without per-cycle state (bit-identical values and metrics,
  orders of magnitude faster on large problems);
* ``auto`` — the resolution rule: vectorized for values, simulator when
  a trace is requested.

See :mod:`repro.backends.registry` for the registry and
:mod:`repro.backends.vectorized` for the sweep engines.
"""

from .registry import (
    AUTO_BACKEND,
    SIMULATE,
    VECTORIZED,
    BackendSpec,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)

__all__ = [
    "AUTO_BACKEND",
    "SIMULATE",
    "VECTORIZED",
    "BackendSpec",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
]
