"""NumPy diagonal-sweep execution engines for the compiled plans.

The cycle-accurate simulators in :mod:`repro.systolic` execute one
multiply-accumulate per cell per cycle.  The order of those MACs is fixed
entirely by the *structure* of the transformed problem, never by operand
values, and every partial ``y``/``C`` value accumulates independently of
all others.  The engines here exploit that:

* **Linear array (DBT-by-rows mat-vec).**  Walking the band row chain of
  one original (padded) row ``i`` — upper triangle of pass ``s``, lower
  triangle of pass ``s``, upper triangle of pass ``s + 1``, ... — visits
  the padded columns *cyclically starting at* ``i mod w``.  So the whole
  execution is ``M_pad`` shifted multiply/add sweeps over the padded
  operands, with a snapshot after every ``w`` sweeps reproducing the
  band-row outputs (the values the simulator's feedback registers carry).
  Because each row folds its terms in exactly the simulator's cell order,
  the results are bit-identical, signed zeros included.

* **Hexagonal array (DBT mat-mul).**  Every result-band position
  accumulates its products in increasing inner-index order, and the
  spiral feedback hands each accumulation-chain position the *final*
  value of its predecessor.  The engine precomputes (at plan time, values
  never matter) flat gather indices into the padded operands for every
  ``(chain depth, term)`` group and replays the fold as a few fancy-indexed
  ``multiply``/``add`` sweeps per depth.

Timing and utilization are not simulated either: the step counts, MAC
counts, feedback delays and register peaks are computed from the same
structural quantities the simulator derives them from (see
:func:`hex_structural_metrics`), so measured metrics agree exactly across
backends.  What the vectorized engines deliberately do *not* produce are
the cycle-level artifacts: the output :class:`~repro.systolic.stream.DataStream`
is empty and no :class:`~repro.systolic.trace.DataFlowTrace` is recorded —
request ``backend="simulate"`` for those.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..matrices.banded import BandMatrix
from ..matrices.padding import pad_matrix, pad_vector
from ..systolic.hex_array import HexRunResult
from ..systolic.linear_array import LinearRunResult
from ..systolic.metrics import UtilizationReport
from ..systolic.stream import DataStream

__all__ = [
    "LinearSweepPlan",
    "HexSweepPlan",
    "HexStructuralMetrics",
    "hex_structural_metrics",
    "build_linear_run",
    "build_banded_linear_run",
    "full_band_block_matvec",
    "full_band_block_matmul",
]


def _linear_alpha(w: int) -> int:
    """The simulator's ``y``-injection offset for an upper band (lower=0)."""
    return max(0, w - 1)


def linear_total_cycles(w: int, band_rows: int, offset: int = 0) -> int:
    """Steps of one upper-band problem on the ``w``-cell linear array.

    Matches the simulator's ``last_compute_cycle - first_input_cycle + 1``:
    the last band row is injected at ``2 (rows - 1) + alpha + offset`` and
    computes through the following ``w`` cells.
    """
    return 2 * (band_rows - 1) + _linear_alpha(w) + offset + w


# --------------------------------------------------------------------------- #
# Linear array: DBT-by-rows matrix-vector sweeps
# --------------------------------------------------------------------------- #
class LinearSweepPlan:
    """Value-independent skeleton of the diagonal-sweep mat-vec execution.

    Precomputes the cyclic column order (row ``i`` of the padded problem
    consumes padded columns ``i mod w, i mod w + 1, ...`` wrapping modulo
    ``M_pad``) plus the structural metric ingredients.  :meth:`sweep`
    only streams values.
    """

    def __init__(self, w: int, n: int, m: int, n_bar: int, m_bar: int,
                 useful_operations: int):
        self._w = int(w)
        self._n = int(n)
        self._m = int(m)
        self._n_bar = int(n_bar)
        self._m_bar = int(m_bar)
        self._n_pad = self._n_bar * self._w
        self._m_pad = self._m_bar * self._w
        self._band_rows = self._n_bar * self._m_bar * self._w
        start = np.arange(self._n_pad) % self._w
        self._col_idx = (
            start[:, None] + np.arange(self._m_pad)[None, :]
        ) % self._m_pad
        self._row_idx = np.arange(self._n_pad)[:, None]
        self._useful = int(useful_operations)
        self._events_cache: Dict[int, List[Tuple[int, int, int]]] = {}

    # -- geometry / structural metrics ----------------------------------------
    @property
    def w(self) -> int:
        return self._w

    @property
    def band_rows(self) -> int:
        """Band rows of the transformed problem (``w n_bar m_bar``)."""
        return self._band_rows

    @property
    def useful_operations(self) -> int:
        return self._useful

    @property
    def mac_operations(self) -> int:
        """Every in-band position of the completely filled band: ``rows * w``."""
        return self._band_rows * self._w

    def feedback_events(self, offset: int = 0) -> List[Tuple[int, int, int]]:
        """``(band_row, push_cycle, pop_cycle)`` for every fed-back value.

        Band block row ``k`` re-enters the chain output of block row
        ``k - 1`` whenever ``k mod m_bar != 0``; the register chain delay
        is exactly ``w`` (the paper's T3 claim).
        """
        events = self._events_cache.get(offset)
        if events is None:
            alpha = _linear_alpha(self._w)
            events = []
            for k in range(self._n_bar * self._m_bar):
                if k % self._m_bar == 0:
                    continue
                for a in range(self._w):
                    row = k * self._w + a
                    pop = 2 * row + alpha + offset
                    events.append((row, pop - self._w, pop))
            self._events_cache[offset] = events
        return events

    # -- value streaming --------------------------------------------------------
    def sweep(
        self,
        matrix: np.ndarray,
        x: np.ndarray,
        b: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Run the ``M_pad`` shifted multiply/add sweeps for one operand set.

        Returns ``(band_outputs, y_padded)``: the per-band-row outputs (one
        partial snapshot per pass, ordered exactly like the simulator's
        ``y_per_problem`` entries) and the final padded result vector.
        """
        w = self._w
        a_pad = pad_matrix(matrix, w)
        x_pad = pad_vector(x, w)
        b_pad = pad_vector(b if b is not None else np.zeros(self._n), w)
        cols = self._col_idx
        products = a_pad[self._row_idx, cols] * x_pad[cols]
        y = b_pad.copy()
        partials = np.empty((self._m_bar, self._n_pad), dtype=float)
        for t in range(self._m_pad):
            y += products[:, t]
            if (t + 1) % w == 0:
                partials[(t + 1) // w - 1] = y
        band_outputs = (
            partials.reshape(self._m_bar, self._n_bar, w)
            .transpose(1, 0, 2)
            .reshape(-1)
        )
        return band_outputs, y

    def int_sweep(
        self,
        matrix: np.ndarray,
        x: np.ndarray,
        b: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Integer-datapath variant of :meth:`sweep` (int32-accumulate).

        Integer addition is exactly associative, so the pass-by-pass
        accumulation doesn't need the float path's cyclic gather and
        timestep loop at all: every partial is a contiguous cyclic range
        sum recoverable from one elementwise product and one row-wise
        prefix sum (plus an O(N_pad * M_bar) snapshot gather) — the same
        integers the simulator's cells accumulate, reached in O(n m)
        straight-line arithmetic.  That is what makes the int8 path
        faster than the float one rather than a dtype-recolored copy of
        it.  Operands must be integer arrays (the caller quantizes and
        zero-point-shifts); the whole datapath runs in int32, the
        accumulator width of the quantized hardware.  The caller
        guarantees operands and true accumulators fit int32 — int8-range
        operands stay exact up to ~2^16 columns.
        """
        for name, operand in (("matrix", matrix), ("x", x), ("b", b)):
            if operand is not None and not np.issubdtype(
                np.asarray(operand).dtype, np.integer
            ):
                raise TypeError(
                    f"int_sweep needs integer operands, got {name} of dtype "
                    f"{np.asarray(operand).dtype}"
                )
        a_pad = np.zeros((self._n_pad, self._m_pad), dtype=np.int32)
        a_pad[: self._n, : self._m] = matrix
        x_pad = np.zeros(self._m_pad, dtype=np.int32)
        x_pad[: self._m] = x
        b_pad = np.zeros(self._n_pad, dtype=np.int32)
        if b is not None:
            b_pad[: self._n] = b
        # Row r consumes padded columns cyclically from s_r = r mod w, so
        # after rotating each row's products left by s_r, pass j is just
        # the contiguous column block [j w, (j+1) w): one blocked reduce
        # plus a small prefix sum reproduces every snapshot.  Rows with
        # equal s_r sit on a fixed lane of the (n_bar, w, M_pad) view,
        # so the rotation is w - 1 contiguous copies, not a gather.
        products = (a_pad * x_pad[None, :]).reshape(
            self._n_bar, self._w, self._m_pad
        )
        shifted = np.empty_like(products)
        shifted[:, 0] = products[:, 0]
        for lane in range(1, self._w):
            shifted[:, lane, : -lane] = products[:, lane, lane:]
            shifted[:, lane, -lane:] = products[:, lane, :lane]
        pass_sums = shifted.reshape(self._n_pad, self._m_bar, self._w).sum(
            axis=2, dtype=np.int32
        )
        partials = np.cumsum(pass_sums, axis=1, dtype=np.int32)
        partials += b_pad[:, None]
        y = partials[:, -1].copy()
        band_outputs = (
            partials.T.reshape(self._m_bar, self._n_bar, self._w)
            .transpose(1, 0, 2)
            .reshape(-1)
            .copy()
        )
        return band_outputs, y


def build_linear_run(
    w: int,
    plans: Sequence[LinearSweepPlan],
    outputs: Sequence[np.ndarray],
) -> LinearRunResult:
    """Assemble a :class:`LinearRunResult` for 1 plain or 2 overlapped sweeps.

    Problem ``p`` runs at cycle offset ``p`` (the simulator's overlapped
    schedule); all metrics are the structural values the simulator would
    measure.  The output stream is left empty and no trace is recorded.
    """
    total_cycles = 0
    mac_total = 0
    useful = 0
    output_count = 0
    for offset, plan in enumerate(plans):
        total_cycles = max(total_cycles, linear_total_cycles(w, plan.band_rows, offset))
        mac_total += plan.mac_operations
        useful += plan.useful_operations
        output_count += plan.band_rows
    if len(plans) == 1:
        # Share the plan's memoized event list instead of copying its
        # O(bands) tuples per solve; results treat the list as read-only.
        events: List[Tuple[int, int, int]] = plans[0].feedback_events(0)
    else:
        # The simulator records feedback events in consumption-cycle
        # order, which interleaves overlapped problems.
        events = []
        for offset, plan in enumerate(plans):
            events.extend(plan.feedback_events(offset))
        events.sort(key=lambda event: event[2])
    # Outputs enter the w-register chain every other cycle for one problem
    # (ceil(w/2) simultaneously resident) and every cycle when two
    # problems interleave.
    if len(plans) == 1:
        peak = min(output_count, (w + 1) // 2)
    else:
        peak = min(output_count, w)
    report = UtilizationReport(
        processing_elements=w,
        steps=total_cycles,
        mac_operations=mac_total,
        useful_operations=useful,
    )
    y = outputs[0] if len(outputs) == 1 else np.concatenate(list(outputs))
    return LinearRunResult(
        size=w,
        y=y,
        output_stream=DataStream("y out"),
        report=report,
        total_cycles=total_cycles,
        first_input_cycle=0,
        last_output_cycle=total_cycles,
        y_per_problem=[np.asarray(out) for out in outputs],
        feedback_events=events,
        feedback_register_peak=peak,
        trace=None,
        cell_mac_counts=[sum(p.band_rows for p in plans)] * w,
    )


def build_banded_linear_run(
    w: int,
    band_rows: int,
    band_outputs: np.ndarray,
    useful_operations: int,
    feedback_rows: Sequence[int],
) -> LinearRunResult:
    """A :class:`LinearRunResult` for one irregular upper-band sweep.

    Used by the block-sparse pipeline, whose band row plan is value
    dependent (it follows the sparsity pattern) but whose per-row cell
    order and feedback delay are the same as the dense transform's.
    """
    alpha = _linear_alpha(w)
    total_cycles = linear_total_cycles(w, band_rows)
    events = [
        (int(row), 2 * int(row) + alpha - w, 2 * int(row) + alpha)
        for row in feedback_rows
    ]
    report = UtilizationReport(
        processing_elements=w,
        steps=total_cycles,
        mac_operations=band_rows * w,
        useful_operations=useful_operations,
    )
    return LinearRunResult(
        size=w,
        y=np.asarray(band_outputs),
        output_stream=DataStream("y out"),
        report=report,
        total_cycles=total_cycles,
        first_input_cycle=0,
        last_output_cycle=total_cycles,
        y_per_problem=[np.asarray(band_outputs)],
        feedback_events=events,
        feedback_register_peak=min(band_rows, (w + 1) // 2),
        trace=None,
        cell_mac_counts=[band_rows] * w,
    )


# --------------------------------------------------------------------------- #
# Hexagonal array: structural metrics
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class HexStructuralMetrics:
    """The timing quantities one hexagonal run measures, computed statically."""

    c_lower: int
    c_upper: int
    mac_operations: int
    c_first: int
    c_last: int
    first_input_cycle: int
    last_output_cycle: int
    compute_first: int
    compute_last: int

    @property
    def c_stream_cycles(self) -> int:
        return self.c_last - self.c_first + 1 if self.c_last >= self.c_first else 0

    @property
    def total_cycles(self) -> int:
        return self.last_output_cycle - self.first_input_cycle + 1

    @property
    def compute_cycles(self) -> int:
        return self.compute_last - self.compute_first + 1 if self.mac_operations else 0


def _diag_span(rows: int, cols: int, offset: int) -> Tuple[int, int]:
    """``(first_row, length)`` of the diagonal ``j - i = offset``."""
    if offset >= 0:
        return 0, max(0, min(rows, cols - offset))
    return -offset, max(0, min(cols, rows + offset))


def hex_structural_metrics(
    a_rows: int, a_cols: int, a_lower: int, a_upper: int,
    b_rows: int, b_cols: int, b_lower: int, b_upper: int,
) -> HexStructuralMetrics:
    """Replicate the hexagonal simulator's timing bookkeeping from geometry.

    Uses the same ``t = i + j + k`` schedule and the same boundary-crossing
    expressions as :meth:`repro.systolic.hex_array.HexagonalArray.run`,
    evaluated per band diagonal with NumPy instead of per token.
    """
    boundary: List[int] = []
    mac = 0
    compute_lo: Optional[int] = None
    compute_hi: Optional[int] = None
    for d in range(-a_lower, a_upper + 1):
        i0, length = _diag_span(a_rows, a_cols, d)
        if length == 0:
            continue
        i = np.arange(i0, i0 + length)
        k = i + d
        cyc = i + k
        boundary.append(int(cyc.min()) - b_lower)
        boundary.append(int(cyc.max()) + b_upper + 1)
        j_lo = np.maximum(0, k - b_lower)
        j_hi = np.minimum(b_cols - 1, k + b_upper)
        valid = j_lo <= j_hi
        if valid.any():
            mac += int((j_hi - j_lo + 1)[valid].sum())
            lo = int((cyc + j_lo)[valid].min())
            hi = int((cyc + j_hi)[valid].max())
            compute_lo = lo if compute_lo is None else min(compute_lo, lo)
            compute_hi = hi if compute_hi is None else max(compute_hi, hi)
    for d in range(-b_lower, b_upper + 1):
        k0, length = _diag_span(b_rows, b_cols, d)
        if length == 0:
            continue
        k = np.arange(k0, k0 + length)
        cyc = 2 * k + (k + d)
        boundary.append(int(cyc.min()) - a_upper)
        boundary.append(int(cyc.max()) + a_lower + 1)

    c_lower = min(a_lower + b_lower, a_rows - 1)
    c_upper = min(a_upper + b_upper, b_cols - 1)
    c_first: Optional[int] = None
    c_last: Optional[int] = None
    for dc in range(-c_lower, c_upper + 1):
        i0, length = _diag_span(a_rows, b_cols, dc)
        if length == 0:
            continue
        u_min = max(-a_lower, dc - b_upper)
        u_max = min(a_upper, dc + b_lower)
        if u_min > u_max:
            u_min = u_max = max(-a_lower, min(a_upper, dc))
        entry = 3 * i0 + dc + u_min
        i_last = i0 + length - 1
        exit_cycle = 3 * i_last + dc + u_max + 1
        c_first = entry if c_first is None else min(c_first, entry)
        c_last = exit_cycle if c_last is None else max(c_last, exit_cycle)
        boundary.append(entry)
        boundary.append(exit_cycle)

    first_input = min(boundary) if boundary else 0
    last_output = max(boundary) if boundary else 0
    return HexStructuralMetrics(
        c_lower=c_lower,
        c_upper=c_upper,
        mac_operations=mac,
        c_first=c_first if c_first is not None else 0,
        c_last=c_last if c_last is not None else -1,
        first_input_cycle=first_input,
        last_output_cycle=last_output,
        compute_first=compute_lo if compute_lo is not None else 0,
        compute_last=compute_hi if compute_hi is not None else -1,
    )


# --------------------------------------------------------------------------- #
# Hexagonal array: DBT matrix-matrix sweeps
# --------------------------------------------------------------------------- #
class HexSweepPlan:
    """Value-independent skeleton of the diagonal-sweep mat-mul execution.

    Built once per :class:`~repro.core.plans.MatMulPlan` from the operand
    provenance and the partial-result accumulation chains.  Per chain
    *depth* (position index within a chain) and per *term* (inner index
    step), flat gather indices into the padded operands are precomputed;
    executing is then one fancy-indexed multiply/add per ``(depth, term)``
    group, with a vectorized carry copy between depths reproducing the
    spiral feedback hand-off.
    """

    def __init__(self, operands, placement, useful_operations: int):
        w = operands.w
        self._w = int(w)
        self._n, self._p = operands.a_shape
        _p2, self._m = operands.b_shape
        self._n_pad = operands.n_bar * w
        self._p_pad = operands.p_bar * w
        self._m_pad = operands.m_bar * w
        self._useful = int(useful_operations)

        a_band = operands.a_operand.band
        b_band = operands.b_operand.band
        self._dim = a_band.rows
        la, ua = a_band.lower, a_band.upper
        lb, ub = b_band.lower, b_band.upper
        self._metrics = hex_structural_metrics(
            a_band.rows, a_band.cols, la, ua,
            b_band.rows, b_band.cols, lb, ub,
        )
        self._report = UtilizationReport(
            processing_elements=w * w,
            steps=(
                self._metrics.c_stream_cycles
                if self._metrics.c_stream_cycles
                else self._metrics.total_cycles
            ),
            mac_operations=self._metrics.mac_operations,
            useful_operations=self._useful,
        )

        a_prov = operands.a_operand.provenance
        b_prov = operands.b_operand.provenance
        a_sentinel = self._n_pad * self._p_pad
        b_sentinel = self._p_pad * self._m_pad
        dim = self._dim

        def token_window(i: int, j: int) -> Tuple[int, int]:
            dc = j - i
            u_min = max(-la, dc - ub)
            u_max = min(ua, dc + lb)
            if u_min > u_max:
                u_min = u_max = max(-la, min(ua, dc))
            return 2 * i + j + u_min, 2 * i + j + u_max + 1

        chains = placement.chains
        slot_of: Dict[Tuple[int, int], int] = {}
        for chain in chains.values():
            for position in chain.positions:
                slot_of[position] = len(slot_of)
        self._slot_count = len(slot_of)

        head_slots: List[int] = []
        head_rows: List[int] = []
        head_cols: List[int] = []
        final_slots: List[int] = []
        final_rows: List[int] = []
        final_cols: List[int] = []
        links: Dict[int, Tuple[List[int], List[int]]] = {}
        groups: Dict[Tuple[int, int], Tuple[List[int], List[int], List[int]]] = {}
        feedback_delays: Dict[Tuple[int, int], int] = {}
        band_scatter: Dict[int, Tuple[List[int], List[int]]] = {}

        for (alpha, gamma), chain in chains.items():
            head_slots.append(slot_of[chain.positions[0]])
            head_rows.append(alpha)
            head_cols.append(gamma)
            final_slots.append(slot_of[chain.final_position])
            final_rows.append(alpha)
            final_cols.append(gamma)
            for depth, position in enumerate(chain.positions):
                i, j = position
                slot = slot_of[position]
                if depth > 0:
                    predecessor = chain.positions[depth - 1]
                    pred_list, succ_list = links.setdefault(depth, ([], []))
                    pred_list.append(slot_of[predecessor])
                    succ_list.append(slot)
                    feedback_delays[position] = (
                        token_window(i, j)[0] - token_window(*predecessor)[1]
                    )
                dc = j - i
                along = i if dc >= 0 else j
                scatter_along, scatter_slots = band_scatter.setdefault(dc, ([], []))
                scatter_along.append(along)
                scatter_slots.append(slot)
                u_lo = max(-la, dc - ub, -i)
                u_hi = min(ua, dc + lb, dim - 1 - i)
                for t, u in enumerate(range(u_lo, u_hi + 1)):
                    k = i + u
                    a_origin = a_prov.get((i, k))
                    b_origin = b_prov.get((k, j))
                    a_flat = (
                        a_origin[0] * self._p_pad + a_origin[1]
                        if a_origin is not None
                        else a_sentinel
                    )
                    b_flat = (
                        b_origin[0] * self._m_pad + b_origin[1]
                        if b_origin is not None
                        else b_sentinel
                    )
                    c_list, a_list, b_list = groups.setdefault(
                        (depth, t), ([], [], [])
                    )
                    c_list.append(slot)
                    a_list.append(a_flat)
                    b_list.append(b_flat)

        self._head_slots = np.array(head_slots, dtype=int)
        self._head_rows = np.array(head_rows, dtype=int)
        self._head_cols = np.array(head_cols, dtype=int)
        self._final_slots = np.array(final_slots, dtype=int)
        self._final_rows = np.array(final_rows, dtype=int)
        self._final_cols = np.array(final_cols, dtype=int)
        self._feedback_delays = feedback_delays
        self._band_scatter = {
            dc: (np.array(along, dtype=int), np.array(slots, dtype=int))
            for dc, (along, slots) in band_scatter.items()
        }

        max_depth = max((depth for depth, _t in groups), default=-1)
        max_depth = max(max_depth, max(links, default=0))
        stages = []
        for depth in range(max_depth + 1):
            pred_list, succ_list = links.get(depth, (None, None))
            pred = np.array(pred_list, dtype=int) if pred_list else None
            succ = np.array(succ_list, dtype=int) if succ_list else None
            terms = []
            t = 0
            while (depth, t) in groups:
                c_list, a_list, b_list = groups[(depth, t)]
                terms.append(
                    (
                        np.array(c_list, dtype=int),
                        np.array(a_list, dtype=int),
                        np.array(b_list, dtype=int),
                    )
                )
                t += 1
            stages.append((pred, succ, terms))
        self._stages = stages

    # -- structural metrics ------------------------------------------------------
    @property
    def metrics(self) -> HexStructuralMetrics:
        return self._metrics

    @property
    def feedback_delays(self) -> Dict[Tuple[int, int], int]:
        """Spiral feedback delay of every non-head chain position."""
        return dict(self._feedback_delays)

    # -- value streaming ----------------------------------------------------------
    def execute(
        self,
        a: np.ndarray,
        b: np.ndarray,
        e: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, HexRunResult]:
        """Fold one operand set through the chain sweeps.

        Returns the recovered dense ``C`` (original shape) and a
        :class:`HexRunResult` whose band holds the finished chain values
        (intermediate, discarded band positions stay zero).
        """
        w = self._w
        a_vals = np.append(pad_matrix(a, w).ravel(), 0.0)
        b_vals = np.append(pad_matrix(b, w).ravel(), 0.0)
        values = np.zeros(self._slot_count, dtype=float)
        if e is not None and self._head_slots.size:
            e_pad = np.zeros((self._n_pad, self._m_pad), dtype=float)
            e_pad[: self._n, : self._m] = np.asarray(e, dtype=float)
            # + 0.0 normalizes -0.0 addends, which the simulator never
            # injects (it skips values comparing equal to zero).
            values[self._head_slots] = e_pad[self._head_rows, self._head_cols] + 0.0
        for pred, succ, terms in self._stages:
            if pred is not None:
                values[succ] = values[pred]
            for c_idx, a_idx, b_idx in terms:
                values[c_idx] += a_vals[a_idx] * b_vals[b_idx]

        out = np.zeros((self._n_pad, self._m_pad), dtype=float)
        out[self._final_rows, self._final_cols] = values[self._final_slots]
        c = out[: self._n, : self._m].copy()

        metrics = self._metrics
        c_band = BandMatrix(self._dim, self._dim, metrics.c_lower, metrics.c_upper)
        for dc, (along, slots) in self._band_scatter.items():
            diagonal = np.zeros(c_band.diagonal_length(dc), dtype=float)
            diagonal[along] = values[slots]
            c_band.set_diagonal(dc, diagonal)
        run = HexRunResult(
            w1=w,
            w2=w,
            c_band=c_band,
            report=self._report,
            total_cycles=metrics.total_cycles,
            c_stream_cycles=metrics.c_stream_cycles,
            compute_cycles=metrics.compute_cycles,
            first_input_cycle=metrics.first_input_cycle,
            last_output_cycle=metrics.last_output_cycle,
            token_entry={},
            token_exit={},
            feedback_delays=dict(self._feedback_delays),
            cell_busy={},
        )
        return c, run


# --------------------------------------------------------------------------- #
# Full-bandwidth block kernels for the naive baselines
# --------------------------------------------------------------------------- #
def full_band_block_matvec(block: np.ndarray, x: np.ndarray) -> np.ndarray:
    """One dense block as a full-bandwidth band on the ``2w - 1`` cell array.

    Folds the diagonals in cell order (``-(w-1) .. w-1``), which is the
    order the naive baseline's simulated array accumulates them in.
    """
    size = block.shape[0]
    y = np.zeros(size, dtype=float)
    for d in range(-(size - 1), size):
        diagonal = np.diagonal(block, d)
        if d >= 0:
            y[: size - d] += diagonal * x[d:]
        else:
            y[-d:] += diagonal * x[: size + d]
    return y


def full_band_block_matmul(a_block: np.ndarray, b_block: np.ndarray) -> np.ndarray:
    """One dense block product on the ``(2w-1) x (2w-1)`` hexagonal array.

    Every result position accumulates its products in increasing inner
    index order, so a rank-1 update sweep reproduces the simulator's
    values bit for bit.
    """
    size = a_block.shape[0]
    c = np.zeros((size, b_block.shape[1]), dtype=float)
    for k in range(size):
        c += a_block[:, k : k + 1] * b_block[k : k + 1, :]
    return c
