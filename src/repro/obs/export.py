"""Trace exporters: Chrome trace-event JSON and plain-text trees.

:func:`chrome_trace` renders finished spans in the Chrome trace-event
format (the catapult JSON that Perfetto — https://ui.perfetto.dev — and
``chrome://tracing`` load directly).  The mapping:

* every span becomes one complete ``"X"`` event, placed on a *thread*
  per span track — the client track first, then one track per shard
  worker — under a single process;
* track naming is emitted as ``"M"`` (metadata) events, so the viewer
  shows ``client`` / ``shard 0`` / ``shard 1`` lanes instead of bare
  thread ids;
* every handoff-lane transit becomes a flow: an ``"s"`` (flow start)
  event anchored at the end of the producing span and an ``"f"`` (flow
  finish, ``bp: "e"``) event anchored at the start of the consuming
  span, drawn by the viewer as an arrow between the two shard tracks.

Timestamps are microseconds relative to the tracer's epoch, as the
format requires.

:func:`describe_trace` renders the same spans as an indented text tree —
one line per span with duration, status and annotations — for terminals
and test assertions.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["chrome_trace", "describe_trace", "write_chrome_trace"]

#: The single process id all tracks live under.
_PID = 1


def _track_order(spans: Sequence[Any]) -> Dict[str, int]:
    """Assign tids: ``client`` first, remaining tracks sorted by name."""
    tracks = {span.track for span in spans}
    ordered: List[str] = []
    if "client" in tracks:
        ordered.append("client")
        tracks.discard("client")
    ordered.extend(sorted(tracks))
    return {track: tid for tid, track in enumerate(ordered)}


def _micros(instant: float, epoch: float) -> float:
    return (instant - epoch) * 1e6


def chrome_trace(spans: Sequence[Any], epoch: float = 0.0) -> Dict[str, Any]:
    """Finished spans as a Chrome trace-event JSON object."""
    tids = _track_order(spans)
    events: List[Dict[str, Any]] = []
    for track, tid in sorted(tids.items(), key=lambda item: item[1]):
        events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": track},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "name": "thread_sort_index",
                "args": {"sort_index": tid},
            }
        )
    events.append(
        {
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro.service"},
        }
    )
    for span in spans:
        if span.end is None:
            continue  # open spans have no duration to draw
        tid = tids[span.track]
        args: Dict[str, Any] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "status": span.status,
        }
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.error is not None:
            args["error"] = span.error
        for key, value in span.args.items():
            args[key] = value if isinstance(value, (int, float, bool)) else str(value)
        start_us = _micros(span.start, epoch)
        end_us = _micros(span.end, epoch)
        events.append(
            {
                "ph": "X",
                "pid": _PID,
                "tid": tid,
                "name": span.name,
                "cat": span.category or "span",
                "ts": start_us,
                "dur": max(0.0, end_us - start_us),
                "args": args,
            }
        )
        # Flow arrows: the producer anchors an "s" at its end, the
        # consumer an "f" (binding point "e" = enclosing slice begin)
        # at its start; matching ids make the viewer connect them.
        for flow_id in span.flows_out:
            events.append(
                {
                    "ph": "s",
                    "pid": _PID,
                    "tid": tid,
                    "name": "handoff",
                    "cat": "handoff",
                    "id": flow_id,
                    "ts": end_us,
                }
            )
        for flow_id in span.flows_in:
            events.append(
                {
                    "ph": "f",
                    "bp": "e",
                    "pid": _PID,
                    "tid": tid,
                    "name": "handoff",
                    "cat": "handoff",
                    "id": flow_id,
                    "ts": start_us,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: Any, spans: Sequence[Any], epoch: float = 0.0
) -> None:
    """Serialize :func:`chrome_trace` as JSON to ``path``."""
    payload = chrome_trace(spans, epoch=epoch)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds * 1e6:.1f}us"


def _describe_span(
    span: Any,
    children: Dict[Optional[int], List[Any]],
    depth: int,
    lines: List[str],
) -> None:
    note = "" if span.status == "ok" else f" [{span.status}]"
    if span.error is not None:
        note += f" {span.error}"
    extras = " ".join(
        f"{key}={value}" for key, value in sorted(span.args.items())
    )
    if extras:
        extras = "  {" + extras + "}"
    lines.append(
        f"{'  ' * depth}{span.name} ({span.track}) "
        f"{_format_duration(span.duration)}{note}{extras}"
    )
    for child in children.get(span.span_id, ()):
        _describe_span(child, children, depth + 1, lines)


def describe_trace(
    spans: Iterable[Any], trace_id: Optional[int] = None
) -> str:
    """Indented text rendering of one trace (or all, separated by blanks)."""
    selected: List[Any] = [
        span
        for span in spans
        if trace_id is None or span.trace_id == trace_id
    ]
    selected.sort(key=lambda span: (span.trace_id, span.start, span.span_id))
    children: Dict[Optional[int], List[Any]] = {}
    span_ids = {span.span_id for span in selected}
    roots: List[Any] = []
    for span in selected:
        if span.parent_id is None or span.parent_id not in span_ids:
            roots.append(span)
        else:
            children.setdefault(span.parent_id, []).append(span)
    lines: List[str] = []
    last_trace: Optional[Tuple[int, ...]] = None
    for root in roots:
        if last_trace is not None and root.trace_id != last_trace:
            lines.append("")
        last_trace = root.trace_id
        _describe_span(root, children, 0, lines)
    return "\n".join(lines)
