"""Typed, lock-exact metric instruments and their registry.

The serving layer grew accounting organically — ad-hoc integer bumps in
:class:`~repro.service.telemetry.ShardTelemetry`, a module-level counter
object in :mod:`repro.instrumentation` whose service-path fields were
documented "best-effort" under the shard pool.  This module is the one
replacement currency: typed :class:`Counter` / :class:`Gauge` /
:class:`Histogram` instruments, each guarded by a lock so concurrent
bumps from shard workers are *exact*, grouped in a
:class:`MetricsRegistry` whose single re-entrant lock makes a
:meth:`MetricsRegistry.snapshot` consistent across every instrument it
holds (no torn read between a shard's "completed" counter and its
latency reservoir).

Instruments are identified by ``(name, labels)`` — the conventional
dimensional-metrics shape — so per-shard / per-kind series of one metric
fold naturally: :meth:`MetricsSnapshot.total` sums a counter across all
label sets and :meth:`MetricsSnapshot.merged_sample` pools histogram
reservoirs, which is exactly how the fleet view
(:class:`~repro.service.telemetry.ServiceStats`) aggregates shards.

The module depends only on the standard library, so every layer of the
package (instrumentation, api, service) can use it without import
cycles.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:
    # threading.RLock is a factory function, not a class, so it cannot
    # appear in annotations; the C class behind it can.
    from _thread import RLock as RLockType

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "percentiles",
]

#: A label set in canonical form: sorted ``(key, value)`` pairs.
LabelSet = Tuple[Tuple[str, str], ...]

#: Default reservoir capacity of a :class:`Histogram`.
DEFAULT_RESERVOIR = 4096


def _labelset(labels: Mapping[str, object]) -> LabelSet:
    """Canonicalize keyword labels: sorted, stringified values."""
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def percentiles(
    sample: Sequence[float], fractions: Sequence[float]
) -> Tuple[Optional[float], ...]:
    """Nearest-rank percentiles of ``sample``, sorting exactly once.

    Returns one value per fraction (``None`` throughout for an empty
    sample).  This is the sort-once replacement for calling
    ``percentile`` repeatedly: p50/p95/p99 of one reservoir cost one
    ``sorted`` plus three O(1) ranks.
    """
    for fraction in fractions:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(
                f"percentile fraction must be in [0, 1], got {fraction}"
            )
    if not sample:
        return tuple(None for _ in fractions)
    ordered = sorted(sample)
    top = len(ordered) - 1
    return tuple(
        ordered[min(top, max(0, int(round(fraction * top))))]
        for fraction in fractions
    )


class Instrument:
    """Shared identity of every metric: a name plus canonical labels.

    Instruments created through a :class:`MetricsRegistry` share that
    registry's re-entrant lock, which is what makes registry snapshots
    consistent across instruments; a standalone instrument gets a
    private lock and is still individually exact.
    """

    __slots__ = ("name", "labels", "_lock")

    def __init__(
        self,
        name: str,
        labels: Optional[Mapping[str, object]] = None,
        lock: Optional[RLockType] = None,
    ):
        self.name = name
        self.labels: LabelSet = _labelset(labels or {})
        self._lock = lock if lock is not None else threading.RLock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        labels = ", ".join(f"{key}={value}" for key, value in self.labels)
        return f"{type(self).__name__}({self.name}{{{labels}}})"


class Counter(Instrument):
    """A monotonically increasing count; ``inc`` is atomic under the lock."""

    __slots__ = ("_value",)

    def __init__(
        self,
        name: str,
        labels: Optional[Mapping[str, object]] = None,
        lock: Optional[RLockType] = None,
    ):
        super().__init__(name, labels, lock)
        self._value = 0

    def inc(self, n: int = 1) -> int:
        """Add ``n`` (>= 0); returns the new total."""
        if n < 0:
            raise ValueError(f"counters only increase; got inc({n})")
        with self._lock:
            self._value += n
            return self._value

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge(Instrument):
    """A point-in-time level (queue depth, lane depth) with a high-water mark."""

    __slots__ = ("_value", "_highwater")

    def __init__(
        self,
        name: str,
        labels: Optional[Mapping[str, object]] = None,
        lock: Optional[RLockType] = None,
    ):
        super().__init__(name, labels, lock)
        self._value = 0.0
        self._highwater = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value
            if value > self._highwater:
                self._highwater = value

    def inc(self, n: float = 1) -> None:
        self.set(self.value + n)

    def dec(self, n: float = 1) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def highwater(self) -> float:
        """The largest level ever :meth:`set` — the leak/overload detector."""
        with self._lock:
            return self._highwater


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable view of one histogram: totals plus the reservoir sample."""

    count: int
    total: float
    sample: Tuple[float, ...]

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def percentiles(
        self, fractions: Sequence[float]
    ) -> Tuple[Optional[float], ...]:
        """Nearest-rank percentiles over the reservoir (one sort)."""
        return percentiles(self.sample, fractions)


class Histogram(Instrument):
    """Observations summarized as count/total plus a bounded reservoir.

    The reservoir keeps the most recent ``reservoir`` observations (the
    same sliding-window semantics the shard latency deques used), so
    percentiles reflect recent behaviour while ``count``/``total`` stay
    lifetime-exact.
    """

    __slots__ = ("_count", "_total", "_sample")

    def __init__(
        self,
        name: str,
        labels: Optional[Mapping[str, object]] = None,
        lock: Optional[RLockType] = None,
        reservoir: int = DEFAULT_RESERVOIR,
    ):
        super().__init__(name, labels, lock)
        if reservoir < 1:
            raise ValueError(f"reservoir must be >= 1, got {reservoir}")
        self._count = 0
        self._total = 0.0
        self._sample: Deque[float] = deque(maxlen=int(reservoir))

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._total += value
            self._sample.append(value)

    def extend(self, values: Iterable[float]) -> None:
        """Observe many values under one lock acquisition."""
        with self._lock:
            for value in values:
                self._count += 1
                self._total += value
                self._sample.append(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> HistogramSnapshot:
        with self._lock:
            return HistogramSnapshot(
                count=self._count,
                total=self._total,
                sample=tuple(self._sample),
            )


#: What a snapshot records per instrument: a number, or a histogram view.
SnapshotValue = Union[int, float, HistogramSnapshot]


@dataclass(frozen=True)
class MetricsSnapshot:
    """One consistent cut across every instrument of a registry.

    ``values`` maps ``(name, labels)`` to the instrument's value at
    snapshot time (gauges contribute ``(value, highwater)`` via two
    entries: ``name`` and ``name + ".highwater"``).  The fold helpers
    are how cross-shard aggregation works: series of one metric differ
    only in labels, so summing/pooling across label sets *is* the fleet
    view.
    """

    values: Mapping[Tuple[str, LabelSet], SnapshotValue]

    def value(self, name: str, **labels: object) -> Optional[SnapshotValue]:
        """The recorded value of one fully-labelled instrument."""
        return self.values.get((name, _labelset(labels)))

    def series(self, name: str) -> Dict[LabelSet, SnapshotValue]:
        """Every label set recorded under ``name``."""
        return {
            labels: value
            for (found, labels), value in self.values.items()
            if found == name
        }

    def total(self, name: str) -> float:
        """Sum of a counter/gauge series across all label sets."""
        return sum(
            value
            for value in self.series(name).values()
            if not isinstance(value, HistogramSnapshot)
        )

    def merged_sample(self, name: str) -> Tuple[float, ...]:
        """All histogram reservoirs recorded under ``name``, pooled."""
        pooled: List[float] = []
        for value in self.series(name).values():
            if isinstance(value, HistogramSnapshot):
                pooled.extend(value.sample)
        return tuple(pooled)

    def describe(self) -> str:
        """A sorted, human-readable dump (debugging / demo aid)."""
        lines = []
        for (name, labels), value in sorted(self.values.items()):
            label_text = ",".join(f"{key}={val}" for key, val in labels)
            if isinstance(value, HistogramSnapshot):
                p50, p95, p99 = value.percentiles((0.50, 0.95, 0.99))
                rendered = (
                    f"count={value.count} mean={value.mean} "
                    f"p50={p50} p95={p95} p99={p99}"
                )
            else:
                rendered = str(value)
            lines.append(f"{name}{{{label_text}}} {rendered}")
        return "\n".join(lines)


class MetricsRegistry:
    """Get-or-create home of labelled instruments with consistent snapshots.

    One re-entrant lock is shared by the registry and every instrument it
    creates: individual bumps serialize on it (exact counts under the
    multithreaded shard pool) and :meth:`snapshot` holds it once to read
    every instrument — a consistent cut, never a torn one.  Creation is
    idempotent: asking for the same ``(name, labels)`` returns the same
    instrument; asking with a different instrument type is an error.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._instruments: Dict[Tuple[str, LabelSet], Instrument] = {}

    @property
    def lock(self) -> RLockType:
        """The shared lock (re-entrant; hold it to batch related bumps)."""
        return self._lock

    def _get(
        self, cls: type, name: str, labels: Mapping[str, object], **extra
    ) -> Instrument:
        key = (name, _labelset(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, labels, lock=self._lock, **extra)
                self._instruments[key] = instrument
            elif not isinstance(instrument, cls):
                raise ValueError(
                    f"metric {name!r} with labels {dict(labels)!r} is "
                    f"already a {type(instrument).__name__}, not a "
                    f"{cls.__name__}"
                )
            return instrument

    def counter(self, name: str, **labels: object) -> Counter:
        counter = self._get(Counter, name, labels)
        assert isinstance(counter, Counter)
        return counter

    def gauge(self, name: str, **labels: object) -> Gauge:
        gauge = self._get(Gauge, name, labels)
        assert isinstance(gauge, Gauge)
        return gauge

    def histogram(
        self,
        name: str,
        reservoir: int = DEFAULT_RESERVOIR,
        **labels: object,
    ) -> Histogram:
        histogram = self._get(Histogram, name, labels, reservoir=reservoir)
        assert isinstance(histogram, Histogram)
        return histogram

    def instruments(self) -> Tuple[Instrument, ...]:
        with self._lock:
            return tuple(self._instruments.values())

    def snapshot(self) -> MetricsSnapshot:
        """A consistent cut: one lock hold, every instrument read."""
        values: Dict[Tuple[str, LabelSet], SnapshotValue] = {}
        with self._lock:
            for (name, labels), instrument in self._instruments.items():
                if isinstance(instrument, Counter):
                    values[(name, labels)] = instrument.value
                elif isinstance(instrument, Gauge):
                    values[(name, labels)] = instrument.value
                    values[(name + ".highwater", labels)] = (
                        instrument.highwater
                    )
                elif isinstance(instrument, Histogram):
                    values[(name, labels)] = instrument.snapshot()
        return MetricsSnapshot(values=values)
