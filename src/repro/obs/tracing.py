"""Request-scoped tracing: span trees with a guarded no-op fast path.

A :class:`Tracer` produces one *span tree* per traced request or graph
job: the root span covers submit → resolution, and children mark where
the request spent its time — admission wait, queue wait, batch assembly,
plan lookup (hit/miss), execution, handoff-lane transit, per-shard
segment execution.  Spans carry a *track* (the visual lane they render
on: ``"client"``, ``"shard 0"``, ...) and may be linked by *flow ids*,
which the Chrome exporter turns into arrows between tracks — one arrow
per cross-shard handoff.

Tracing is **disabled by default** and the disabled path is deliberately
near-free: a disabled tracer's :meth:`Tracer.start_span` returns the
shared :data:`NULL_SPAN` singleton after a single attribute test, every
``NULL_SPAN`` method is a no-op, and the ambient-span hook the hot
layers use (:func:`active_span`) is one thread-local read returning
``None``.  Layers below the service (the solver's plan lookup, plan
execution, pipeline stage loops) never hold a tracer; they consult
:func:`active_span` and create child spans only when some caller
activated a real span — so a process that never traces pays one branch
per call site.

Span lifecycle is latch-like: :meth:`Span.finish` is idempotent and
thread-safe (a span may be started on the submitting thread and finished
by a shard worker), and the tracer counts open spans so tests can assert
that no code path — including shed/expired/errored requests — leaks an
unfinished span.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from . import export as _export

__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "active_span",
]

_ACTIVE = threading.local()


def active_span() -> Optional["Span"]:
    """The span the current thread activated, or ``None``.

    The ambient hook for layers that should not know about tracers:
    ``Solver`` wraps plan lookups and ``ProgramSegment`` wraps stage
    execution in children of whatever span is active.  Costs one
    thread-local read when nothing is active.
    """
    return getattr(_ACTIVE, "span", None)


class Span:
    """One timed operation in a trace tree.

    Entering a span as a context manager *activates* it on the current
    thread (so :func:`active_span` children nest under it) and finishes
    it on exit — with ``status="error"`` if the block raised.  Spans
    finished explicitly (roots closed by whichever thread resolves the
    request) use :meth:`finish`, which is idempotent.
    """

    __slots__ = (
        "tracer",
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "category",
        "track",
        "start",
        "end",
        "status",
        "error",
        "args",
        "flows_in",
        "flows_out",
        "_prev_active",
    )

    #: Real spans record; the :data:`NULL_SPAN` singleton reports False.
    recording = True

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        track: str,
        category: str,
        start: float,
    ):
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.track = track
        self.category = category
        self.start = start
        self.end: Optional[float] = None
        self.status = "open"
        self.error: Optional[str] = None
        self.args: Dict[str, Any] = {}
        self.flows_in: Tuple[int, ...] = ()
        self.flows_out: Tuple[int, ...] = ()
        self._prev_active: Optional[Span] = None

    # -- annotations ------------------------------------------------------------
    def annotate(self, **args: Any) -> "Span":
        """Attach key/value context (kind, shard, cache hit/miss, ...)."""
        self.args.update(args)
        return self

    def flow_in(self, flow_id: int) -> "Span":
        """Mark this span as the *target* of flow ``flow_id`` (arrow head)."""
        self.flows_in += (int(flow_id),)
        return self

    def flow_out(self, flow_id: int) -> "Span":
        """Mark this span as the *source* of flow ``flow_id`` (arrow tail)."""
        self.flows_out += (int(flow_id),)
        return self

    # -- children ---------------------------------------------------------------
    def child(
        self,
        name: str,
        track: Optional[str] = None,
        category: str = "",
        start: Optional[float] = None,
        **args: Any,
    ) -> "Span":
        """Start a child span (same trace, same track unless overridden)."""
        return self.tracer.start_span(
            name,
            parent=self,
            track=track if track is not None else self.track,
            category=category,
            start=start,
            **args,
        )

    # -- lifecycle --------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Seconds from start to finish (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def finish(
        self,
        status: str = "ok",
        error: Optional[BaseException] = None,
        end: Optional[float] = None,
    ) -> None:
        """Close the span (idempotent; safe from any thread)."""
        self.tracer._finish(self, status, error, end)

    def __enter__(self) -> "Span":
        self._prev_active = getattr(_ACTIVE, "span", None)
        _ACTIVE.span = self
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        _ACTIVE.span = self._prev_active
        self._prev_active = None
        if exc_type is not None:
            self.finish(status="error", error=exc_value)
        else:
            self.finish()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, trace={self.trace_id}, "
            f"track={self.track!r}, status={self.status!r})"
        )


class _NullSpan:
    """The shared do-nothing span a disabled tracer hands out."""

    __slots__ = ()

    recording = False
    trace_id = None
    span_id = None
    parent_id = None
    name = ""
    track = ""
    category = ""
    start = 0.0
    end = 0.0
    status = "ok"
    error = None
    args: Dict[str, Any] = {}
    flows_in: Tuple[int, ...] = ()
    flows_out: Tuple[int, ...] = ()
    finished = True
    duration = 0.0

    def annotate(self, **args: Any) -> "_NullSpan":
        return self

    def flow_in(self, flow_id: int) -> "_NullSpan":
        return self

    def flow_out(self, flow_id: int) -> "_NullSpan":
        return self

    def child(self, name: str, **kwargs: Any) -> "_NullSpan":
        return self

    def finish(self, *args: Any, **kwargs: Any) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NULL_SPAN"


#: The span every disabled code path shares; all methods are no-ops.
NULL_SPAN = _NullSpan()


class Tracer:
    """Produces, collects and exports spans for one process.

    ``enabled=False`` (what :data:`NULL_TRACER` is) turns every
    ``start_*`` call into a single-branch return of :data:`NULL_SPAN` —
    the guarded no-op path the serving benchmarks run under.  Enabled
    tracers are lock-cheap: span-id allocation and finish-time collection
    take one short lock; annotation and flow marking are lock-free on the
    owning thread.

    ``max_spans`` bounds memory: past it, finished spans are counted in
    :attr:`dropped` instead of retained (open-span accounting stays
    exact either way).
    """

    def __init__(self, enabled: bool = True, max_spans: int = 200_000):
        self._enabled = bool(enabled)
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._open = 0
        self._next_id = 1
        self._next_flow = 1
        self._dropped = 0
        self._max_spans = int(max_spans)
        self.epoch = time.perf_counter()

    # -- introspection ----------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def open_spans(self) -> int:
        """Started-but-unfinished spans — must be 0 for a drained service."""
        with self._lock:
            return self._open

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def now(self) -> float:
        """The tracer's clock (``time.perf_counter``)."""
        return time.perf_counter()

    def spans(self, trace_id: Optional[int] = None) -> Tuple[Span, ...]:
        """Finished spans, optionally restricted to one trace."""
        with self._lock:
            collected = tuple(self._spans)
        if trace_id is None:
            return collected
        return tuple(span for span in collected if span.trace_id == trace_id)

    def trace_ids(self) -> Tuple[int, ...]:
        """Distinct trace ids among the finished spans, in first-seen order."""
        seen: Dict[int, None] = {}
        for span in self.spans():
            seen.setdefault(span.trace_id, None)
        return tuple(seen)

    # -- producing spans --------------------------------------------------------
    def start_trace(
        self, name: str, track: str = "client", **args: Any
    ) -> Span:
        """Open the root span of a new trace (no parent, fresh trace id)."""
        if not self._enabled:
            return NULL_SPAN  # type: ignore[return-value]
        return self._start(name, None, None, track, "request", None, args)

    def start_span(
        self,
        name: str,
        parent: Optional[Span] = None,
        track: str = "",
        category: str = "",
        start: Optional[float] = None,
        **args: Any,
    ) -> Span:
        """Open a span (under ``parent`` when given).

        ``start`` backdates the span — how retroactive spans like "queue
        wait" are recorded once both endpoints are known, which is also
        what keeps failure paths leak-free: a span that might never be
        closed is simply never opened.
        """
        if not self._enabled:
            return NULL_SPAN  # type: ignore[return-value]
        if parent is not None and not parent.recording:
            parent = None
        trace_id = parent.trace_id if parent is not None else None
        parent_id = parent.span_id if parent is not None else None
        return self._start(
            name, trace_id, parent_id, track, category, start, args
        )

    def new_flow(self) -> int:
        """A fresh flow id linking a producer span to a consumer span."""
        with self._lock:
            flow = self._next_flow
            self._next_flow += 1
            return flow

    def _start(
        self,
        name: str,
        trace_id: Optional[int],
        parent_id: Optional[int],
        track: str,
        category: str,
        start: Optional[float],
        args: Dict[str, Any],
    ) -> Span:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            self._open += 1
        span = Span(
            tracer=self,
            trace_id=trace_id if trace_id is not None else span_id,
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            track=track,
            category=category,
            start=start if start is not None else time.perf_counter(),
        )
        if args:
            span.args.update(args)
        return span

    def _finish(
        self,
        span: Span,
        status: str,
        error: Optional[BaseException],
        end: Optional[float],
    ) -> None:
        with self._lock:
            if span.end is not None:
                return  # idempotent: first finish wins
            span.end = end if end is not None else time.perf_counter()
            span.status = status
            if error is not None:
                span.error = f"{type(error).__name__}: {error}"
            self._open -= 1
            if len(self._spans) < self._max_spans:
                self._spans.append(span)
            else:
                self._dropped += 1

    # -- export -----------------------------------------------------------------
    def chrome_trace(self) -> Dict[str, Any]:
        """The finished spans as a Chrome trace-event JSON object.

        Load the written file in Perfetto (https://ui.perfetto.dev) or
        ``chrome://tracing``: one track per shard worker plus the client
        track, flow arrows across handoff lanes.
        """
        return _export.chrome_trace(self.spans(), epoch=self.epoch)

    def write_chrome_trace(self, path: "str | Any") -> None:
        """Write :meth:`chrome_trace` as JSON to ``path``."""
        _export.write_chrome_trace(path, self.spans(), epoch=self.epoch)

    def describe_trace(self, trace_id: Optional[int] = None) -> str:
        """Plain-text flamegraph-style rendering of one (or every) trace."""
        return _export.describe_trace(self.spans(), trace_id=trace_id)

    def clear(self) -> None:
        """Drop collected spans (open-span accounting is preserved)."""
        with self._lock:
            self._spans.clear()
            self._dropped = 0


#: The process-wide disabled tracer: the default everywhere.
NULL_TRACER = Tracer(enabled=False)
