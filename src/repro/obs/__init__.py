"""repro.obs — observability for the serving stack.

Two halves, one package:

* :mod:`repro.obs.tracing` — request-scoped span trees.  A
  :class:`Tracer` follows one request (or one multi-shard pipelined
  graph job) from submit to resolution: admission wait, queue wait,
  batch assembly, plan lookup (hit/miss), execution, handoff-lane
  transits and per-shard segment spans, all in one tree.  Disabled by
  default with a guarded no-op path (:data:`NULL_SPAN` /
  :data:`NULL_TRACER`) so untraced serving pays ~nothing.

* :mod:`repro.obs.metrics` — typed :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instruments in a :class:`MetricsRegistry` whose
  single lock makes cross-instrument snapshots consistent and bumps
  from the shard pool exact.  The service telemetry
  (:class:`~repro.service.telemetry.ShardStats` /
  :class:`~repro.service.telemetry.ServiceStats`) is a view over this
  registry.

:mod:`repro.obs.export` renders collected spans as Chrome trace-event
JSON (Perfetto / ``chrome://tracing``) with one track per shard worker
and flow arrows across handoff lanes, or as a plain-text tree via
:func:`describe_trace`.
"""

from .export import chrome_trace, describe_trace, write_chrome_trace
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    percentiles,
)
from .tracing import NULL_SPAN, NULL_TRACER, Span, Tracer, active_span

__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Span",
    "Tracer",
    "active_span",
    "chrome_trace",
    "describe_trace",
    "percentiles",
    "write_chrome_trace",
]
