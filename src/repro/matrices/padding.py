"""Padding dense operands to block multiples of the array size.

The DBT transformations partition a dense matrix into ``w x w`` blocks,
where ``w`` is the systolic array size.  When the matrix dimensions are not
integer multiples of ``w`` the paper extends the matrix "with zero-valued
elements in rows and/or columns" (Section 2, point a).  This module holds
the padding / cropping helpers used throughout the package.
"""

from __future__ import annotations

import numpy as np

from ..errors import ArraySizeError, ShapeError

__all__ = [
    "block_count",
    "padded_size",
    "pad_matrix",
    "pad_vector",
    "crop_matrix",
    "crop_vector",
    "validate_array_size",
]


def validate_array_size(w: int) -> int:
    """Validate a systolic array size and return it as a plain ``int``.

    The arrays considered in the paper have at least two processing
    elements for the linear case (a bandwidth-1 "band" degenerates to a
    single diagonal and carries no lower triangular blocks), but ``w = 1``
    is still a well defined, if trivial, configuration, so only
    non-positive and non-integral values are rejected.
    """
    if not isinstance(w, (int, np.integer)):
        raise ArraySizeError(f"array size must be an integer, got {type(w).__name__}")
    if w < 1:
        raise ArraySizeError(f"array size must be >= 1, got {w}")
    return int(w)


def block_count(dimension: int, w: int) -> int:
    """Number of ``w``-sized blocks covering ``dimension`` (``ceil(dim / w)``).

    This is the paper's overbar notation: ``n_bar = ceil(n / w)``.
    """
    w = validate_array_size(w)
    if dimension < 1:
        raise ShapeError(f"dimension must be >= 1, got {dimension}")
    return -(-int(dimension) // w)


def padded_size(dimension: int, w: int) -> int:
    """Smallest multiple of ``w`` that is >= ``dimension``."""
    return block_count(dimension, w) * validate_array_size(w)


def pad_matrix(matrix: np.ndarray, w: int) -> np.ndarray:
    """Zero-pad ``matrix`` so both dimensions are multiples of ``w``.

    Returns a new array; the input is never modified.  One- and
    two-dimensional inputs are accepted; vectors are promoted to column
    semantics by :func:`pad_vector` instead.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ShapeError(f"pad_matrix expects a 2-D array, got ndim={matrix.ndim}")
    rows, cols = matrix.shape
    padded_rows = padded_size(rows, w)
    padded_cols = padded_size(cols, w)
    if (padded_rows, padded_cols) == (rows, cols):
        return matrix.copy()
    out = np.zeros((padded_rows, padded_cols), dtype=float)
    out[:rows, :cols] = matrix
    return out


def pad_vector(vector: np.ndarray, w: int) -> np.ndarray:
    """Zero-pad a vector so its length is a multiple of ``w``."""
    vector = np.asarray(vector, dtype=float)
    if vector.ndim != 1:
        raise ShapeError(f"pad_vector expects a 1-D array, got ndim={vector.ndim}")
    length = vector.shape[0]
    target = padded_size(length, w)
    if target == length:
        return vector.copy()
    out = np.zeros(target, dtype=float)
    out[:length] = vector
    return out


def crop_matrix(matrix: np.ndarray, rows: int, cols: int) -> np.ndarray:
    """Crop a padded matrix back to its original ``rows x cols`` shape."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ShapeError(f"crop_matrix expects a 2-D array, got ndim={matrix.ndim}")
    if matrix.shape[0] < rows or matrix.shape[1] < cols:
        raise ShapeError(
            f"cannot crop array of shape {matrix.shape} to ({rows}, {cols})"
        )
    return matrix[:rows, :cols].copy()


def crop_vector(vector: np.ndarray, length: int) -> np.ndarray:
    """Crop a padded vector back to its original ``length``."""
    vector = np.asarray(vector, dtype=float)
    if vector.ndim != 1:
        raise ShapeError(f"crop_vector expects a 1-D array, got ndim={vector.ndim}")
    if vector.shape[0] < length:
        raise ShapeError(
            f"cannot crop vector of length {vector.shape[0]} to {length}"
        )
    return vector[:length].copy()
