"""Band matrix storage and reference kernels.

Kung's systolic arrays operate on *band* matrices: the linear contraflow
array multiplies a band matrix by a vector, and the hexagonal array
multiplies two band matrices.  The DBT transformations of the paper turn a
dense matrix into a band matrix whose bandwidth equals the array size, so a
first-class band matrix type is the natural interchange format between the
transformation code (:mod:`repro.core`) and the simulator
(:mod:`repro.systolic`).

:class:`BandMatrix` stores one 1-D array per diagonal (diagonal-major
storage), which is exactly the order in which the systolic arrays consume
the data: each diagonal of the band feeds one input channel of the array.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..errors import BandwidthError, ShapeError

__all__ = ["BandMatrix"]


class BandMatrix:
    """A rectangular matrix with entries restricted to a diagonal band.

    Parameters
    ----------
    rows, cols:
        Matrix dimensions.
    lower:
        Number of sub-diagonals in the band (entries with ``i - j`` in
        ``1..lower``).
    upper:
        Number of super-diagonals in the band (entries with ``j - i`` in
        ``1..upper``).

    The main diagonal is always part of the band, so the bandwidth is
    ``lower + upper + 1``.  An upper-band matrix of bandwidth ``w`` (the
    shape produced by DBT-by-rows) has ``lower == 0`` and
    ``upper == w - 1``.
    """

    def __init__(self, rows: int, cols: int, lower: int, upper: int):
        if rows < 1 or cols < 1:
            raise ShapeError(f"band matrix dimensions must be >= 1, got ({rows}, {cols})")
        if lower < 0 or upper < 0:
            raise BandwidthError(
                f"lower/upper band counts must be >= 0, got ({lower}, {upper})"
            )
        self._rows = int(rows)
        self._cols = int(cols)
        self._lower = int(lower)
        self._upper = int(upper)
        self._diagonals: Dict[int, np.ndarray] = {}
        for offset in range(-self._lower, self._upper + 1):
            length = self.diagonal_length(offset)
            if length > 0:
                self._diagonals[offset] = np.zeros(length, dtype=float)

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        lower: int,
        upper: int,
        *,
        check: bool = True,
    ) -> "BandMatrix":
        """Build a band matrix from a dense array.

        When ``check`` is true (the default) any nonzero entry outside the
        declared band raises :class:`~repro.errors.BandwidthError`; with
        ``check=False`` out-of-band entries are silently dropped, which is
        occasionally useful for extracting a band from a dense operand.
        """
        dense = np.asarray(dense, dtype=float)
        if dense.ndim != 2:
            raise ShapeError(f"from_dense expects a 2-D array, got ndim={dense.ndim}")
        rows, cols = dense.shape
        band = cls(rows, cols, lower, upper)
        if check:
            mask = band.band_mask()
            outside = dense.copy()
            outside[mask] = 0.0
            if np.any(outside != 0.0):
                bad = np.argwhere(outside != 0.0)[0]
                raise BandwidthError(
                    f"entry ({bad[0]}, {bad[1]}) is nonzero but outside the "
                    f"declared band (lower={lower}, upper={upper})"
                )
        for offset in band.offsets():
            band._diagonals[offset][:] = np.diagonal(dense, offset=offset)
        return band

    @classmethod
    def upper_band_from_dense(cls, dense: np.ndarray, bandwidth: int) -> "BandMatrix":
        """Upper-band matrix (main diagonal plus ``bandwidth - 1`` super-diagonals)."""
        if bandwidth < 1:
            raise BandwidthError(f"bandwidth must be >= 1, got {bandwidth}")
        return cls.from_dense(dense, lower=0, upper=bandwidth - 1)

    @classmethod
    def lower_band_from_dense(cls, dense: np.ndarray, bandwidth: int) -> "BandMatrix":
        """Lower-band matrix (main diagonal plus ``bandwidth - 1`` sub-diagonals)."""
        if bandwidth < 1:
            raise BandwidthError(f"bandwidth must be >= 1, got {bandwidth}")
        return cls.from_dense(dense, lower=bandwidth - 1, upper=0)

    # -- geometry ------------------------------------------------------------
    @property
    def rows(self) -> int:
        return self._rows

    @property
    def cols(self) -> int:
        return self._cols

    @property
    def shape(self) -> Tuple[int, int]:
        return (self._rows, self._cols)

    @property
    def lower(self) -> int:
        """Number of sub-diagonals."""
        return self._lower

    @property
    def upper(self) -> int:
        """Number of super-diagonals."""
        return self._upper

    @property
    def bandwidth(self) -> int:
        """Total band width: ``lower + upper + 1``."""
        return self._lower + self._upper + 1

    def offsets(self) -> Iterator[int]:
        """Diagonal offsets present in the band, from lowest to highest."""
        return iter(sorted(self._diagonals))

    def diagonal_length(self, offset: int) -> int:
        """Number of matrix entries on the diagonal with offset ``j - i``."""
        if offset >= 0:
            return max(0, min(self._rows, self._cols - offset))
        return max(0, min(self._cols, self._rows + offset))

    def in_band(self, i: int, j: int) -> bool:
        """Whether position ``(i, j)`` lies inside the band."""
        if not (0 <= i < self._rows and 0 <= j < self._cols):
            return False
        return -self._lower <= j - i <= self._upper

    def band_mask(self) -> np.ndarray:
        """Boolean mask of in-band positions, shape ``(rows, cols)``."""
        i = np.arange(self._rows)[:, None]
        j = np.arange(self._cols)[None, :]
        offset = j - i
        return (offset >= -self._lower) & (offset <= self._upper)

    def band_positions(self) -> int:
        """Number of storage positions inside the band."""
        return int(sum(len(d) for d in self._diagonals.values()))

    # -- element access --------------------------------------------------------
    def _locate(self, i: int, j: int) -> Tuple[int, int]:
        if not (0 <= i < self._rows and 0 <= j < self._cols):
            raise ShapeError(
                f"index ({i}, {j}) out of range for shape {self.shape}"
            )
        offset = j - i
        if not (-self._lower <= offset <= self._upper):
            raise BandwidthError(
                f"position ({i}, {j}) lies outside the band "
                f"(lower={self._lower}, upper={self._upper})"
            )
        # Index along the diagonal: for offset >= 0 the diagonal starts at
        # row 0, for offset < 0 it starts at column 0.
        along = i if offset >= 0 else j
        return offset, along

    def get(self, i: int, j: int) -> float:
        """Value at ``(i, j)``; zero if outside the band but inside the shape."""
        if not (0 <= i < self._rows and 0 <= j < self._cols):
            raise ShapeError(
                f"index ({i}, {j}) out of range for shape {self.shape}"
            )
        if not self.in_band(i, j):
            return 0.0
        offset, along = self._locate(i, j)
        return float(self._diagonals[offset][along])

    def set(self, i: int, j: int, value: float) -> None:
        """Assign ``value`` at ``(i, j)``; raises if the position is out of band."""
        offset, along = self._locate(i, j)
        self._diagonals[offset][along] = float(value)

    def diagonal(self, offset: int) -> np.ndarray:
        """The diagonal with offset ``j - i`` as a copy."""
        if offset not in self._diagonals:
            raise BandwidthError(
                f"diagonal offset {offset} is outside the band "
                f"(lower={self._lower}, upper={self._upper})"
            )
        return self._diagonals[offset].copy()

    def set_diagonal(self, offset: int, values: np.ndarray) -> None:
        """Assign a full diagonal at once."""
        if offset not in self._diagonals:
            raise BandwidthError(
                f"diagonal offset {offset} is outside the band "
                f"(lower={self._lower}, upper={self._upper})"
            )
        values = np.asarray(values, dtype=float)
        expected = self.diagonal_length(offset)
        if values.shape != (expected,):
            raise ShapeError(
                f"diagonal {offset} expects {expected} values, got shape {values.shape}"
            )
        self._diagonals[offset][:] = values

    # -- conversions -----------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Expand to a dense :class:`numpy.ndarray`."""
        out = np.zeros(self.shape, dtype=float)
        for offset, values in self._diagonals.items():
            if offset >= 0:
                rows = np.arange(len(values))
                cols = rows + offset
            else:
                cols = np.arange(len(values))
                rows = cols - offset
            out[rows, cols] = values
        return out

    def transpose(self) -> "BandMatrix":
        """Transposed band matrix (lower and upper swap)."""
        transposed = BandMatrix(self._cols, self._rows, self._upper, self._lower)
        for offset, values in self._diagonals.items():
            transposed._diagonals[-offset][:] = values
        return transposed

    def copy(self) -> "BandMatrix":
        out = BandMatrix(self._rows, self._cols, self._lower, self._upper)
        for offset, values in self._diagonals.items():
            out._diagonals[offset][:] = values
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BandMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and self._lower == other._lower
            and self._upper == other._upper
            and all(
                np.array_equal(self._diagonals[o], other._diagonals[o])
                for o in self._diagonals
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BandMatrix(shape={self.shape}, lower={self._lower}, "
            f"upper={self._upper})"
        )

    # -- reference kernels -------------------------------------------------------
    def matvec(self, x: np.ndarray, b: Optional[np.ndarray] = None) -> np.ndarray:
        """Reference band matrix-vector product ``y = A x (+ b)``.

        This is the mathematical operation the linear systolic array
        computes; it is used as the functional oracle against which the
        cycle-accurate simulation is checked.
        """
        x = np.asarray(x, dtype=float)
        if x.shape != (self._cols,):
            raise ShapeError(
                f"matvec expects a vector of length {self._cols}, got {x.shape}"
            )
        y = np.zeros(self._rows, dtype=float)
        for offset, values in self._diagonals.items():
            if offset >= 0:
                rows = np.arange(len(values))
                cols = rows + offset
            else:
                cols = np.arange(len(values))
                rows = cols - offset
            np.add.at(y, rows, values * x[cols])
        if b is not None:
            b = np.asarray(b, dtype=float)
            if b.shape != (self._rows,):
                raise ShapeError(
                    f"matvec expects b of length {self._rows}, got {b.shape}"
                )
            y = y + b
        return y

    def matmul(self, other: "BandMatrix") -> "BandMatrix":
        """Reference band matrix-matrix product.

        The product of a band matrix with ``lower1/upper1`` diagonals by one
        with ``lower2/upper2`` diagonals is itself a band matrix with at most
        ``lower1 + lower2`` sub-diagonals and ``upper1 + upper2``
        super-diagonals; the hexagonal array relies on exactly this fact.
        """
        if not isinstance(other, BandMatrix):
            raise ShapeError("matmul expects another BandMatrix")
        if self._cols != other._rows:
            raise ShapeError(
                f"matmul shape mismatch: {self.shape} @ {other.shape}"
            )
        dense = self.to_dense() @ other.to_dense()
        lower = min(self._lower + other._lower, self._rows - 1)
        upper = min(self._upper + other._upper, other._cols - 1)
        return BandMatrix.from_dense(dense, lower=lower, upper=upper, check=True)
