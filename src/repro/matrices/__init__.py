"""Block, band and dense matrix infrastructure used by the DBT transformations."""

from .banded import BandMatrix
from .blocks import (
    BlockGrid,
    diagonal_part,
    merge_triangles,
    merge_udl,
    split_udl,
    strict_lower_triangle,
    strict_upper_triangle,
    triangular_split,
    upper_triangle,
)
from .dense import (
    MatMulProblem,
    MatVecProblem,
    as_matrix,
    as_vector,
    random_matmul_problem,
    random_matrix,
    random_matvec_problem,
    random_vector,
)
from .padding import (
    block_count,
    crop_matrix,
    crop_vector,
    pad_matrix,
    pad_vector,
    padded_size,
    validate_array_size,
)

__all__ = [
    "BandMatrix",
    "BlockGrid",
    "MatMulProblem",
    "MatVecProblem",
    "as_matrix",
    "as_vector",
    "block_count",
    "crop_matrix",
    "crop_vector",
    "diagonal_part",
    "merge_triangles",
    "merge_udl",
    "pad_matrix",
    "pad_vector",
    "padded_size",
    "random_matmul_problem",
    "random_matrix",
    "random_matvec_problem",
    "random_vector",
    "split_udl",
    "strict_lower_triangle",
    "strict_upper_triangle",
    "triangular_split",
    "upper_triangle",
    "validate_array_size",
]
