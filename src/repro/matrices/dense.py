"""Dense operand validation and reproducible problem generators.

The tests, benchmarks and examples all need dense matrices and vectors of
arbitrary, *not necessarily array-size aligned*, dimensions.  Keeping the
generators in the library (instead of scattering ``np.random`` calls
around) makes every experiment reproducible from an explicit seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import ShapeError

__all__ = [
    "as_matrix",
    "as_vector",
    "random_matrix",
    "random_vector",
    "MatVecProblem",
    "MatMulProblem",
    "random_matvec_problem",
    "random_matmul_problem",
]


def as_matrix(value: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Validate and convert ``value`` to a 2-D float array."""
    arr = np.asarray(value, dtype=float)
    if arr.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got ndim={arr.ndim}")
    if arr.shape[0] < 1 or arr.shape[1] < 1:
        raise ShapeError(f"{name} must be non-empty, got shape {arr.shape}")
    return arr


def as_vector(value: np.ndarray, name: str = "vector") -> np.ndarray:
    """Validate and convert ``value`` to a 1-D float array."""
    arr = np.asarray(value, dtype=float)
    if arr.ndim != 1:
        raise ShapeError(f"{name} must be 1-D, got ndim={arr.ndim}")
    if arr.shape[0] < 1:
        raise ShapeError(f"{name} must be non-empty")
    return arr


def random_matrix(
    rows: int, cols: int, *, seed: Optional[int] = None, low: float = -1.0, high: float = 1.0
) -> np.ndarray:
    """Uniform random dense matrix with a reproducible seed."""
    rng = np.random.default_rng(seed)
    return rng.uniform(low, high, size=(rows, cols))


def random_vector(
    length: int, *, seed: Optional[int] = None, low: float = -1.0, high: float = 1.0
) -> np.ndarray:
    """Uniform random dense vector with a reproducible seed."""
    rng = np.random.default_rng(seed)
    return rng.uniform(low, high, size=length)


@dataclass(frozen=True)
class MatVecProblem:
    """A dense ``y = A x + b`` problem instance."""

    matrix: np.ndarray
    x: np.ndarray
    b: np.ndarray

    @property
    def shape(self) -> Tuple[int, int]:
        return self.matrix.shape

    def reference(self) -> np.ndarray:
        """Dense NumPy reference result."""
        return self.matrix @ self.x + self.b


@dataclass(frozen=True)
class MatMulProblem:
    """A dense ``C = A B + E`` problem instance."""

    a: np.ndarray
    b: np.ndarray
    e: np.ndarray

    @property
    def shape(self) -> Tuple[int, int, int]:
        """``(n, p, m)`` for ``A`` of shape ``(n, p)`` and ``B`` of ``(p, m)``."""
        return (self.a.shape[0], self.a.shape[1], self.b.shape[1])

    def reference(self) -> np.ndarray:
        """Dense NumPy reference result."""
        return self.a @ self.b + self.e


def random_matvec_problem(
    rows: int, cols: int, *, seed: Optional[int] = None, with_bias: bool = True
) -> MatVecProblem:
    """Generate a reproducible dense matrix-vector problem."""
    rng = np.random.default_rng(seed)
    matrix = rng.uniform(-1.0, 1.0, size=(rows, cols))
    x = rng.uniform(-1.0, 1.0, size=cols)
    b = rng.uniform(-1.0, 1.0, size=rows) if with_bias else np.zeros(rows)
    return MatVecProblem(matrix=matrix, x=x, b=b)


def random_matmul_problem(
    n: int, p: int, m: int, *, seed: Optional[int] = None, with_addend: bool = True
) -> MatMulProblem:
    """Generate a reproducible dense matrix-matrix problem."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1.0, 1.0, size=(n, p))
    b = rng.uniform(-1.0, 1.0, size=(p, m))
    e = rng.uniform(-1.0, 1.0, size=(n, m)) if with_addend else np.zeros((n, m))
    return MatMulProblem(a=a, b=b, e=e)
