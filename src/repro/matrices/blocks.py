"""Block-level views of dense matrices and triangular block splitting.

The DBT transformations operate on a dense matrix through a grid of
``w x w`` blocks (the paper's ``A_ij`` submatrices).  Each block is further
split into an *upper* triangular part ``U_ij`` (including the main
diagonal, as the paper assumes without loss of generality) and a *strictly
lower* triangular part ``L_ij``.  This module provides:

* :class:`BlockGrid` — an indexable grid of ``w x w`` blocks over a padded
  dense matrix;
* :func:`triangular_split` — the ``A_ij -> (U_ij, L_ij)`` decomposition;
* :func:`split_udl` — the three-way ``U / D / L`` decomposition used for
  the matrix-matrix result blocks of Fig. 4 and the appendix;
* small assembly helpers used when rebuilding dense data from triangles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from ..errors import ShapeError
from .padding import block_count, pad_matrix, validate_array_size

__all__ = [
    "BlockGrid",
    "triangular_split",
    "merge_triangles",
    "split_udl",
    "merge_udl",
    "upper_triangle",
    "strict_lower_triangle",
    "strict_upper_triangle",
    "diagonal_part",
]


def upper_triangle(block: np.ndarray) -> np.ndarray:
    """Upper triangular part of ``block`` including the main diagonal."""
    block = _as_square_block(block)
    return np.triu(block)


def strict_lower_triangle(block: np.ndarray) -> np.ndarray:
    """Strictly lower triangular part of ``block`` (diagonal excluded)."""
    block = _as_square_block(block)
    return np.tril(block, k=-1)


def strict_upper_triangle(block: np.ndarray) -> np.ndarray:
    """Strictly upper triangular part of ``block`` (diagonal excluded)."""
    block = _as_square_block(block)
    return np.triu(block, k=1)


def diagonal_part(block: np.ndarray) -> np.ndarray:
    """Diagonal part of ``block`` as a full ``w x w`` matrix."""
    block = _as_square_block(block)
    return np.diag(np.diag(block))


def triangular_split(block: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split a ``w x w`` block into ``(U, L)``.

    ``U`` is the upper triangle including the main diagonal and ``L`` is
    the strictly lower triangle, so that ``U + L == block`` exactly.  This
    is the decomposition of Section 2, point b of the paper (the main
    diagonal is assigned to ``U``).
    """
    block = _as_square_block(block)
    return np.triu(block), np.tril(block, k=-1)


def merge_triangles(upper: np.ndarray, lower: np.ndarray) -> np.ndarray:
    """Inverse of :func:`triangular_split`: rebuild the block ``U + L``.

    The inputs are validated to actually be an (inclusive) upper triangle
    and a strict lower triangle so that silent double counting of the
    diagonal cannot happen.
    """
    upper = _as_square_block(upper)
    lower = _as_square_block(lower)
    if upper.shape != lower.shape:
        raise ShapeError(
            f"triangle shapes differ: {upper.shape} vs {lower.shape}"
        )
    if not np.array_equal(upper, np.triu(upper)):
        raise ShapeError("merge_triangles: first operand is not upper triangular")
    if not np.array_equal(lower, np.tril(lower, k=-1)):
        raise ShapeError(
            "merge_triangles: second operand is not strictly lower triangular"
        )
    return upper + lower


def split_udl(block: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split a ``w x w`` block into ``(U, D, L)``.

    ``U`` is the strictly upper triangle, ``D`` the diagonal and ``L`` the
    strictly lower triangle; ``U + D + L == block``.  This three-way split
    is the one used for the matrix-matrix result blocks (Fig. 4 and the
    appendix), where each square block of the result band is divided into
    upper, diagonal and lower pieces.
    """
    block = _as_square_block(block)
    return np.triu(block, k=1), np.diag(np.diag(block)), np.tril(block, k=-1)


def merge_udl(upper: np.ndarray, diag: np.ndarray, lower: np.ndarray) -> np.ndarray:
    """Inverse of :func:`split_udl`, with structural validation."""
    upper = _as_square_block(upper)
    diag = _as_square_block(diag)
    lower = _as_square_block(lower)
    if not (upper.shape == diag.shape == lower.shape):
        raise ShapeError("merge_udl: operand shapes differ")
    if not np.array_equal(upper, np.triu(upper, k=1)):
        raise ShapeError("merge_udl: U operand is not strictly upper triangular")
    if not np.array_equal(diag, np.diag(np.diag(diag))):
        raise ShapeError("merge_udl: D operand is not diagonal")
    if not np.array_equal(lower, np.tril(lower, k=-1)):
        raise ShapeError("merge_udl: L operand is not strictly lower triangular")
    return upper + diag + lower


def _as_square_block(block: np.ndarray) -> np.ndarray:
    block = np.asarray(block, dtype=float)
    if block.ndim != 2 or block.shape[0] != block.shape[1]:
        raise ShapeError(f"expected a square block, got shape {block.shape}")
    return block


@dataclass(frozen=True)
class BlockIndex:
    """Index of a ``w x w`` block inside a :class:`BlockGrid`."""

    row: int
    col: int


class BlockGrid:
    """Grid view of a dense matrix as ``w x w`` blocks.

    The underlying matrix is zero-padded (a copy; the original is left
    untouched) so that both dimensions are exact multiples of ``w``.  The
    grid exposes the paper's notation:

    * ``grid.block_rows`` is ``n_bar = ceil(n / w)``
    * ``grid.block_cols`` is ``m_bar = ceil(m / w)``
    * ``grid.block(i, j)`` is the submatrix ``A_ij``
    * ``grid.upper(i, j)`` / ``grid.lower(i, j)`` are ``U_ij`` / ``L_ij``
    """

    def __init__(self, matrix: np.ndarray, w: int):
        self._w = validate_array_size(w)
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ShapeError(f"BlockGrid expects a 2-D array, got ndim={matrix.ndim}")
        self._original_shape = matrix.shape
        self._padded = pad_matrix(matrix, self._w)
        self._block_rows = block_count(matrix.shape[0], self._w)
        self._block_cols = block_count(matrix.shape[1], self._w)

    # -- basic geometry ----------------------------------------------------
    @property
    def w(self) -> int:
        """Block (and systolic array) size."""
        return self._w

    @property
    def original_shape(self) -> Tuple[int, int]:
        """Shape of the matrix the grid was built from, before padding."""
        return self._original_shape

    @property
    def padded(self) -> np.ndarray:
        """The zero-padded dense matrix backing the grid (a copy)."""
        return self._padded.copy()

    @property
    def padded_shape(self) -> Tuple[int, int]:
        return self._padded.shape

    @property
    def block_rows(self) -> int:
        """Number of block rows (the paper's ``n_bar``)."""
        return self._block_rows

    @property
    def block_cols(self) -> int:
        """Number of block columns (the paper's ``m_bar``)."""
        return self._block_cols

    @property
    def block_shape(self) -> Tuple[int, int]:
        return (self._block_rows, self._block_cols)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockGrid(shape={self._original_shape}, w={self._w}, "
            f"blocks={self.block_shape})"
        )

    # -- block access ------------------------------------------------------
    def _check_index(self, i: int, j: int) -> None:
        if not (0 <= i < self._block_rows and 0 <= j < self._block_cols):
            raise ShapeError(
                f"block index ({i}, {j}) out of range for grid {self.block_shape}"
            )

    def block(self, i: int, j: int) -> np.ndarray:
        """The ``w x w`` submatrix ``A_ij`` (a copy)."""
        self._check_index(i, j)
        w = self._w
        return self._padded[i * w : (i + 1) * w, j * w : (j + 1) * w].copy()

    def upper(self, i: int, j: int) -> np.ndarray:
        """``U_ij``: upper triangle (with diagonal) of block ``(i, j)``."""
        return upper_triangle(self.block(i, j))

    def lower(self, i: int, j: int) -> np.ndarray:
        """``L_ij``: strictly lower triangle of block ``(i, j)``."""
        return strict_lower_triangle(self.block(i, j))

    def udl(self, i: int, j: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Three-way ``(U, D, L)`` split of block ``(i, j)``."""
        return split_udl(self.block(i, j))

    def iter_blocks(self) -> Iterator[Tuple[BlockIndex, np.ndarray]]:
        """Iterate over all blocks in row-major order."""
        for i in range(self._block_rows):
            for j in range(self._block_cols):
                yield BlockIndex(i, j), self.block(i, j)

    # -- reconstruction ----------------------------------------------------
    @staticmethod
    def assemble(blocks: np.ndarray) -> np.ndarray:
        """Assemble a dense matrix from a 4-D array of blocks.

        ``blocks`` must have shape ``(block_rows, block_cols, w, w)``.
        """
        blocks = np.asarray(blocks, dtype=float)
        if blocks.ndim != 4 or blocks.shape[2] != blocks.shape[3]:
            raise ShapeError(
                f"assemble expects shape (bi, bj, w, w), got {blocks.shape}"
            )
        bi, bj, w, _ = blocks.shape
        out = np.zeros((bi * w, bj * w), dtype=float)
        for i in range(bi):
            for j in range(bj):
                out[i * w : (i + 1) * w, j * w : (j + 1) * w] = blocks[i, j]
        return out

    def to_block_array(self) -> np.ndarray:
        """Return all blocks as a ``(block_rows, block_cols, w, w)`` array."""
        w = self._w
        out = np.zeros((self._block_rows, self._block_cols, w, w), dtype=float)
        for i in range(self._block_rows):
            for j in range(self._block_cols):
                out[i, j] = self.block(i, j)
        return out
