"""The serving front door: futures in, plan-keyed shard routing behind.

:class:`SolverService` is the concurrent counterpart of the synchronous
:class:`~repro.api.solver.Solver` façade::

    from repro.api import ArraySpec
    from repro.service import SolverService

    with SolverService(ArraySpec(w=4), n_shards=4) as service:
        future = service.submit("matvec", a, x)      # returns immediately
        solution = future.result()                    # same Solution protocol
        print(service.stats().describe())

``submit`` validates the request synchronously as far as the plan key can
see — unknown kinds and bad *primary-operand* shapes fail at the call
site; mismatches among the remaining operands (a wrong-length ``x``)
surface through the future, isolated to the offending request — then
routes the request through the service's
:class:`~repro.service.placement.PlacementTable`: an explicit key→shard
mapping whose default policy is a *stable* (PYTHONHASHSEED-independent)
hash, inspectable via ``service.placement`` and rebalanceable per key.
Determinism of that routing is the core scaling trick: a given plan
compiles once per service — on the one shard that will ever see it — and
every subsequent same-shape request hits that shard's warm cache.  The
admission batcher then flushes same-plan neighbours together, so a burst
of identical requests costs one queue round-trip and, for matvec, rides
the paper's overlapped contraflow execution in pairs.

Multi-level graphs take the *pipelined* path: ``submit_graph`` compiles
the graph once against the service's shared compile solver, splits the
program into level-aligned segments placed per stage plan key, and
streams segments across shards through bounded handoff lanes — level k
of one request overlaps level k−1 of the next (the paper's systolic flow
lifted one architectural layer up), with results bit-identical to
single-shard :meth:`~repro.graph.program.PipelineProgram.run`.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from typing import (
    Any, Hashable, List, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING,
    Union,
)

from ..api.config import ArraySpec, ExecutionOptions
from ..api.plan import PlanKey
from ..api.solution import Solution
from ..api.solver import Solver
from ..errors import (
    RateLimitedError, ServiceClosedError, ServiceOverloadedError,
)
from ..graph.compiler import GraphCompiler
from ..graph.graph import Graph, as_graph
from ..graph.problems import Problem
from ..graph.program import PipelineProgram, PipelineResult, ProgramSegment
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import NULL_SPAN, NULL_TRACER, Tracer
from .backpressure import BACKPRESSURE_POLICIES, BoundedRequestQueue
from .pipeline import PipelinedGraphJob, SegmentTask
from .placement import PlacementTable
from .qos import (
    PRIORITY_NORMAL, ClientRateLimiter, RateLimit, priority_name,
    resolve_priority,
)
from .request import GraphJob, RequestTrace, SolveRequest
from .telemetry import ServiceStats, ShardTelemetry
from .workers import ShardWorker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..store import PlanStore

__all__ = ["SolverService"]


def _as_rate_limit(value: "RateLimit | float | int") -> RateLimit:
    """Normalize a rate-limit argument (bare numbers mean req/s)."""
    if isinstance(value, RateLimit):
        return value
    return RateLimit(rate=float(value))


class SolverService:
    """Concurrent, sharded, batching serving layer over cached solver plans.

    Parameters
    ----------
    spec:
        The target :class:`ArraySpec` (or a bare array size ``w``); every
        shard solves against the same array geometry.
    n_shards:
        Worker count.  Each shard owns a private
        :class:`~repro.api.solver.Solver` (and therefore a private plan
        cache) and a single execution thread.
    options:
        Service-wide :class:`ExecutionOptions` defaults; per-request
        ``options=`` overrides them wholesale (and routes to a different
        plan, hence possibly a different shard).
    queue_depth:
        Bounded pending-request capacity *per shard*.
    backpressure:
        Full-queue policy: ``"block"`` (default), ``"reject"`` or
        ``"shed_oldest"`` — see :mod:`repro.service.backpressure`.
    max_batch_size / max_batch_delay:
        Admission-window bounds per flush — see
        :mod:`repro.service.batcher`.
    plan_cache_size:
        Per-shard plan cache capacity.
    submit_timeout:
        Under the ``block`` policy, how long ``submit`` may wait for queue
        space before raising :class:`ServiceOverloadedError`
        (``None`` = wait indefinitely).
    store:
        Optional :class:`~repro.store.PlanStore` shared by every shard
        solver (and the pipelined-graph compile solver): plan-cache
        misses try disk before compiling, fresh compiles write through.
    warm_start:
        With a ``store``, preload every persisted plan onto its placed
        shard at construction (and into the compile solver), so a cold
        process answers request #1 at warm-cache latency with zero plan
        builds.  Ignored without a store.
    rate_limits / default_rate_limit:
        Per-client admission budgets: a mapping of client id →
        :class:`~repro.service.qos.RateLimit` (bare numbers mean
        requests/second), plus an optional default for unlisted
        clients.  Requests without a ``client_id`` are never limited.
    """

    def __init__(
        self,
        spec: "ArraySpec | int",
        *,
        n_shards: int = 4,
        options: Optional[ExecutionOptions] = None,
        queue_depth: int = 64,
        backpressure: str = "block",
        max_batch_size: int = 16,
        max_batch_delay: float = 0.002,
        plan_cache_size: int = 128,
        submit_timeout: Optional[float] = None,
        idle_poll: float = 0.05,
        tracer: Optional[Tracer] = None,
        store: "Optional[PlanStore]" = None,
        warm_start: bool = True,
        rate_limits: Optional[Mapping[str, "RateLimit | float | int"]] = None,
        default_rate_limit: "RateLimit | float | int | None" = None,
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if backpressure not in BACKPRESSURE_POLICIES:
            known = ", ".join(BACKPRESSURE_POLICIES)
            raise ValueError(
                f"unknown backpressure policy {backpressure!r}; one of: {known}"
            )
        self._spec = ArraySpec.of(spec)
        self._options = options if options is not None else ExecutionOptions()
        self._policy = backpressure
        self._submit_timeout = submit_timeout
        self._closed = False
        self._store = store
        self._limiter: Optional[ClientRateLimiter] = None
        if rate_limits or default_rate_limit is not None:
            self._limiter = ClientRateLimiter(
                limits={
                    client: _as_rate_limit(limit)
                    for client, limit in (rate_limits or {}).items()
                },
                default=(
                    None if default_rate_limit is None
                    else _as_rate_limit(default_rate_limit)
                ),
            )
        # Request-scoped tracing; NULL_TRACER (the default) makes every
        # span call a guarded no-op on the serving path.
        self._tracer = tracer if tracer is not None else NULL_TRACER
        # One registry for the whole fleet: every shard's telemetry
        # instruments live here, labelled by shard.
        self._metrics = MetricsRegistry()
        self._placement = PlacementTable(int(n_shards))
        # Pipelined graphs compile here — one shared, lock-guarded plan
        # cache — so a re-submitted graph splits into segments carrying
        # the *same* warm plan objects (zero rebuilds), and a given plan
        # key always executes on its one placed shard.  Kept out of
        # ``stats().cache``: that column reports the shard-local serving
        # caches.
        self._compile_solver = Solver(
            self._spec, self._options, plan_cache_size=plan_cache_size,
            store=store,
        )
        self._shards: List[ShardWorker] = []
        for shard_id in range(int(n_shards)):
            queue = BoundedRequestQueue(queue_depth, policy=backpressure)
            worker = ShardWorker(
                shard_id=shard_id,
                solver=Solver(
                    self._spec, self._options,
                    plan_cache_size=plan_cache_size, store=store,
                ),
                queue=queue,
                telemetry=ShardTelemetry(shard_id, registry=self._metrics),
                max_batch_size=max_batch_size,
                max_batch_delay=max_batch_delay,
                idle_poll=idle_poll,
            )
            self._shards.append(worker)
        # Preload persisted plans onto their placed shards before any
        # worker thread runs, so request #1 of a cold process hits a warm
        # cache (zero plan builds).
        if store is not None and warm_start:
            self.warm_start()
        for worker in self._shards:
            worker.start()

    # -- introspection ----------------------------------------------------------
    @property
    def spec(self) -> ArraySpec:
        return self._spec

    @property
    def options(self) -> ExecutionOptions:
        return self._options

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def backpressure(self) -> str:
        return self._policy

    @property
    def shards(self) -> Tuple[ShardWorker, ...]:
        """The shard workers (read-only view, e.g. for tests and tooling)."""
        return tuple(self._shards)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def tracer(self) -> Tracer:
        """The service's tracer (the shared no-op tracer unless one was given)."""
        return self._tracer

    @property
    def metrics(self) -> MetricsRegistry:
        """The fleet-wide metrics registry backing every shard's telemetry."""
        return self._metrics

    @property
    def store(self) -> "Optional[PlanStore]":
        """The plan persistence store shared by the shard solvers."""
        return self._store

    @property
    def rate_limiter(self) -> Optional[ClientRateLimiter]:
        """The per-client admission limiter (``None`` = unlimited)."""
        return self._limiter

    def warm_start(self) -> int:
        """Preload every persisted plan onto its placed shard.

        Each valid artifact in the store is deserialized once and
        adopted into the plan cache of the shard its key routes to —
        plus the shared compile solver, so pipelined graphs reuse the
        same warm stage plans.  Plans compiled for a different array
        geometry (``w``) are skipped.  Returns the number of plans
        preloaded.  Idempotent; also callable later to pick up
        artifacts written by other processes.

        Thread-safety note: adoption respects the same-key→same-shard
        discipline — a key's (stateful) executor lands only on the one
        shard whose thread will ever execute it, which is also the
        thread that executes that key's pipelined segments.
        """
        if self._store is None:
            return 0
        count = 0
        for key, plan in self._store.plans():
            if plan.spec.w != self._spec.w:
                continue
            shard = self._placement.shard_of(key)
            self._shards[shard].solver.adopt_plan(plan)
            self._compile_solver.adopt_plan(plan)
            count += 1
        return count

    def plan_key(
        self,
        kind: str,
        *operands,
        shape=None,
        options: Optional[ExecutionOptions] = None,
    ) -> PlanKey:
        """The routing key a request would use (validates kind and shapes).

        Delegates to a shard solver (all shards share the service's spec
        and default options) so routing keys can never diverge from the
        keys the shard caches actually use.
        """
        return self._shards[0].solver.plan_key(
            kind, *operands, shape=shape, options=options
        )

    @property
    def placement(self) -> PlacementTable:
        """The routing table: inspect (``snapshot()``), pin (``assign``)
        or release per-key shard placements.  Rebalancing governs
        subsequent lookups only — quiesce a key before moving it."""
        return self._placement

    def shard_index(self, key: "PlanKey | Any") -> int:
        """Which shard a routing key maps to (stable across processes).

        Single solves route by their 4-tuple plan key; whole-pipeline
        jobs by ``("__graph__", stage keys, w, options)``; pipelined
        graph *segments* by their individual stage plan keys.  Routing
        goes through the :class:`PlacementTable`, whose default policy is
        a stable value hash — unlike built-in ``hash()``, it does not
        vary with ``PYTHONHASHSEED``, so a warm shard layout reproduces
        run to run.
        """
        return self._placement.shard_of(key)

    # -- the serving surface ------------------------------------------------------
    def submit(
        self,
        kind: "str | Problem",
        *operands,
        options: Optional[ExecutionOptions] = None,
        timeout: Optional[float] = None,
        priority: Union[str, int] = "normal",
        client_id: Optional[str] = None,
        **kwargs,
    ) -> "Future[Solution]":
        """Admit one solve request; returns the future of its ``Solution``.

        ``kind`` is a kind string with positional operands, or a typed
        problem object (``service.submit(MatVec(a, x))``), which is
        unpacked into its canonical kind/operands/arguments so typed and
        string submissions share plan keys, shards and admission batches.
        ``timeout`` is the request's *deadline* budget in seconds: if no
        worker gets to it in time it fails with
        :class:`~repro.errors.DeadlineExceededError`.  ``priority`` is
        the request's admission class (``"low"``/``"normal"``/``"high"``
        or an integer level) — under ``shed_oldest`` overload, lower
        classes are evicted first.  ``client_id`` names the submitting
        client; when the service has rate limits, a client out of budget
        gets a synchronous :class:`~repro.errors.RateLimitedError`.
        Extra keyword arguments are kind-specific execution arguments
        (``lower=False``, ``x0=...``); requests carrying them are
        executed singly rather than batch-flushed.
        """
        if self._closed:
            raise ServiceClosedError("cannot submit to a closed service")
        level = resolve_priority(priority)
        if isinstance(kind, Problem):
            problem = kind
            problem.require_bare(operands, kwargs)
            base = options if options is not None else self._options
            options = problem.resolved_options(base)
            kind = problem.kind
            operands = problem.concrete_operands()
            kwargs = problem.execute_kwargs()
        key = self.plan_key(kind, *operands, options=options)
        request = SolveRequest(
            kind=kind,
            operands=tuple(operands),
            plan_key=key,
            options=options,
            kwargs=dict(kwargs),
            deadline=None if timeout is None else time.monotonic() + timeout,
            priority=level,
            client_id=client_id,
        )
        if self._tracer.enabled:
            request.trace = RequestTrace(
                tracer=self._tracer,
                root=self._tracer.start_trace(
                    f"request {kind}", kind=kind,
                    priority=priority_name(level),
                ),
            )
        if not self._admit_client(client_id, key):
            exc = RateLimitedError(
                f"client {client_id!r} exceeded its admission rate limit"
            )
            request.fail(exc)  # closes the trace root; future never surfaced
            raise exc
        return self._admit(request)

    def _admit_client(self, client_id: Optional[str], key: Hashable) -> bool:
        """Debit the client's token bucket; account a refusal on the
        shard the request would have routed to."""
        if self._limiter is None or self._limiter.admit(client_id):
            return True
        worker = self._shards[self.shard_index(key)]
        worker.telemetry.record_rate_limited()
        return False

    def submit_graph(
        self,
        graph: "Graph | Problem",
        *,
        fuse: bool = False,
        options: Optional[ExecutionOptions] = None,
        timeout: Optional[float] = None,
        pipeline: Optional[bool] = None,
        priority: Union[str, int] = "normal",
        client_id: Optional[str] = None,
    ) -> "Future[PipelineResult]":
        """Admit a whole pipeline graph; returns the future of its result.

        The graph (or single typed problem) is validated synchronously —
        cycles, unknown kinds and cross-stage shape mismatches fail at
        the call site.  Multi-level graphs on a multi-shard service take
        the *pipelined* path: the program compiles once against the
        service's shared compile solver, splits into level-aligned
        segments placed per stage plan key, and streams across shards
        through the handoff lanes — bit-identical to single-shard
        execution, but independent same-level stages run on distinct
        shards and deep graphs overlap across requests.  Single-segment
        graphs keep the classic home-shard path, routed *as a unit* by
        the tuple of their per-stage plan keys (zero recompiles after
        warmup either way).  The future resolves to a
        :class:`~repro.graph.program.PipelineResult`.

        ``fuse`` opts into the matmul→matvec associativity rewrite
        (changes floating-point association; routing still uses the
        unfused keys, so fused and unfused submissions of one graph
        share a home shard).  ``pipeline=False`` forces the classic
        single-shard path; ``pipeline=True`` merely *allows* splitting
        (a single-segment program still runs home-shard).
        ``priority`` / ``client_id`` are the same admission QoS controls
        as :meth:`submit`; a whole pipelined job carries one class, and
        shedding any of its level-0 segments retires the whole job.
        """
        if self._closed:
            raise ServiceClosedError("cannot submit to a closed service")
        level = resolve_priority(priority)
        graph = as_graph(graph)
        base = options if options is not None else self._options
        stage_keys = graph.plan_keys(self._spec.w, base)
        key = ("__graph__", stage_keys, self._spec.w, base)
        deadline = None if timeout is None else time.monotonic() + timeout
        trace: Optional[RequestTrace] = None
        if self._tracer.enabled:
            trace = RequestTrace(
                tracer=self._tracer,
                root=self._tracer.start_trace(
                    "request graph", kind="graph", stages=len(stage_keys),
                    priority=priority_name(level),
                ),
            )
        if not self._admit_client(client_id, key):
            exc = RateLimitedError(
                f"client {client_id!r} exceeded its admission rate limit"
            )
            if trace is not None:
                trace.root.finish(status="error", error=exc)
            raise exc
        if pipeline is not False and len(self._shards) > 1:
            # The compile span is *activated* so the shared solver's
            # plan-lookup children (hit/miss, cold builds) nest under it.
            span = (
                trace.root.child("graph_compile", category="compile")
                if trace is not None else NULL_SPAN
            )
            try:
                with span:
                    program = GraphCompiler(
                        self._compile_solver, fuse=fuse, options=options
                    ).compile(graph)
                    segments = program.segments(self._placement.shard_of)
            except Exception as exc:
                if trace is not None:
                    trace.root.finish(status="error", error=exc)
                raise
            if len(segments) > 1:
                return self._admit_pipelined(
                    program, key, segments, options, deadline, trace,
                    priority=level, client_id=client_id,
                )
        request = SolveRequest(
            kind="graph",
            operands=(),
            plan_key=key,
            options=options,
            graph=GraphJob(graph=graph, fuse=fuse),
            deadline=deadline,
            trace=trace,
            priority=level,
            client_id=client_id,
        )
        return self._admit(request)

    def _admit(self, request: SolveRequest) -> "Future[Any]":
        """Route one request to its home shard and enqueue it."""
        worker = self._shards[self.shard_index(request.plan_key)]
        trace = request.trace
        wait = None
        if trace is not None:
            trace.root.annotate(shard=worker.shard_id)
            wait = trace.root.child("admission_wait", category="queue")
        try:
            shed = worker.queue.put(request, timeout=self._submit_timeout)
        except ServiceOverloadedError as exc:
            worker.telemetry.record_rejected()
            if wait is not None:
                wait.finish(status="error", error=exc)
            request.fail(exc)  # closes the trace root; future is unused
            raise
        except ServiceClosedError as exc:
            if wait is not None:
                wait.finish(status="error", error=exc)
            request.fail(exc)
            raise
        if trace is not None and wait is not None:
            wait.finish()
            trace.admitted_at = wait.end
        worker.telemetry.record_submitted(request.kind, len(worker.queue))
        if shed is not None:
            self._fail_shed(worker, shed)
        return request.future

    def _admit_pipelined(
        self,
        program: PipelineProgram,
        key: Hashable,
        segments: Tuple[ProgramSegment, ...],
        options: Optional[ExecutionOptions],
        deadline: Optional[float],
        trace: Optional[RequestTrace] = None,
        priority: int = PRIORITY_NORMAL,
        client_id: Optional[str] = None,
    ) -> "Future[PipelineResult]":
        """Admit one cross-shard pipelined graph job.

        The level-0 wave enters through the shards' *admission* queues —
        subject to the service's backpressure policy exactly like any
        request — while later levels will flow worker-to-worker through
        the handoff lanes.  Whole-job accounting (submitted / completed /
        graph rows) lands on the job's home shard: the one the graph key
        routes to, so pipelined and classic submissions of the same graph
        report to the same place.
        """
        home = self._placement.shard_of(key)
        job = PipelinedGraphJob(
            program=program,
            graph_key=key,
            segments=segments,
            shards=[
                self._placement.shard_of(segment.stages[0].plan.key)
                for segment in segments
            ],
            home_shard=home,
            home_telemetry=self._shards[home].telemetry,
            dispatch=self._dispatch_segment,
            options=options,
            deadline=deadline,
            trace=trace,
            priority=priority,
            client_id=client_id,
        )
        wait = None
        if trace is not None:
            trace.root.annotate(
                home_shard=home, segments=job.n_segments, pipelined=True
            )
            wait = trace.root.child("admission_wait", category="queue")
        for task in job.first_tasks():
            worker = self._shards[task.shard]
            if trace is not None:
                # Level-0 queue-wait spans start at admission time; the
                # consuming worker backdates them from this stamp.
                task.dispatched_at = trace.tracer.now()
            try:
                shed = worker.queue.put(task.request, timeout=self._submit_timeout)
            except ServiceOverloadedError as exc:
                worker.telemetry.record_rejected()
                if wait is not None:
                    wait.finish(status="error", error=exc)
                # Level-0 siblings already queued on other shards become
                # no-ops: the job is latched failed before they execute.
                job.fail(exc)
                raise
            except ServiceClosedError as exc:
                if wait is not None:
                    wait.finish(status="error", error=exc)
                job.fail(exc)
                raise
            if shed is not None:
                self._fail_shed(worker, shed)
        if trace is not None and wait is not None:
            wait.finish()
            trace.admitted_at = wait.end
        home_worker = self._shards[home]
        home_worker.telemetry.record_submitted("graph", len(home_worker.queue))
        return job.future

    def _dispatch_segment(self, task: SegmentTask) -> None:
        """Hand one next-level segment to its shard's handoff lane.

        Called by whichever worker completed a level; raises (for the
        caller to fail the whole job) when the target lane is full or the
        service is closing.
        """
        worker = self._shards[task.shard]
        try:
            depth = worker.queue.put_handoff(task.request)
        except ServiceOverloadedError:
            worker.telemetry.record_handoff_rejected()
            raise
        worker.telemetry.record_handoff(depth)

    def _fail_shed(self, worker: ShardWorker, shed: SolveRequest) -> None:
        """Fail a request evicted under ``shed_oldest``.

        The victim is the queue's weakest candidate — lowest priority
        class, nearest deadline, oldest — and may be the *arriving*
        request itself when everything queued outranks it.  A shed
        *segment* fails its whole pipelined job — its siblings (queued,
        in flight, or yet to dispatch) all become no-ops — so a
        mid-pipeline eviction can never strand a partial graph.
        """
        worker.telemetry.record_shed(priority=shed.priority)
        exc = ServiceOverloadedError(
            f"request shed after {shed.latency():.3f}s "
            f"(class {priority_name(shed.priority)}, policy 'shed_oldest'): "
            f"shard queue full"
        )
        if shed.segment is not None:
            shed.segment.job.fail(exc)
        else:
            shed.fail(exc)

    def solve(
        self,
        kind: "str | Problem",
        *operands,
        options: Optional[ExecutionOptions] = None,
        timeout: Optional[float] = None,
        **kwargs,
    ) -> Solution:
        """Synchronous convenience: ``submit(...).result()``."""
        future = self.submit(
            kind, *operands, options=options, timeout=timeout, **kwargs
        )
        return future.result()

    def solve_graph(
        self,
        graph: "Graph | Problem",
        *,
        fuse: bool = False,
        options: Optional[ExecutionOptions] = None,
        timeout: Optional[float] = None,
    ) -> PipelineResult:
        """Synchronous convenience: ``submit_graph(...).result()``."""
        future = self.submit_graph(
            graph, fuse=fuse, options=options, timeout=timeout
        )
        return future.result()

    def map(
        self,
        kind: str,
        batch: Sequence[Tuple[Any, ...]],
        options: Optional[ExecutionOptions] = None,
        timeout: Optional[float] = None,
    ) -> List[Solution]:
        """Submit a whole batch and gather results in input order.

        The service-level analogue of ``Solver.solve_batch``: entries fan
        out across shards by plan key, pile up in admission windows, and
        come back in the order given.
        """
        futures = [
            self.submit(kind, *entry, options=options, timeout=timeout)
            for entry in batch
        ]
        return [future.result() for future in futures]

    # -- observability ------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """A consistent-enough fleet snapshot (per-shard locks, no global stop)."""
        return ServiceStats.aggregate(
            [
                worker.telemetry.snapshot(
                    len(worker.queue), worker.solver.cache_stats
                )
                for worker in self._shards
            ],
            placement=self._placement.snapshot(),
        )

    # -- lifecycle ---------------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Stop accepting work and shut the shards down.

        With ``wait`` (the default) every queued request is drained and
        resolved before workers exit; otherwise pending requests fail with
        :class:`~repro.errors.ServiceClosedError`.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        for worker in self._shards:
            worker.request_stop(drain=wait)
            worker.queue.close()
        for worker in self._shards:
            worker.join()
        # A submit racing with close() can slip a request into a queue
        # after its worker took the exit path but before queue.close()
        # took effect; no worker will ever see it, so fail it here rather
        # than strand the caller's future.
        closed = ServiceClosedError("service closed before the request ran")
        for worker in self._shards:
            for request in worker.queue.drain():
                task = request.segment
                if task is not None:
                    if task.job.fail(closed):
                        task.job.home_telemetry.record_failed(
                            task.job.latency()
                        )
                elif request.fail(closed):
                    worker.telemetry.record_failed(request.latency())

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SolverService(w={self._spec.w}, n_shards={len(self._shards)}, "
            f"backpressure={self._policy!r}, closed={self._closed})"
        )
