"""The serving front door: futures in, plan-keyed shard routing behind.

:class:`SolverService` is the concurrent counterpart of the synchronous
:class:`~repro.api.solver.Solver` façade::

    from repro.api import ArraySpec
    from repro.service import SolverService

    with SolverService(ArraySpec(w=4), n_shards=4) as service:
        future = service.submit("matvec", a, x)      # returns immediately
        solution = future.result()                    # same Solution protocol
        print(service.stats().describe())

``submit`` validates the request synchronously as far as the plan key can
see — unknown kinds and bad *primary-operand* shapes fail at the call
site; mismatches among the remaining operands (a wrong-length ``x``)
surface through the future, isolated to the offending request — then
routes the request to shard ``hash(plan_key) % n_shards``.  Determinism of that routing is the core
scaling trick: a given plan compiles once per service — on the one shard
that will ever see it — and every subsequent same-shape request hits that
shard's warm cache.  The admission batcher then flushes same-plan
neighbours together, so a burst of identical requests costs one queue
round-trip and, for matvec, rides the paper's overlapped contraflow
execution in pairs.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from typing import Any, List, Optional, Sequence, Tuple

from ..api.config import ArraySpec, ExecutionOptions
from ..api.plan import PlanKey
from ..api.solution import Solution
from ..api.solver import Solver
from ..errors import ServiceClosedError, ServiceOverloadedError
from ..graph.graph import Graph, as_graph
from ..graph.problems import Problem
from ..graph.program import PipelineResult
from .backpressure import BACKPRESSURE_POLICIES, BoundedRequestQueue
from .request import GraphJob, SolveRequest
from .telemetry import ServiceStats, ShardTelemetry
from .workers import ShardWorker

__all__ = ["SolverService"]


class SolverService:
    """Concurrent, sharded, batching serving layer over cached solver plans.

    Parameters
    ----------
    spec:
        The target :class:`ArraySpec` (or a bare array size ``w``); every
        shard solves against the same array geometry.
    n_shards:
        Worker count.  Each shard owns a private
        :class:`~repro.api.solver.Solver` (and therefore a private plan
        cache) and a single execution thread.
    options:
        Service-wide :class:`ExecutionOptions` defaults; per-request
        ``options=`` overrides them wholesale (and routes to a different
        plan, hence possibly a different shard).
    queue_depth:
        Bounded pending-request capacity *per shard*.
    backpressure:
        Full-queue policy: ``"block"`` (default), ``"reject"`` or
        ``"shed_oldest"`` — see :mod:`repro.service.backpressure`.
    max_batch_size / max_batch_delay:
        Admission-window bounds per flush — see
        :mod:`repro.service.batcher`.
    plan_cache_size:
        Per-shard plan cache capacity.
    submit_timeout:
        Under the ``block`` policy, how long ``submit`` may wait for queue
        space before raising :class:`ServiceOverloadedError`
        (``None`` = wait indefinitely).
    """

    def __init__(
        self,
        spec: "ArraySpec | int",
        *,
        n_shards: int = 4,
        options: Optional[ExecutionOptions] = None,
        queue_depth: int = 64,
        backpressure: str = "block",
        max_batch_size: int = 16,
        max_batch_delay: float = 0.002,
        plan_cache_size: int = 128,
        submit_timeout: Optional[float] = None,
        idle_poll: float = 0.05,
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if backpressure not in BACKPRESSURE_POLICIES:
            known = ", ".join(BACKPRESSURE_POLICIES)
            raise ValueError(
                f"unknown backpressure policy {backpressure!r}; one of: {known}"
            )
        self._spec = ArraySpec.of(spec)
        self._options = options if options is not None else ExecutionOptions()
        self._policy = backpressure
        self._submit_timeout = submit_timeout
        self._closed = False
        self._shards: List[ShardWorker] = []
        for shard_id in range(int(n_shards)):
            queue = BoundedRequestQueue(queue_depth, policy=backpressure)
            worker = ShardWorker(
                shard_id=shard_id,
                solver=Solver(
                    self._spec, self._options, plan_cache_size=plan_cache_size
                ),
                queue=queue,
                telemetry=ShardTelemetry(shard_id),
                max_batch_size=max_batch_size,
                max_batch_delay=max_batch_delay,
                idle_poll=idle_poll,
            )
            self._shards.append(worker)
        for worker in self._shards:
            worker.start()

    # -- introspection ----------------------------------------------------------
    @property
    def spec(self) -> ArraySpec:
        return self._spec

    @property
    def options(self) -> ExecutionOptions:
        return self._options

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def backpressure(self) -> str:
        return self._policy

    @property
    def shards(self) -> Tuple[ShardWorker, ...]:
        """The shard workers (read-only view, e.g. for tests and tooling)."""
        return tuple(self._shards)

    @property
    def closed(self) -> bool:
        return self._closed

    def plan_key(
        self,
        kind: str,
        *operands,
        shape=None,
        options: Optional[ExecutionOptions] = None,
    ) -> PlanKey:
        """The routing key a request would use (validates kind and shapes).

        Delegates to a shard solver (all shards share the service's spec
        and default options) so routing keys can never diverge from the
        keys the shard caches actually use.
        """
        return self._shards[0].solver.plan_key(
            kind, *operands, shape=shape, options=options
        )

    def shard_index(self, key: "PlanKey | Any") -> int:
        """Which shard a routing key maps to (stable within this process).

        Single solves route by their 4-tuple plan key; whole-pipeline
        jobs by ``("__graph__", stage keys, w, options)``.
        """
        return hash(key) % len(self._shards)

    # -- the serving surface ------------------------------------------------------
    def submit(
        self,
        kind: "str | Problem",
        *operands,
        options: Optional[ExecutionOptions] = None,
        timeout: Optional[float] = None,
        **kwargs,
    ) -> "Future[Solution]":
        """Admit one solve request; returns the future of its ``Solution``.

        ``kind`` is a kind string with positional operands, or a typed
        problem object (``service.submit(MatVec(a, x))``), which is
        unpacked into its canonical kind/operands/arguments so typed and
        string submissions share plan keys, shards and admission batches.
        ``timeout`` is the request's *deadline* budget in seconds: if no
        worker gets to it in time it fails with
        :class:`~repro.errors.DeadlineExceededError`.  Extra keyword
        arguments are kind-specific execution arguments (``lower=False``,
        ``x0=...``); requests carrying them are executed singly rather
        than batch-flushed.
        """
        if self._closed:
            raise ServiceClosedError("cannot submit to a closed service")
        if isinstance(kind, Problem):
            problem = kind
            problem.require_bare(operands, kwargs)
            base = options if options is not None else self._options
            options = problem.resolved_options(base)
            kind = problem.kind
            operands = problem.concrete_operands()
            kwargs = problem.execute_kwargs()
        key = self.plan_key(kind, *operands, options=options)
        request = SolveRequest(
            kind=kind,
            operands=tuple(operands),
            plan_key=key,
            options=options,
            kwargs=dict(kwargs),
            deadline=None if timeout is None else time.monotonic() + timeout,
        )
        return self._admit(request)

    def submit_graph(
        self,
        graph: "Graph | Problem",
        *,
        fuse: bool = False,
        options: Optional[ExecutionOptions] = None,
        timeout: Optional[float] = None,
    ) -> "Future[PipelineResult]":
        """Admit a whole pipeline graph; returns the future of its result.

        The graph (or single typed problem) is validated synchronously —
        cycles, unknown kinds and cross-stage shape mismatches fail at
        the call site — and routed *as a unit* by the tuple of its
        per-stage plan keys, so every submission of a same-shaped
        pipeline lands on the one shard where all of its stage plans
        compiled the first time: after warmup a multi-stage graph
        executes shard-local with zero recompiles.  The future resolves
        to a :class:`~repro.graph.program.PipelineResult`.

        ``fuse`` opts into the matmul→matvec associativity rewrite
        (changes floating-point association; routing still uses the
        unfused keys, so fused and unfused submissions of one graph
        share a home shard).
        """
        if self._closed:
            raise ServiceClosedError("cannot submit to a closed service")
        graph = as_graph(graph)
        base = options if options is not None else self._options
        stage_keys = graph.plan_keys(self._spec.w, base)
        key = ("__graph__", stage_keys, self._spec.w, base)
        request = SolveRequest(
            kind="graph",
            operands=(),
            plan_key=key,
            options=options,
            graph=GraphJob(graph=graph, fuse=fuse),
            deadline=None if timeout is None else time.monotonic() + timeout,
        )
        return self._admit(request)

    def _admit(self, request: SolveRequest) -> "Future[Any]":
        """Route one request to its home shard and enqueue it."""
        worker = self._shards[self.shard_index(request.plan_key)]
        try:
            shed = worker.queue.put(request, timeout=self._submit_timeout)
        except ServiceOverloadedError:
            worker.telemetry.record_rejected()
            raise
        worker.telemetry.record_submitted(request.kind, len(worker.queue))
        if shed is not None:
            worker.telemetry.record_shed()
            shed.fail(
                ServiceOverloadedError(
                    f"request shed after {shed.latency():.3f}s queued: a "
                    f"newer request arrived on a full shard queue "
                    f"(policy 'shed_oldest')"
                )
            )
        return request.future

    def solve(
        self,
        kind: "str | Problem",
        *operands,
        options: Optional[ExecutionOptions] = None,
        timeout: Optional[float] = None,
        **kwargs,
    ) -> Solution:
        """Synchronous convenience: ``submit(...).result()``."""
        future = self.submit(
            kind, *operands, options=options, timeout=timeout, **kwargs
        )
        return future.result()

    def solve_graph(
        self,
        graph: "Graph | Problem",
        *,
        fuse: bool = False,
        options: Optional[ExecutionOptions] = None,
        timeout: Optional[float] = None,
    ) -> PipelineResult:
        """Synchronous convenience: ``submit_graph(...).result()``."""
        future = self.submit_graph(
            graph, fuse=fuse, options=options, timeout=timeout
        )
        return future.result()

    def map(
        self,
        kind: str,
        batch: Sequence[Tuple[Any, ...]],
        options: Optional[ExecutionOptions] = None,
        timeout: Optional[float] = None,
    ) -> List[Solution]:
        """Submit a whole batch and gather results in input order.

        The service-level analogue of ``Solver.solve_batch``: entries fan
        out across shards by plan key, pile up in admission windows, and
        come back in the order given.
        """
        futures = [
            self.submit(kind, *entry, options=options, timeout=timeout)
            for entry in batch
        ]
        return [future.result() for future in futures]

    # -- observability ------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """A consistent-enough fleet snapshot (per-shard locks, no global stop)."""
        return ServiceStats.aggregate(
            [
                worker.telemetry.snapshot(
                    len(worker.queue), worker.solver.cache_stats
                )
                for worker in self._shards
            ]
        )

    # -- lifecycle ---------------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Stop accepting work and shut the shards down.

        With ``wait`` (the default) every queued request is drained and
        resolved before workers exit; otherwise pending requests fail with
        :class:`~repro.errors.ServiceClosedError`.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        for worker in self._shards:
            worker.request_stop(drain=wait)
            worker.queue.close()
        for worker in self._shards:
            worker.join()
        # A submit racing with close() can slip a request into a queue
        # after its worker took the exit path but before queue.close()
        # took effect; no worker will ever see it, so fail it here rather
        # than strand the caller's future.
        closed = ServiceClosedError("service closed before the request ran")
        for worker in self._shards:
            for request in worker.queue.drain():
                if request.fail(closed):
                    worker.telemetry.record_failed(request.latency())

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SolverService(w={self._spec.w}, n_shards={len(self._shards)}, "
            f"backpressure={self._policy!r}, closed={self._closed})"
        )
