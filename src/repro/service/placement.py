"""Explicit plan placement: which shard owns which plan key.

Routing used to be an arithmetic accident — ``hash(plan_key) % n_shards``
— with two problems this module exists to fix.  First, Python salts
``str`` hashes per interpreter (``PYTHONHASHSEED``), so any key carrying a
kind string routed *differently across processes*: a warm shard layout
could not be reproduced, compared, or reasoned about between runs.
Second, the mapping was invisible and immutable — no way to inspect where
a hot key lives, and no way to move it.

:func:`stable_placement_hash` replaces the salted hash with a keyed-less
BLAKE2b digest over a canonical byte encoding of the key (strings, ints,
floats, tuples, and the frozen option dataclasses that appear in plan
keys), so a key's shard is a pure function of the key and the shard
count — identical in every process, on every run.

:class:`PlacementTable` makes the mapping a first-class object: the
default policy is the stable hash modulo ``n_shards``, per-key overrides
rebalance individual keys (``assign`` / ``release``), and
:meth:`snapshot` exposes the table — default policy traffic, override
hits, and the recently-routed key→shard assignments — to the service's
fleet telemetry.

The same-key→same-shard discipline is also the serving layer's
thread-safety contract: plan executors are stateful (simulator arrays,
lazily-warmed inner engines), and placing every lookup of a key on one
shard serializes every execution of that key's plan on one thread.
``assign`` therefore only governs *subsequent* lookups; in-flight work
keeps the placement it was admitted under, and operators rebalancing a
hot key should quiesce it first (the table does not migrate running
work).
"""

from __future__ import annotations

import hashlib
import numbers
import threading
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Dict, Hashable, List, Mapping

__all__ = [
    "PlacementSnapshot",
    "PlacementTable",
    "canonical_key_bytes",
    "stable_placement_hash",
]

#: How many recently-routed keys a table keeps for snapshots, by default.
DEFAULT_TRACK_LIMIT = 256


def _encode(value: Any, out: List[bytes]) -> None:
    """Append a canonical, type-prefixed byte encoding of ``value``.

    Covers exactly the value types that occur in routing keys — ``None``,
    bools, ints, floats, strings, bytes, tuples/lists, and frozen
    dataclasses (:class:`~repro.api.config.ExecutionOptions`,
    :class:`~repro.iterative.criteria.ConvergenceCriteria`) — each behind
    a distinct prefix so no two different values share an encoding.
    """
    if value is None:
        out.append(b"n;")
    elif isinstance(value, bool):
        out.append(b"b1;" if value else b"b0;")
    elif isinstance(value, numbers.Integral):
        out.append(b"i%d;" % int(value))
    elif isinstance(value, numbers.Real):
        # repr() round-trips doubles exactly and is stable across
        # platforms for the finite values option fields hold.
        out.append(b"f" + repr(float(value)).encode("ascii") + b";")
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(b"s%d:" % len(data))
        out.append(data)
    elif isinstance(value, bytes):
        out.append(b"y%d:" % len(value))
        out.append(value)
    elif isinstance(value, (tuple, list)):
        out.append(b"t%d:" % len(value))
        for item in value:
            _encode(item, out)
    elif is_dataclass(value) and not isinstance(value, type):
        out.append(b"d" + type(value).__name__.encode("utf-8") + b":")
        for field_info in fields(value):
            _encode(field_info.name, out)
            _encode(getattr(value, field_info.name), out)
        out.append(b";")
    else:
        raise TypeError(
            f"cannot derive a stable placement for a routing key containing "
            f"{type(value).__name__!r}; placement keys are built from None, "
            f"bools, numbers, strings, tuples and frozen option dataclasses"
        )


def canonical_key_bytes(key: Hashable) -> bytes:
    """The canonical byte encoding of a routing key.

    The exact bytes :func:`stable_placement_hash` digests for shard
    routing — exposed so other layers that need a content-addressed view
    of a plan key (the :mod:`repro.store` persistence layer names its
    on-disk artifacts by a digest of these bytes) can never drift from
    the encoding that places the key on a shard.
    """
    encoded: List[bytes] = []
    _encode(key, encoded)
    return b"".join(encoded)


def stable_placement_hash(key: Hashable) -> int:
    """A process-independent 64-bit hash of a routing key.

    Unlike built-in ``hash()`` — whose ``str`` component is salted per
    interpreter via ``PYTHONHASHSEED`` — this digest depends only on the
    key's value, so ``stable_placement_hash(key) % n_shards`` names the
    same shard in every process, every run.
    """
    digest = hashlib.blake2b(canonical_key_bytes(key), digest_size=8).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class PlacementSnapshot:
    """Immutable view of one :class:`PlacementTable` for telemetry."""

    n_shards: int
    #: Total ``shard_of`` lookups served.
    lookups: int
    #: Lookups answered by a per-key override rather than the hash policy.
    override_hits: int
    #: The current explicit key→shard overrides.
    overrides: Mapping[Hashable, int]
    #: Recently-routed key→shard assignments (bounded; newest kept).
    assignments: Mapping[Hashable, int]

    @property
    def shard_load(self) -> Mapping[int, int]:
        """Tracked keys per shard — the observable placement balance."""
        load: Dict[int, int] = {}
        for shard in self.assignments.values():
            load[shard] = load.get(shard, 0) + 1
        return load

    def describe(self) -> str:
        load = ", ".join(
            f"shard {shard}: {count} key(s)"
            for shard, count in sorted(self.shard_load.items())
        )
        return (
            f"PlacementTable over {self.n_shards} shard(s): "
            f"{self.lookups} lookup(s), {len(self.overrides)} override(s) "
            f"({self.override_hits} hit(s)){'; ' + load if load else ''}"
        )


class PlacementTable:
    """Inspectable, rebalanceable key→shard mapping for the serving layer.

    ``shard_of`` is the single routing entry point: explicit overrides
    win, everything else falls to the stable-hash default policy.  All
    methods are thread-safe (one lock; lookups are dict probes).
    """

    def __init__(self, n_shards: int, track_limit: int = DEFAULT_TRACK_LIMIT):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if track_limit < 0:
            raise ValueError(f"track_limit must be >= 0, got {track_limit}")
        self._n_shards = int(n_shards)
        self._track_limit = int(track_limit)
        self._lock = threading.Lock()
        self._overrides: Dict[Hashable, int] = {}
        self._assignments: Dict[Hashable, int] = {}
        self._lookups = 0
        self._override_hits = 0

    @property
    def n_shards(self) -> int:
        return self._n_shards

    def shard_of(self, key: Hashable) -> int:
        """The shard that owns ``key`` (override first, stable hash else)."""
        with self._lock:
            self._lookups += 1
            shard = self._overrides.get(key)
            if shard is not None:
                self._override_hits += 1
            else:
                shard = stable_placement_hash(key) % self._n_shards
            self._track(key, shard)
            return shard

    def _track(self, key: Hashable, shard: int) -> None:
        """Record a routed key for snapshots, evicting oldest past the cap."""
        if self._track_limit == 0:
            return
        self._assignments.pop(key, None)  # re-insert as newest
        self._assignments[key] = shard
        while len(self._assignments) > self._track_limit:
            self._assignments.pop(next(iter(self._assignments)))

    # -- rebalance API ------------------------------------------------------------
    def assign(self, key: Hashable, shard: int) -> None:
        """Pin ``key`` to ``shard``, overriding the default policy.

        Governs *subsequent* lookups only: work already admitted under the
        previous placement finishes where it was routed.  Because one
        key's plan executor is stateful and thread-serialized by its
        placement, rebalance a key only when it is quiescent.
        """
        if not 0 <= shard < self._n_shards:
            raise ValueError(
                f"shard must be in [0, {self._n_shards}), got {shard}"
            )
        with self._lock:
            self._overrides[key] = int(shard)

    def release(self, key: Hashable) -> bool:
        """Drop ``key``'s override (back to the hash policy); False if none."""
        with self._lock:
            return self._overrides.pop(key, None) is not None

    def overrides(self) -> Dict[Hashable, int]:
        """A copy of the current explicit overrides."""
        with self._lock:
            return dict(self._overrides)

    # -- observability ------------------------------------------------------------
    def snapshot(self) -> PlacementSnapshot:
        with self._lock:
            return PlacementSnapshot(
                n_shards=self._n_shards,
                lookups=self._lookups,
                override_hits=self._override_hits,
                overrides=dict(self._overrides),
                assignments=dict(self._assignments),
            )

    def describe(self) -> str:
        return self.snapshot().describe()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"PlacementTable(n_shards={self._n_shards}, "
                f"overrides={len(self._overrides)}, lookups={self._lookups})"
            )
