"""Plan-keyed admission batching.

The serving-layer analogue of keeping the systolic array saturated: rather
than executing requests strictly one-by-one, a shard worker collects a
short *admission window* of requests (bounded by ``max_batch_size`` and
``max_batch_delay``) and groups it by plan key.  Every group shares one
compiled :class:`~repro.api.plan.ExecutionPlan`, so a group flush through
``Solver.solve_batch`` costs at most one plan compile regardless of group
size — and for the plain matvec kind, ``solve_batch`` additionally pairs
group members onto the array's idle contraflow cycles automatically.

The batcher is pure policy: it owns no thread and mutates nothing but the
queue it drains, which keeps the windowing/grouping rules independently
testable from the worker machinery.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Hashable, List

from .backpressure import BoundedRequestQueue
from .request import SolveRequest

__all__ = ["AdmissionBatcher"]


class AdmissionBatcher:
    """Collects admission windows from a queue and groups them by plan key.

    ``max_batch_size`` caps one window; ``max_batch_delay`` is how long the
    worker lingers after the *first* request arrives, trading that much
    latency for the chance that same-plan requests pile up and flush
    together.  ``idle_poll`` bounds the wait for the first request so the
    owning worker can re-check its stop flag.

    ``clock`` is the monotonic time source for the window cutoff.  It
    must be a *monotonic* clock — ``time.monotonic`` by default, never
    wall-clock ``time.time()``, whose NTP steps and DST jumps would
    stretch or collapse admission windows — and is injectable so tests
    can drive the window deadline deterministically.
    """

    def __init__(
        self,
        queue: BoundedRequestQueue,
        max_batch_size: int = 32,
        max_batch_delay: float = 0.002,
        idle_poll: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_batch_delay < 0:
            raise ValueError(f"max_batch_delay must be >= 0, got {max_batch_delay}")
        self._queue = queue
        self._max_batch_size = int(max_batch_size)
        self._max_batch_delay = float(max_batch_delay)
        self._idle_poll = float(idle_poll)
        self._clock = clock

    @property
    def max_batch_size(self) -> int:
        return self._max_batch_size

    @property
    def max_batch_delay(self) -> float:
        return self._max_batch_delay

    def next_window(self) -> List[SolveRequest]:
        """One admission window, in arrival order (empty on an idle poll).

        Blocks up to ``idle_poll`` for the first request, then lingers up
        to ``max_batch_delay`` (or until the window is full) gathering
        companions.
        """
        first = self._queue.get(timeout=self._idle_poll)
        if first is None:
            return []
        window = [first]
        cutoff = self._clock() + self._max_batch_delay
        while len(window) < self._max_batch_size:
            remaining = cutoff - self._clock()
            if remaining <= 0:
                window.extend(self._queue.drain(self._max_batch_size - len(window)))
                break
            companion = self._queue.get(timeout=remaining)
            if companion is None:
                break
            window.append(companion)
        return window

    @staticmethod
    def group_by_plan(window: List[SolveRequest]) -> List[List[SolveRequest]]:
        """Split a window into per-plan-key flush groups.

        Groups preserve arrival order (both across groups — ordered by
        their earliest member — and within a group).  Requests carrying
        kind-specific execution kwargs — or a whole-pipeline graph job —
        are not batchable (``solve_batch`` has no per-entry argument
        channel) and become singleton groups.
        """
        groups: "Dict[object, List[SolveRequest]]" = {}
        order: List[List[SolveRequest]] = []
        for request in window:
            if not request.batchable:
                order.append([request])
                continue
            key: Hashable = request.plan_key
            group = groups.get(key)
            if group is None:
                group = groups[key] = []
                order.append(group)
            group.append(request)
        return order
