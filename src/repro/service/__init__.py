"""Concurrent serving layer over the plan/execute solver façade.

The ROADMAP's production-serving story, as a subsystem: many concurrent
callers multiplexed onto the cached, immutable
:class:`~repro.api.plan.ExecutionPlan` machinery so the (software) array
stays saturated the way the paper's streaming model keeps the hardware
saturated.

Pieces, front to back:

* :class:`~repro.service.service.SolverService` — the front door.
  ``submit(kind, *operands)`` validates synchronously, returns a
  ``concurrent.futures.Future`` of the usual
  :class:`~repro.api.solution.Solution`, and routes by plan key through
  the placement table.
* :class:`~repro.service.placement.PlacementTable` — the explicit
  key→shard routing layer: a stable (``PYTHONHASHSEED``-independent)
  default hash policy, per-key ``assign``/``release`` rebalancing, and
  snapshots of the observed key→shard layout for the fleet telemetry.
* :class:`~repro.service.backpressure.BoundedRequestQueue` — per-shard
  bounded admission with ``block`` / ``reject`` / ``shed_oldest``
  overload policies, per-request deadlines, and a priority *handoff
  lane* carrying mid-pipeline graph segments between shards.
* :class:`~repro.service.batcher.AdmissionBatcher` — collects a short
  admission window and groups it by plan key, so same-plan requests flush
  together through ``Solver.solve_batch`` (matvec pairs ride the
  overlapped contraflow path automatically).
* :class:`~repro.service.workers.ShardWorker` — one thread + one private
  :class:`~repro.api.solver.Solver` per shard; a plan compiles once per
  service and stays hot on its home shard.
* :class:`~repro.service.telemetry.ServiceStats` — per-kind counts, queue
  depths, the batch-size histogram, p50/p95/p99 latency, and plan-cache
  hit rates aggregated across shards, all backed by the typed
  :class:`~repro.obs.metrics.MetricsRegistry` the service owns.

The layer is observable end to end: construct the service with an
enabled :class:`~repro.obs.tracing.Tracer` and every request (and every
pipelined graph job) produces one span tree — admission wait, queue
wait, batch assembly, plan lookup, execute, handoff-lane transits, and
per-shard segment executions — exportable as Chrome trace-event JSON
(:func:`repro.obs.chrome_trace`) with one track per shard worker and
flow arrows across the handoff lanes.  Tracing is off by default and
the disabled path costs one thread-local read per hook.

Multi-iteration requests (the :mod:`repro.iterative` kinds — jacobi,
sor, cg, refine, power) flow through the same pipeline: a whole k-sweep
job executes on its plan key's home shard, where the compiled solver
engine and its inner per-shape plans stay hot across jobs, and the
telemetry accounts the per-kind sweep totals (``iterations_by_kind``).

Whole pipeline graphs (:mod:`repro.graph`) are first-class requests too.
A multi-level graph takes the **cross-shard pipelined path**: the service
compiles it once against a shared compile solver, splits the program into
level-aligned :class:`~repro.graph.program.ProgramSegment` units placed
per stage plan key, and streams the segments across shards through the
handoff lanes (:mod:`repro.service.pipeline` coordinates each job) —
independent same-level stages execute on distinct shards, deep graphs
overlap across requests, and results stay bit-identical to single-shard
execution.  Single-segment graphs keep the classic home-shard path:
routed by the tuple of their per-stage plan keys to one shard, where a
shard-local :class:`~repro.graph.compiler.GraphCompiler` lowers them
against the private plan cache.  Either way every stage plan compiles
once per service and re-submitted same-shaped graphs execute with zero
plan builds.  The telemetry's pipeline columns (``graphs``,
``graph_stages``, ``graph_fused``, ``segments``, ``handoffs``, stage
latency percentiles, the placement snapshot) account them.

See ``examples/serving_demo.py`` and ``examples/pipeline_demo.py`` for
end-to-end tours and ``benchmarks/test_service_throughput.py`` /
``benchmarks/test_pipeline_fusion.py`` for the claims this layer exists
to win.
"""

from .backpressure import BACKPRESSURE_POLICIES, BoundedRequestQueue
from .batcher import AdmissionBatcher
from .pipeline import PipelinedGraphJob, SegmentTask
from .placement import (
    PlacementSnapshot,
    PlacementTable,
    canonical_key_bytes,
    stable_placement_hash,
)
from .qos import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    ClientRateLimiter,
    RateLimit,
    TokenBucket,
    priority_name,
    resolve_priority,
)
from .request import GraphJob, RequestTrace, SolveRequest
from .service import SolverService
from .telemetry import ServiceStats, ShardStats, ShardTelemetry
from .workers import ShardWorker

__all__ = [
    "AdmissionBatcher",
    "BACKPRESSURE_POLICIES",
    "BoundedRequestQueue",
    "ClientRateLimiter",
    "GraphJob",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "PipelinedGraphJob",
    "PlacementSnapshot",
    "PlacementTable",
    "RateLimit",
    "RequestTrace",
    "SegmentTask",
    "ServiceStats",
    "ShardStats",
    "ShardTelemetry",
    "ShardWorker",
    "SolveRequest",
    "SolverService",
    "TokenBucket",
    "canonical_key_bytes",
    "priority_name",
    "resolve_priority",
    "stable_placement_hash",
]
