"""Concurrent serving layer over the plan/execute solver façade.

The ROADMAP's production-serving story, as a subsystem: many concurrent
callers multiplexed onto the cached, immutable
:class:`~repro.api.plan.ExecutionPlan` machinery so the (software) array
stays saturated the way the paper's streaming model keeps the hardware
saturated.

Pieces, front to back:

* :class:`~repro.service.service.SolverService` — the front door.
  ``submit(kind, *operands)`` validates synchronously, returns a
  ``concurrent.futures.Future`` of the usual
  :class:`~repro.api.solution.Solution`, and routes by plan key:
  ``shard = hash((kind, shapes, w, options)) % n_shards``.
* :class:`~repro.service.backpressure.BoundedRequestQueue` — per-shard
  bounded admission with ``block`` / ``reject`` / ``shed_oldest``
  overload policies and per-request deadlines.
* :class:`~repro.service.batcher.AdmissionBatcher` — collects a short
  admission window and groups it by plan key, so same-plan requests flush
  together through ``Solver.solve_batch`` (matvec pairs ride the
  overlapped contraflow path automatically).
* :class:`~repro.service.workers.ShardWorker` — one thread + one private
  :class:`~repro.api.solver.Solver` per shard; a plan compiles once per
  service and stays hot on its home shard.
* :class:`~repro.service.telemetry.ServiceStats` — per-kind counts, queue
  depths, the batch-size histogram, p50/p95 latency, and plan-cache hit
  rates aggregated across shards.

Multi-iteration requests (the :mod:`repro.iterative` kinds — jacobi,
sor, cg, refine, power) flow through the same pipeline: a whole k-sweep
job executes on its plan key's home shard, where the compiled solver
engine and its inner per-shape plans stay hot across jobs, and the
telemetry accounts the per-kind sweep totals (``iterations_by_kind``).

Whole pipeline graphs (:mod:`repro.graph`) are first-class requests too:
``submit_graph(graph)`` routes a multi-stage DAG by the tuple of its
per-stage plan keys to one home shard, where a shard-local
:class:`~repro.graph.compiler.GraphCompiler` lowers it against the
shard's private plan cache — every stage plan compiles once per service,
and re-submitted same-shaped graphs execute with zero plan builds.  The
telemetry's pipeline columns (``graphs``, ``graph_stages``,
``graph_fused``, stage latency percentiles) account them.

See ``examples/serving_demo.py`` and ``examples/pipeline_demo.py`` for
end-to-end tours and ``benchmarks/test_service_throughput.py`` /
``benchmarks/test_pipeline_fusion.py`` for the claims this layer exists
to win.
"""

from .backpressure import BACKPRESSURE_POLICIES, BoundedRequestQueue
from .batcher import AdmissionBatcher
from .request import GraphJob, SolveRequest
from .service import SolverService
from .telemetry import ServiceStats, ShardStats, ShardTelemetry
from .workers import ShardWorker

__all__ = [
    "AdmissionBatcher",
    "BACKPRESSURE_POLICIES",
    "BoundedRequestQueue",
    "GraphJob",
    "ServiceStats",
    "ShardStats",
    "ShardTelemetry",
    "ShardWorker",
    "SolveRequest",
    "SolverService",
]
