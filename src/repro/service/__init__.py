"""Concurrent serving layer over the plan/execute solver façade.

The ROADMAP's production-serving story, as a subsystem: many concurrent
callers multiplexed onto the cached, immutable
:class:`~repro.api.plan.ExecutionPlan` machinery so the (software) array
stays saturated the way the paper's streaming model keeps the hardware
saturated.

Pieces, front to back:

* :class:`~repro.service.service.SolverService` — the front door.
  ``submit(kind, *operands)`` validates synchronously, returns a
  ``concurrent.futures.Future`` of the usual
  :class:`~repro.api.solution.Solution`, and routes by plan key:
  ``shard = hash((kind, shapes, w, options)) % n_shards``.
* :class:`~repro.service.backpressure.BoundedRequestQueue` — per-shard
  bounded admission with ``block`` / ``reject`` / ``shed_oldest``
  overload policies and per-request deadlines.
* :class:`~repro.service.batcher.AdmissionBatcher` — collects a short
  admission window and groups it by plan key, so same-plan requests flush
  together through ``Solver.solve_batch`` (matvec pairs ride the
  overlapped contraflow path automatically).
* :class:`~repro.service.workers.ShardWorker` — one thread + one private
  :class:`~repro.api.solver.Solver` per shard; a plan compiles once per
  service and stays hot on its home shard.
* :class:`~repro.service.telemetry.ServiceStats` — per-kind counts, queue
  depths, the batch-size histogram, p50/p95 latency, and plan-cache hit
  rates aggregated across shards.

Multi-iteration requests (the :mod:`repro.iterative` kinds — jacobi,
sor, cg, refine, power) flow through the same pipeline: a whole k-sweep
job executes on its plan key's home shard, where the compiled solver
engine and its inner per-shape plans stay hot across jobs, and the
telemetry accounts the per-kind sweep totals (``iterations_by_kind``).

See ``examples/serving_demo.py`` for an end-to-end tour and
``benchmarks/test_service_throughput.py`` for the throughput claim this
layer exists to win.
"""

from .backpressure import BACKPRESSURE_POLICIES, BoundedRequestQueue
from .batcher import AdmissionBatcher
from .request import SolveRequest
from .service import SolverService
from .telemetry import ServiceStats, ShardStats, ShardTelemetry
from .workers import ShardWorker

__all__ = [
    "AdmissionBatcher",
    "BACKPRESSURE_POLICIES",
    "BoundedRequestQueue",
    "ServiceStats",
    "ShardStats",
    "ShardTelemetry",
    "ShardWorker",
    "SolveRequest",
    "SolverService",
]
