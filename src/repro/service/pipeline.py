"""Cross-shard pipelined graph jobs: segments, placement, completion.

The classic serving path pins a whole compiled graph to one home shard.
This module is the coordination layer for the pipelined alternative: the
service compiles a graph once (against its shared compile solver), splits
the program into level-aligned :class:`~repro.graph.program.ProgramSegment`
units placed per plan key by the
:class:`~repro.service.placement.PlacementTable`, and admits the level-0
segments to their shards.  Each shard worker that finishes a segment
reports back to the job, which releases the next level's segments into
the target shards' *handoff lanes*
(:meth:`~repro.service.backpressure.BoundedRequestQueue.put_handoff`) —
macro-systolic flow: stage outputs stream between shards, and level k of
one request overlaps level k−1 of the next.

A :class:`PipelinedGraphJob` owns the parts every segment needs to agree
on: the caller's future (resolved exactly once), the shared per-stage
output/solution/latency slots (segments write index-disjoint entries),
the level cursor that decides when the next wave dispatches, and the
failure latch — one failed or shed segment fails the *whole* request and
makes every sibling segment a no-op, so no orphan ever executes against
a dead future.

Value flow is bit-identical to :meth:`PipelineProgram.run`: segments only
dispatch after every segment of the previous level completed, and both
paths execute identical plans over identical operand bindings in level
order.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Hashable, List, Optional, Sequence, Tuple

from ..api.config import ExecutionOptions
from ..api.solution import Solution
from ..graph.program import PipelineProgram, PipelineResult, ProgramSegment
from .qos import PRIORITY_NORMAL
from .request import RequestTrace, SolveRequest
from .telemetry import ShardTelemetry

__all__ = ["PipelinedGraphJob", "SegmentTask"]


@dataclass
class SegmentTask:
    """One placed segment of a pipelined graph job.

    Wraps the :class:`ProgramSegment` with its target shard and the
    :class:`SolveRequest` that carries it through that shard's queue
    (``request.segment`` points back here; the request's own future is
    never surfaced — the job's parent future is the caller-visible one).
    """

    job: "PipelinedGraphJob"
    position: int
    shard: int
    segment: ProgramSegment
    request: SolveRequest = field(init=False)
    #: Trace plumbing, written by the dispatching thread before the task
    #: enters its shard queue / handoff lane: the flow id linking the
    #: producing segment's span to this one's, the shard that produced
    #: the inputs, and the tracer-clock dispatch instant (so the consumer
    #: can backdate a ``handoff_transit`` span).
    flow_id: Optional[int] = None
    from_shard: Optional[int] = None
    dispatched_at: Optional[float] = None

    def __post_init__(self) -> None:
        self.request = SolveRequest(
            kind="graph_segment",
            operands=(),
            plan_key=self.job.graph_key,
            options=self.job.options,
            deadline=self.job.deadline,
            priority=self.job.priority,
            client_id=self.job.client_id,
            segment=self,
        )

    @property
    def level(self) -> int:
        return self.segment.level


class PipelinedGraphJob:
    """Shared state of one graph request executing across shards.

    All cross-segment coordination (start latch, failure latch, level
    cursor) serializes on one lock; segment *execution* itself touches
    only index-disjoint slots of the shared per-stage lists, so shards on
    the same level run genuinely concurrently.
    """

    def __init__(
        self,
        program: PipelineProgram,
        graph_key: Hashable,
        segments: Sequence[ProgramSegment],
        shards: Sequence[int],
        home_shard: int,
        home_telemetry: ShardTelemetry,
        dispatch: Callable[["SegmentTask"], None],
        options: Optional[ExecutionOptions] = None,
        deadline: Optional[float] = None,
        trace: Optional[RequestTrace] = None,
        priority: int = PRIORITY_NORMAL,
        client_id: Optional[str] = None,
    ):
        if len(segments) != len(shards):
            raise ValueError(
                f"got {len(segments)} segments but {len(shards)} placements"
            )
        self.program = program
        self.graph_key = graph_key
        self.options = options
        self.deadline = deadline
        #: The whole job's admission class; every level-0 segment request
        #: carries it, so a full shard queue sheds a low-class pipeline
        #: before a high-class one (the failure latch then retires the
        #: job's siblings).  Handoff-lane segments are shed-exempt.
        self.priority = int(priority)
        self.client_id = client_id
        self.home_shard = home_shard
        self.home_telemetry = home_telemetry
        self.dispatch = dispatch
        #: Trace context of the whole job; segment spans hang off its root.
        self.trace = trace
        self.future: "Future[PipelineResult]" = Future()
        self.enqueued_at = time.monotonic()
        # The compile charge is consumed here — at admission — so the
        # result's warm/cold accounting matches PipelineProgram.run():
        # charged to the first execution of this program, zero for a
        # warm-cache recompile.
        self._compile_charge = program.consume_compile_charge()
        n = len(program.stages)
        #: Shared per-stage execution slots; segments write disjoint indices.
        self.outputs: List[object] = [None] * n
        self.solutions: List[Optional[Solution]] = [None] * n
        self.latencies: List[float] = [0.0] * n
        placements = [0] * n
        self._tasks_by_level: List[List[SegmentTask]] = []
        last_level: Optional[int] = None
        for position, (segment, shard) in enumerate(zip(segments, shards)):
            task = SegmentTask(
                job=self, position=position, shard=int(shard), segment=segment
            )
            if segment.level != last_level:
                self._tasks_by_level.append([])
                last_level = segment.level
            self._tasks_by_level[-1].append(task)
            for stage in segment.stages:
                placements[stage.index] = int(shard)
        self.placements: Tuple[int, ...] = tuple(placements)
        self._lock = threading.Lock()
        self._failed = False
        self._started = False
        self._start_ok = False
        self._clock_start = 0.0
        self._level_cursor = 0
        self._pending_in_level = len(self._tasks_by_level[0])

    # -- introspection ----------------------------------------------------------
    @property
    def n_segments(self) -> int:
        return sum(len(tasks) for tasks in self._tasks_by_level)

    @property
    def failed(self) -> bool:
        with self._lock:
            return self._failed

    def first_tasks(self) -> Tuple[SegmentTask, ...]:
        """The level-0 wave the service admits through the front door."""
        return tuple(self._tasks_by_level[0])

    def all_tasks(self) -> Tuple[SegmentTask, ...]:
        return tuple(
            task for tasks in self._tasks_by_level for task in tasks
        )

    def latency(self, now: Optional[float] = None) -> float:
        """Seconds since the job entered the service."""
        return (time.monotonic() if now is None else now) - self.enqueued_at

    # -- the coordination protocol ------------------------------------------------
    def mark_running(self) -> bool:
        """Transition the parent future to RUNNING (first segment only).

        Returns False — and latches the job as failed — when the caller
        cancelled the future while the job was queued; every sibling
        segment then drops without executing.
        """
        with self._lock:
            if self._failed:
                return False
            if self._started:
                return self._start_ok
            self._started = True
            self._start_ok = self.future.set_running_or_notify_cancel()
            if self._start_ok:
                self._clock_start = time.perf_counter()
            else:
                self._failed = True
                if self.trace is not None:
                    self.trace.root.finish(status="cancelled")
            return self._start_ok

    def fail(self, exc: BaseException) -> bool:
        """Fail the whole request; True only for the resolving call.

        Latches ``failed`` either way, so in-flight and still-queued
        sibling segments become no-ops; callers gate their failure
        telemetry on the return value (exactly one of several
        concurrently-failing shards records the job).
        """
        with self._lock:
            self._failed = True
        if self.trace is not None:
            # Idempotent: whichever of several concurrently-failing
            # shards gets here first closes the root; no path leaves it
            # open.
            self.trace.root.finish(status="error", error=exc)
        try:
            self.future.set_exception(exc)
            return True
        except Exception:
            return False  # already resolved or cancelled

    def resolve(self, result: PipelineResult) -> bool:
        """Resolve the caller's future and close the trace root as ok."""
        if self.trace is not None:
            self.trace.root.finish()
        try:
            self.future.set_result(result)
            return True
        except Exception:
            return False

    def complete_segment(self) -> Tuple[Tuple[SegmentTask, ...], bool]:
        """Account one finished segment; returns (next wave, finished).

        The next level's tasks are released exactly when the last segment
        of the current level lands; ``finished`` is True exactly once —
        for the segment that completed the final level.
        """
        with self._lock:
            if self._failed:
                return (), False
            self._pending_in_level -= 1
            if self._pending_in_level > 0:
                return (), False
            self._level_cursor += 1
            if self._level_cursor >= len(self._tasks_by_level):
                return (), True
            wave = tuple(self._tasks_by_level[self._level_cursor])
            self._pending_in_level = len(wave)
            return wave, False

    def assemble(self) -> PipelineResult:
        """Fold the executed slots into the caller-visible result."""
        return self.program.assemble(
            self.solutions,
            self.outputs,
            self.latencies,
            total_seconds=time.perf_counter() - self._clock_start,
            compile_plan_builds=self._compile_charge,
            placements=self.placements,
        )
