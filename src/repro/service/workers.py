"""Sharded worker pool: one thread, one solver, one hot plan cache per shard.

Requests are routed to shards by ``hash(plan_key) % n_shards`` (see
:class:`~repro.service.service.SolverService`), so every request of a
given plan lands on the same shard: the plan compiles once per shard and
stays resident in that shard's private
:class:`~repro.api.plan.PlanCache`.  Because each shard owns its own
:class:`~repro.api.solver.Solver` and executes on a single thread, plan
executors never run concurrently — thread-safety concerns collapse to the
queue, the telemetry lock, and the (now lock-guarded) plan cache.

A worker's loop is: collect an admission window via the
:class:`~repro.service.batcher.AdmissionBatcher`, split it into plan-keyed
groups, and flush each group — multi-request matvec groups through
``Solver.solve_batch`` (riding the overlapped contraflow pairing), every
other group member individually through ``Solver.solve``.  Whole-pipeline
jobs (requests carrying a :class:`~repro.service.request.GraphJob`)
compile and execute through a shard-local
:class:`~repro.graph.compiler.GraphCompiler` bound to the shard's private
solver, so every stage plan of a routed graph compiles once per service
and re-submissions execute with zero plan builds.  *Pipelined* graph jobs
(requests carrying a :class:`~repro.service.pipeline.SegmentTask`)
execute one placed program segment against the parent job's shared state,
then hand the next level's segments to their shards' handoff lanes — the
cross-shard macro-systolic path.  All failures resolve futures; the
worker thread itself never dies on a request error.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from ..api.solver import Solver
from ..errors import DeadlineExceededError, ServiceClosedError
from ..graph.compiler import GraphCompiler
from ..obs.tracing import NULL_SPAN
from .backpressure import BoundedRequestQueue
from .batcher import AdmissionBatcher
from .request import SolveRequest
from .telemetry import ShardTelemetry

__all__ = ["ShardWorker"]


class ShardWorker:
    """One shard: a queue, a batcher, a private solver, and its thread."""

    def __init__(
        self,
        shard_id: int,
        solver: Solver,
        queue: BoundedRequestQueue,
        telemetry: ShardTelemetry,
        max_batch_size: int = 16,
        max_batch_delay: float = 0.002,
        idle_poll: float = 0.05,
        name: Optional[str] = None,
    ):
        self.shard_id = shard_id
        self.solver = solver
        self.queue = queue
        self.telemetry = telemetry
        #: The trace track this worker's spans render on.
        self.track = f"shard {shard_id}"
        self._batcher = AdmissionBatcher(
            queue,
            max_batch_size=max_batch_size,
            max_batch_delay=max_batch_delay,
            idle_poll=idle_poll,
        )
        self._stopping = False
        self._drain_on_stop = True
        self._thread = threading.Thread(
            target=self._run,
            name=name or f"repro-service-shard-{shard_id}",
            daemon=True,
        )

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        self._thread.start()

    def request_stop(self, drain: bool = True) -> None:
        """Ask the worker to exit; with ``drain`` it finishes queued work first.

        The caller must also :meth:`BoundedRequestQueue.close` the queue so
        an idle worker wakes immediately.
        """
        self._drain_on_stop = drain
        self._stopping = True

    def join(self, timeout: Optional[float] = None) -> None:
        if self._thread.is_alive():
            self._thread.join(timeout)

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    # -- the worker loop ----------------------------------------------------------
    def _run(self) -> None:
        while True:
            window = self._batcher.next_window()
            if not window:
                if self._stopping and len(self.queue) == 0:
                    return
                continue
            if self._stopping and not self._drain_on_stop:
                closed = ServiceClosedError(
                    "service closed without draining pending requests"
                )
                for request in window:
                    self._fail_undrained(request, closed)
                continue
            # Segments first: they arrived through the priority handoff
            # lane (or are a pipeline's admission wave) and upstream
            # shards may already be blocked on their output.
            plain: List[SolveRequest] = []
            for request in window:
                if request.segment is not None:
                    self._execute_segment(request)
                else:
                    plain.append(request)
            for group in AdmissionBatcher.group_by_plan(plain):
                self._execute_group(group)

    def _fail_undrained(
        self, request: SolveRequest, closed: ServiceClosedError
    ) -> None:
        """Resolve one abandoned request on a non-draining shutdown."""
        task = request.segment
        if task is not None:
            if task.job.fail(closed):
                task.job.home_telemetry.record_failed(task.job.latency())
        elif request.fail(closed):
            self.telemetry.record_failed(request.latency())

    def _execute_group(self, group: List[SolveRequest]) -> None:
        """Flush one plan-keyed group, resolving every member's future."""
        now = time.monotonic()
        live: List[SolveRequest] = []
        for request in group:
            if request.expired(now):
                self.telemetry.record_expired()
                request.fail(
                    DeadlineExceededError(
                        f"{request.kind} request exceeded its deadline "
                        f"after {request.latency(now):.3f}s in queue"
                    )
                )
            elif not request.future.set_running_or_notify_cancel():
                # Caller cancelled while queued; nothing to resolve, but
                # the trace must still end coherently.
                if request.trace is not None:
                    request.trace.root.finish(status="cancelled")
            else:
                live.append(request)
        if not live:
            return
        self.telemetry.record_batch(len(live))
        traced = [request for request in live if request.trace is not None]
        if traced:
            # Retroactive spans from stamps both endpoints of which are
            # now known: admission → dequeue is queue_wait, dequeue →
            # here is batch_assembly.  Backdating means a request that
            # never reached this point (shed, expired, closed) never
            # opened these spans — nothing to leak.
            assembled_at = traced[0].trace.tracer.now()
            for request in traced:
                trace = request.trace
                if trace.admitted_at is None or request.dequeued_at is None:
                    continue
                trace.root.child(
                    "queue_wait", track=self.track, category="queue",
                    start=trace.admitted_at,
                ).finish(end=request.dequeued_at)
                trace.root.child(
                    "batch_assembly", track=self.track, category="queue",
                    start=request.dequeued_at, batch=len(live),
                ).finish(end=assembled_at)
        # Every live member shares a plan key, hence identical resolved
        # options — the ExecutionOptions embedded in the key itself.
        options = live[0].plan_key[3]
        if len(live) > 1:
            # One physical solve_batch serves the whole flush; the first
            # traced member's execute span is activated (so plan-lookup /
            # plan-execute children nest under it) and its siblings get
            # identical retroactive spans — the shared interval is the
            # truth of a batched execution.
            lead = NULL_SPAN
            if traced:
                lead = traced[0].trace.root.child(
                    "execute", track=self.track, category="execute",
                    batch=len(live),
                )
            try:
                with lead:
                    solutions = self.solver.solve_batch(
                        live[0].kind,
                        [request.operands for request in live],
                        options=options,
                    )
            except Exception:
                # A plan key only sees operands[0], so one member with
                # e.g. a wrong-length vector can sink the whole flush.
                # Re-run the group one by one so the error stays with
                # the request that caused it.
                for request in live:
                    self._execute_one(request, options)
                return
            for request in traced[1:]:
                request.trace.root.child(
                    "execute", track=self.track, category="execute",
                    start=lead.start, batch=len(live),
                ).finish(end=lead.end)
            for request, solution in zip(live, solutions):
                # Telemetry first: a RUNNING future cannot be cancelled,
                # so set_result is infallible — and the caller it wakes
                # may read stats() immediately.
                self.telemetry.record_completed(request.latency())
                self._record_iterations(request.kind, solution)
                request.resolve(solution)
            return
        self._execute_one(live[0], options)

    def _record_iterations(self, kind: str, solution) -> None:
        """Account multi-iteration solves (jacobi, sor, cg, ...) per kind."""
        iterations = solution.stats.get("iterations")
        if isinstance(iterations, int) and iterations > 0:
            self.telemetry.record_iterations(kind, iterations)

    def _execute_one(self, request: SolveRequest, options) -> None:
        """Solve one (RUNNING) request, resolving its future either way.

        Telemetry is recorded *before* the future resolves: resolution
        wakes the caller, who may snapshot stats straight away.
        """
        if request.graph is not None:
            self._execute_graph(request)
            return
        span = NULL_SPAN
        if request.trace is not None:
            span = request.trace.root.child(
                "execute", track=self.track, category="execute",
                kind=request.kind,
            )
        try:
            # Activated: the solver's plan_lookup / plan.execute spans
            # nest under this request's execute span.
            with span:
                solution = self.solver.solve(
                    request.kind, *request.operands,
                    options=options, **request.kwargs,
                )
        except Exception as exc:
            self.telemetry.record_failed(request.latency())
            request.fail(exc)
            return
        self.telemetry.record_completed(request.latency())
        self._record_iterations(request.kind, solution)
        request.resolve(solution)

    def _execute_graph(self, request: SolveRequest) -> None:
        """Compile and run one whole-pipeline job on this shard's solver.

        Compilation resolves every stage plan through the shard's private
        plan cache, so a re-submitted graph is pure warm execution; the
        per-graph telemetry (stage count, fused stages, per-stage
        latencies) feeds the fleet snapshot's pipeline columns.
        """
        job = request.graph
        assert job is not None
        span = NULL_SPAN
        if request.trace is not None:
            span = request.trace.root.child(
                "execute", track=self.track, category="execute", kind="graph"
            )
        try:
            # The request's options (when given) are the base the routing
            # keys were derived from; compiling under the same base keeps
            # the home-shard zero-recompile guarantee for graphs that
            # carry per-request options.  The activated span collects the
            # compile's plan lookups and the program's stage spans.
            with span:
                compiler = GraphCompiler(
                    self.solver, fuse=job.fuse, options=request.options
                )
                result = compiler.run(job.graph)
        except Exception as exc:
            self.telemetry.record_failed(request.latency())
            request.fail(exc)
            return
        self.telemetry.record_completed(request.latency())
        self.telemetry.record_graph(
            stages=len(result.solutions),
            fused=result.fused_pairs + result.fused_rewrites,
            stage_latencies=result.stage_seconds,
            levels=(max(result.levels) + 1) if result.levels else 0,
            kinds=result.kinds,
        )
        for kind, solution in zip(result.kinds, result.solutions):
            self._record_iterations(kind, solution)
        request.resolve(result)

    def _execute_segment(self, request: SolveRequest) -> None:
        """Run one placed segment of a cross-shard pipelined graph job.

        The parent job coordinates everything cross-segment: a sibling's
        failure (or a shed, or a caller cancel) makes this a no-op, the
        level cursor releases the next wave into the handoff lanes, and
        the segment that lands the final level assembles the result and
        resolves the parent future.  All whole-job telemetry (completed /
        failed / expired / graph rows) goes to the job's *home* shard so
        the fleet snapshot counts each pipelined graph exactly once;
        this shard records only its own segment execution.
        """
        task = request.segment
        assert task is not None
        job = task.job
        if job.failed:
            return  # a sibling already failed the whole request
        if request.expired():
            if job.fail(
                DeadlineExceededError(
                    f"pipelined graph request exceeded its deadline after "
                    f"{job.latency():.3f}s (level {task.level} still queued)"
                )
            ):
                job.home_telemetry.record_expired()
            return
        if not job.mark_running():
            return  # caller cancelled while the job was queued
        trace = job.trace
        seg_span = NULL_SPAN
        if trace is not None:
            # The lane transit (or admission-queue wait, for level 0) is
            # reconstructed retroactively from the dispatch stamp — both
            # endpoints known, nothing to leak.
            if task.dispatched_at is not None and request.dequeued_at is not None:
                transit_name = (
                    "handoff_transit" if task.from_shard is not None
                    else "queue_wait"
                )
                transit = trace.root.child(
                    transit_name, track=self.track, category="queue",
                    start=task.dispatched_at, level=task.level,
                )
                if task.from_shard is not None:
                    transit.annotate(from_shard=task.from_shard)
                transit.finish(end=request.dequeued_at)
            seg_span = trace.root.child(
                f"segment L{task.level}", track=self.track,
                category="segment", shard=self.shard_id, level=task.level,
            )
            if task.flow_id is not None:
                # Arrow head: the producing segment's flow lands here.
                seg_span.flow_in(task.flow_id)
        try:
            # Activated: per-stage spans from ProgramSegment.execute nest
            # under this shard's segment span; an exception closes it as
            # failed before the job latch fires.
            with seg_span:
                task.segment.execute(job.outputs, job.solutions, job.latencies)
        except Exception as exc:
            if job.fail(exc):
                job.home_telemetry.record_failed(job.latency())
            return
        self.telemetry.record_segment()
        next_wave, finished = job.complete_segment()
        if trace is not None and next_wave:
            # Each released segment gets a flow arrow from this span to
            # its own; the dispatch stamp starts its transit span.
            dispatched_at = trace.tracer.now()
            for next_task in next_wave:
                flow = trace.tracer.new_flow()
                seg_span.flow_out(flow)
                next_task.flow_id = flow
                next_task.from_shard = self.shard_id
                next_task.dispatched_at = dispatched_at
        for next_task in next_wave:
            try:
                job.dispatch(next_task)
            except Exception as exc:
                if job.fail(exc):
                    job.home_telemetry.record_failed(job.latency())
                return
        if not finished:
            return
        result = job.assemble()
        job.home_telemetry.record_completed(job.latency())
        job.home_telemetry.record_graph(
            stages=len(result.solutions),
            fused=result.fused_pairs + result.fused_rewrites,
            stage_latencies=result.stage_seconds,
            levels=(max(result.levels) + 1) if result.levels else 0,
            kinds=result.kinds,
        )
        for kind, solution in zip(result.kinds, result.solutions):
            iterations = solution.stats.get("iterations")
            if isinstance(iterations, int) and iterations > 0:
                job.home_telemetry.record_iterations(kind, iterations)
        job.resolve(result)
