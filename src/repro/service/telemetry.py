"""Service observability: per-shard accounting and fleet-wide snapshots.

Each shard worker owns a :class:`ShardTelemetry` — a lock-guarded bundle
of counters (per-kind request counts, per-kind iterative sweep totals,
completions, failures, rejections, deadline expiries), a batch-size
histogram, a high-water queue depth, and a bounded reservoir of recent
request latencies.  ``SolverService.stats()``
snapshots every shard and folds them into one :class:`ServiceStats`:
aggregate counts, the merged batch histogram, p50/p95 latency over the
pooled reservoirs, and plan-cache hit rates summed across shards (via
``CacheStats.__add__``).

Snapshots are immutable values; taking one never blocks the serving path
beyond the per-shard counter locks.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Deque, List, Mapping, Optional, Sequence, Tuple

from ..api.plan import CacheStats
from ..instrumentation import counters as _instrumentation_counters

__all__ = ["ShardStats", "ShardTelemetry", "ServiceStats", "percentile"]

#: How many recent per-request latencies each shard keeps for percentiles.
LATENCY_RESERVOIR_SIZE = 4096

# The process-wide instrumentation counters are plain integers; bumps from
# different shards (each holding only its own telemetry lock) would race,
# so all service-layer increments serialize on this one module lock.
_INSTRUMENTATION_LOCK = threading.Lock()


def percentile(sample: Sequence[float], fraction: float) -> Optional[float]:
    """Nearest-rank percentile of ``sample`` (``None`` for an empty sample)."""
    if not sample:
        return None
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"percentile fraction must be in [0, 1], got {fraction}")
    ordered = sorted(sample)
    rank = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass(frozen=True)
class ShardStats:
    """Immutable snapshot of one shard's accounting."""

    shard_id: int
    submitted: int
    completed: int
    failed: int
    rejected: int
    shed: int
    expired: int
    batches: int
    requests_by_kind: Mapping[str, int]
    batch_size_histogram: Mapping[int, int]
    queue_depth: int
    max_queue_depth: int
    latency_p50: Optional[float]
    latency_p95: Optional[float]
    cache: CacheStats
    latency_sample: Tuple[float, ...] = field(repr=False, default=())
    #: Total iterative sweeps executed per kind (jacobi/sor/cg/refine/
    #: power/gauss_seidel); empty for shards that served only direct kinds.
    iterations_by_kind: Mapping[str, int] = field(default_factory=dict)


class ShardTelemetry:
    """Thread-safe accounting for one shard worker.

    The submitting thread records admission events (submitted, rejected,
    shed) and the shard worker records execution events (batches,
    completions, failures, expiries); one lock keeps both sides exact.
    """

    def __init__(self, shard_id: int):
        self.shard_id = shard_id
        self._lock = threading.Lock()
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._rejected = 0
        self._shed = 0
        self._expired = 0
        self._batches = 0
        self._by_kind: "Counter[str]" = Counter()
        self._batch_sizes: "Counter[int]" = Counter()
        self._iterations_by_kind: "Counter[str]" = Counter()
        self._max_queue_depth = 0
        self._latencies: Deque[float] = deque(maxlen=LATENCY_RESERVOIR_SIZE)

    # -- admission events (submitting threads) -----------------------------------
    def record_submitted(self, kind: str, queue_depth: int) -> None:
        with self._lock:
            self._submitted += 1
            self._by_kind[kind] += 1
            if queue_depth > self._max_queue_depth:
                self._max_queue_depth = queue_depth
        with _INSTRUMENTATION_LOCK:
            _instrumentation_counters.service_requests += 1

    def record_rejected(self) -> None:
        with self._lock:
            self._rejected += 1

    def record_shed(self) -> None:
        with self._lock:
            self._shed += 1

    # -- execution events (the shard worker) -------------------------------------
    def record_batch(self, size: int) -> None:
        with self._lock:
            self._batches += 1
            self._batch_sizes[size] += 1
        with _INSTRUMENTATION_LOCK:
            _instrumentation_counters.service_batches += 1

    def record_completed(self, latency: float) -> None:
        with self._lock:
            self._completed += 1
            self._latencies.append(latency)

    def record_iterations(self, kind: str, iterations: int) -> None:
        """Account the sweeps of one completed multi-iteration solve.

        The shard worker calls this for every solution that reports an
        ``iterations`` stat, so the fleet snapshot can show how much
        iterative work each kind pushed through the warm plan caches.
        """
        with self._lock:
            self._iterations_by_kind[kind] += int(iterations)

    def record_failed(self, latency: float) -> None:
        with self._lock:
            self._failed += 1
            self._latencies.append(latency)

    def record_expired(self) -> None:
        with self._lock:
            self._expired += 1

    # -- snapshot -----------------------------------------------------------------
    def snapshot(self, queue_depth: int, cache: CacheStats) -> ShardStats:
        with self._lock:
            sample = tuple(self._latencies)
            return ShardStats(
                shard_id=self.shard_id,
                submitted=self._submitted,
                completed=self._completed,
                failed=self._failed,
                rejected=self._rejected,
                shed=self._shed,
                expired=self._expired,
                batches=self._batches,
                requests_by_kind=dict(self._by_kind),
                batch_size_histogram=dict(self._batch_sizes),
                queue_depth=queue_depth,
                max_queue_depth=self._max_queue_depth,
                latency_p50=percentile(sample, 0.50),
                latency_p95=percentile(sample, 0.95),
                cache=cache,
                latency_sample=sample,
                iterations_by_kind=dict(self._iterations_by_kind),
            )


@dataclass(frozen=True)
class ServiceStats:
    """Fleet-wide snapshot: every shard folded into one view."""

    n_shards: int
    submitted: int
    completed: int
    failed: int
    rejected: int
    shed: int
    expired: int
    batches: int
    requests_by_kind: Mapping[str, int]
    batch_size_histogram: Mapping[int, int]
    queue_depth: int
    max_queue_depth: int
    latency_p50: Optional[float]
    latency_p95: Optional[float]
    cache: CacheStats
    shards: Tuple[ShardStats, ...]
    iterations_by_kind: Mapping[str, int] = field(default_factory=dict)

    @classmethod
    def aggregate(cls, shards: Sequence[ShardStats]) -> "ServiceStats":
        by_kind: "Counter[str]" = Counter()
        histogram: "Counter[int]" = Counter()
        iterations: "Counter[str]" = Counter()
        pooled: List[float] = []
        cache = CacheStats()
        for shard in shards:
            by_kind.update(shard.requests_by_kind)
            histogram.update(shard.batch_size_histogram)
            iterations.update(shard.iterations_by_kind)
            pooled.extend(shard.latency_sample)
            cache = cache + shard.cache
        return cls(
            n_shards=len(shards),
            submitted=sum(s.submitted for s in shards),
            completed=sum(s.completed for s in shards),
            failed=sum(s.failed for s in shards),
            rejected=sum(s.rejected for s in shards),
            shed=sum(s.shed for s in shards),
            expired=sum(s.expired for s in shards),
            batches=sum(s.batches for s in shards),
            requests_by_kind=dict(by_kind),
            batch_size_histogram=dict(histogram),
            queue_depth=sum(s.queue_depth for s in shards),
            max_queue_depth=max((s.max_queue_depth for s in shards), default=0),
            latency_p50=percentile(pooled, 0.50),
            latency_p95=percentile(pooled, 0.95),
            cache=cache,
            shards=tuple(shards),
            iterations_by_kind=dict(iterations),
        )

    @property
    def mean_batch_size(self) -> float:
        """Requests per flush — >1 means admission batching is working."""
        flushed = sum(size * count for size, count in self.batch_size_histogram.items())
        return flushed / self.batches if self.batches else 0.0

    def describe(self) -> str:
        """Multi-line human-readable report (used by the serving demo)."""

        def _ms(value: Optional[float]) -> str:
            return "n/a" if value is None else f"{value * 1e3:.2f} ms"

        lines = [
            f"SolverService across {self.n_shards} shard(s)",
            (
                f"  requests:    {self.submitted} submitted, "
                f"{self.completed} completed, {self.failed} failed, "
                f"{self.rejected} rejected, {self.shed} shed, "
                f"{self.expired} expired"
            ),
            (
                f"  queue:       {self.queue_depth} pending now, "
                f"high-water {self.max_queue_depth}"
            ),
            (
                f"  batching:    {self.batches} flushes, "
                f"mean batch size {self.mean_batch_size:.2f}"
            ),
            f"  latency:     p50 {_ms(self.latency_p50)}, p95 {_ms(self.latency_p95)}",
            (
                f"  plan cache:  {self.cache.hits} hits / "
                f"{self.cache.misses} misses "
                f"(hit rate {self.cache.hit_rate:.3f}), "
                f"{self.cache.size} plans resident across shards"
            ),
        ]
        if self.requests_by_kind:
            by_kind = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.requests_by_kind.items())
            )
            lines.insert(2, f"  by kind:     {by_kind}")
        if self.iterations_by_kind:
            sweeps = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.iterations_by_kind.items())
            )
            lines.append(f"  iterations:  {sweeps} (sweeps on warm plans)")
        if self.batch_size_histogram:
            histogram = ", ".join(
                f"{size}x{count}"
                for size, count in sorted(self.batch_size_histogram.items())
            )
            lines.append(f"  batch sizes: {histogram}")
        for shard in self.shards:
            lines.append(
                f"  shard {shard.shard_id}:     {shard.submitted} requests, "
                f"{shard.batches} flushes, cache hit rate "
                f"{shard.cache.hit_rate:.3f}, p95 {_ms(shard.latency_p95)}"
            )
        return "\n".join(lines)
