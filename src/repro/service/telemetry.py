"""Service observability: per-shard accounting and fleet-wide snapshots.

Each shard worker owns a :class:`ShardTelemetry`, which since PR 8 is a
*view factory* over a :class:`~repro.obs.metrics.MetricsRegistry` rather
than a private bundle of ad-hoc counters: every admission/execution
event lands in a typed, locked instrument (``service.*`` counters,
queue/lane-depth gauges with high-water marks, latency histograms with
bounded reservoirs), all labelled by shard so one registry carries the
whole fleet.  ``SolverService.stats()`` snapshots every shard and folds
them into one :class:`ServiceStats`: aggregate counts, the merged batch
histogram, p50/p95/p99 latency over the pooled reservoirs, and
plan-cache hit rates summed across shards (via ``CacheStats.__add__``).

:class:`ShardStats` / :class:`ServiceStats` keep their dataclass shape —
they are how tests, demos and the throughput benchmark read the service
— but every number in them is now a registry read taken in one
consistent cut (one lock hold across all of a shard's instruments, so a
"completed" count and its latency reservoir can never tear).

Percentiles sort the reservoir once per snapshot and take all ranks from
that one ordering (:func:`repro.obs.metrics.percentiles`).
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..api.plan import CacheStats
from ..instrumentation import counters as _instrumentation_counters
from ..obs.metrics import Counter, MetricsRegistry, percentiles
from .placement import PlacementSnapshot
from .qos import priority_name

__all__ = ["ShardStats", "ShardTelemetry", "ServiceStats", "percentile"]

#: How many recent per-request latencies each shard keeps for percentiles.
LATENCY_RESERVOIR_SIZE = 4096

#: The percentile fractions every latency summary reports.
_FRACTIONS = (0.50, 0.95, 0.99)


def _ms(value: Optional[float]) -> str:
    """Milliseconds with an ``n/a`` fallback, for the describe() reports."""
    return "n/a" if value is None else f"{value * 1e3:.2f} ms"


def percentile(sample: Sequence[float], fraction: float) -> Optional[float]:
    """Nearest-rank percentile of ``sample`` (``None`` for an empty sample).

    Single-fraction convenience over
    :func:`repro.obs.metrics.percentiles`; summaries that need several
    ranks should call that directly so the reservoir is sorted once.
    """
    return percentiles(sample, (fraction,))[0]


@dataclass(frozen=True)
class ShardStats:
    """Immutable snapshot of one shard's accounting."""

    shard_id: int
    submitted: int
    completed: int
    failed: int
    rejected: int
    shed: int
    expired: int
    batches: int
    requests_by_kind: Mapping[str, int]
    batch_size_histogram: Mapping[int, int]
    queue_depth: int
    max_queue_depth: int
    latency_p50: Optional[float]
    latency_p95: Optional[float]
    cache: CacheStats
    latency_sample: Tuple[float, ...] = field(repr=False, default=())
    latency_p99: Optional[float] = None
    #: Total iterative sweeps executed per kind (jacobi/sor/cg/refine/
    #: power/gauss_seidel); empty for shards that served only direct kinds.
    iterations_by_kind: Mapping[str, int] = field(default_factory=dict)
    #: Whole-pipeline jobs completed on this shard.
    graphs: int = 0
    #: Total stages executed across those pipeline jobs.
    graph_stages: int = 0
    #: Fusion *events* across those jobs: each overlapped matvec pair run
    #: (covering two stages) counts one, as does each matmul→matvec
    #: associativity rewrite.
    graph_fused: int = 0
    stage_latency_p50: Optional[float] = None
    stage_latency_p95: Optional[float] = None
    stage_latency_p99: Optional[float] = None
    stage_latency_sample: Tuple[float, ...] = field(repr=False, default=())
    #: Summed pipeline depth (levels) across those jobs — ``graph_levels /
    #: graphs`` is the mean depth; an NN forward pass is as deep as it is
    #: long, a fan-out workload is shallower than its stage count.
    graph_levels: int = 0
    #: Stage executions per kind across pipeline jobs (the per-layer view:
    #: an MLP graph shows up as dense/bias/relu/quantize/dequantize here).
    graph_stages_by_kind: Mapping[str, int] = field(default_factory=dict)
    #: Pipelined-graph segments this shard executed (each a level-aligned
    #: slice of some cross-shard pipelined job).
    segments: int = 0
    #: Mid-pipeline segments handed *to* this shard's handoff lane.
    handoffs: int = 0
    #: Handoffs refused because this shard's handoff lane was full.
    handoffs_rejected: int = 0
    #: High-water depth of this shard's handoff lane.
    max_handoff_depth: int = 0
    #: Submissions refused by the per-client rate limiter (typed
    #: :class:`~repro.errors.RateLimitedError` rejections).
    rate_limited: int = 0
    #: Shed evictions per priority class name ("low"/"normal"/"high" or
    #: "p<level>") — the observable proof that overload sheds
    #: lowest-class-first.
    shed_by_priority: Mapping[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        """One-shard, one-paragraph report (``ServiceStats.describe`` uses it)."""
        # An unobserved cache (no hits, no misses — e.g. describe() called
        # without a snapshot) has no meaningful rate; 0.000 would read as
        # "completely cold", the opposite of unknown.
        observed = self.cache.hits + self.cache.misses
        hit_rate = f"{self.cache.hit_rate:.3f}" if observed else "n/a"
        line = (
            f"shard {self.shard_id}: {self.submitted} requests, "
            f"{self.batches} flushes, cache hit rate "
            f"{hit_rate}, p95 {_ms(self.latency_p95)}, "
            f"p99 {_ms(self.latency_p99)}"
        )
        if self.graphs:
            line += (
                f", {self.graphs} pipeline(s) x "
                f"{self.graph_stages / self.graphs:.1f} stages "
                f"(depth {self.graph_levels / self.graphs:.1f}, "
                f"{self.graph_fused} fused, stage p95 "
                f"{_ms(self.stage_latency_p95)})"
            )
        if self.segments or self.handoffs:
            line += (
                f", {self.segments} segment(s) executed, "
                f"{self.handoffs} handoff(s) in "
                f"({self.handoffs_rejected} rejected, lane high-water "
                f"{self.max_handoff_depth})"
            )
        return line


class ShardTelemetry:
    """Thread-safe accounting for one shard worker, registry-backed.

    The submitting thread records admission events (submitted, rejected,
    shed) and the shard worker records execution events (batches,
    completions, failures, expiries); every event lands in a typed
    instrument of ``registry``, so bumps are exact under the registry
    lock and a snapshot is one consistent cut.  Pass the service-wide
    registry so all shards share one; a standalone telemetry (unit
    tests) creates a private registry.
    """

    def __init__(
        self, shard_id: int, registry: Optional[MetricsRegistry] = None
    ):
        self.shard_id = shard_id
        self.registry = registry if registry is not None else MetricsRegistry()
        make = self.registry
        shard = shard_id
        self._submitted = make.counter("service.submitted", shard=shard)
        self._completed = make.counter("service.completed", shard=shard)
        self._failed = make.counter("service.failed", shard=shard)
        self._rejected = make.counter("service.rejected", shard=shard)
        self._shed = make.counter("service.shed", shard=shard)
        self._rate_limited = make.counter("service.rate_limited", shard=shard)
        self._expired = make.counter("service.expired", shard=shard)
        self._batches = make.counter("service.batches", shard=shard)
        self._graphs = make.counter("service.graphs", shard=shard)
        self._graph_stages = make.counter("service.graph_stages", shard=shard)
        self._graph_fused = make.counter("service.graph_fused", shard=shard)
        self._graph_levels = make.counter("service.graph_levels", shard=shard)
        self._segments = make.counter("service.segments", shard=shard)
        self._handoffs = make.counter("service.handoffs", shard=shard)
        self._handoffs_rejected = make.counter(
            "service.handoffs_rejected", shard=shard
        )
        self._queue_depth = make.gauge("service.queue_depth", shard=shard)
        self._handoff_depth = make.gauge("service.handoff_depth", shard=shard)
        self._latency = make.histogram(
            "service.latency", reservoir=LATENCY_RESERVOIR_SIZE, shard=shard
        )
        self._stage_latency = make.histogram(
            "service.stage_latency",
            reservoir=LATENCY_RESERVOIR_SIZE,
            shard=shard,
        )
        # Kind-labelled series are created on first sight of each kind;
        # these local maps exist so snapshots can enumerate this shard's
        # kinds without filtering the whole registry.
        self._by_kind: Dict[str, Counter] = {}
        self._iterations_by_kind: Dict[str, Counter] = {}
        self._stages_by_kind: Dict[str, Counter] = {}
        self._batch_sizes: Dict[int, Counter] = {}
        self._shed_by_priority: Dict[str, Counter] = {}

    def _labelled_counter(
        self, cache: Dict, name: str, label: str, value: object
    ) -> Counter:
        with self.registry.lock:
            instrument = cache.get(value)
            if instrument is None:
                instrument = self.registry.counter(
                    name, shard=self.shard_id, **{label: value}
                )
                cache[value] = instrument
            return instrument

    # -- admission events (submitting threads) -----------------------------------
    def record_submitted(self, kind: str, queue_depth: int) -> None:
        with self.registry.lock:
            self._submitted.inc()
            self._labelled_counter(
                self._by_kind, "service.requests", "kind", kind
            ).inc()
            self._queue_depth.set(queue_depth)
        _instrumentation_counters.bump("service_requests")

    def record_rejected(self) -> None:
        self._rejected.inc()

    def record_shed(self, priority: Optional[int] = None) -> None:
        """Account one shed eviction, classed by the victim's priority."""
        with self.registry.lock:
            self._shed.inc()
            if priority is not None:
                self._labelled_counter(
                    self._shed_by_priority, "service.shed_priority",
                    "priority", priority_name(priority),
                ).inc()

    def record_rate_limited(self) -> None:
        """Account one typed rate-limit rejection at the front door."""
        self._rate_limited.inc()

    # -- execution events (the shard worker) -------------------------------------
    def record_batch(self, size: int) -> None:
        with self.registry.lock:
            self._batches.inc()
            self._labelled_counter(
                self._batch_sizes, "service.batch_size", "size", size
            ).inc()
        _instrumentation_counters.bump("service_batches")

    def record_completed(self, latency: float) -> None:
        with self.registry.lock:
            self._completed.inc()
            self._latency.observe(latency)

    def record_iterations(self, kind: str, iterations: int) -> None:
        """Account the sweeps of one completed multi-iteration solve.

        The shard worker calls this for every solution that reports an
        ``iterations`` stat, so the fleet snapshot can show how much
        iterative work each kind pushed through the warm plan caches.
        """
        self._labelled_counter(
            self._iterations_by_kind, "service.iterations", "kind", kind
        ).inc(int(iterations))

    def record_graph(
        self,
        stages: int,
        fused: int,
        stage_latencies: Sequence[float],
        levels: int = 0,
        kinds: Sequence[str] = (),
    ) -> None:
        """Account one completed whole-pipeline job.

        ``stages`` is the executed stage count, ``fused`` the fused
        stages (overlapped pairs + associativity rewrites),
        ``stage_latencies`` the per-stage wall seconds feeding the stage
        latency reservoir, ``levels`` the pipeline depth (distinct
        topological levels), and ``kinds`` the per-stage kind strings
        (an MLP job contributes its layer structure here).
        """
        with self.registry.lock:
            self._graphs.inc()
            self._graph_stages.inc(int(stages))
            self._graph_fused.inc(int(fused))
            self._graph_levels.inc(int(levels))
            for kind in kinds:
                self._labelled_counter(
                    self._stages_by_kind, "service.graph_stage_kinds",
                    "kind", kind,
                ).inc()
            self._stage_latency.extend(stage_latencies)

    def record_segment(self) -> None:
        """Account one pipelined-graph segment executed on this shard."""
        self._segments.inc()

    def record_handoff(self, depth: int) -> None:
        """Account one segment parked in this shard's handoff lane.

        ``depth`` is the lane depth right after the put; the gauge's
        high-water mark is the leak detector — a drained service should
        always show a zero *current* lane depth no matter how high the
        mark went.
        """
        with self.registry.lock:
            self._handoffs.inc()
            self._handoff_depth.set(depth)

    def record_handoff_rejected(self) -> None:
        self._handoffs_rejected.inc()

    def record_failed(self, latency: float) -> None:
        with self.registry.lock:
            self._failed.inc()
            self._latency.observe(latency)

    def record_expired(self) -> None:
        self._expired.inc()

    # -- snapshot -----------------------------------------------------------------
    def snapshot(self, queue_depth: int, cache: CacheStats) -> ShardStats:
        with self.registry.lock:
            # One lock hold across every instrument: a consistent cut.
            sample = self._latency.snapshot().sample
            stage_sample = self._stage_latency.snapshot().sample
            p50, p95, p99 = percentiles(sample, _FRACTIONS)
            sp50, sp95, sp99 = percentiles(stage_sample, _FRACTIONS)
            return ShardStats(
                shard_id=self.shard_id,
                submitted=self._submitted.value,
                completed=self._completed.value,
                failed=self._failed.value,
                rejected=self._rejected.value,
                shed=self._shed.value,
                expired=self._expired.value,
                batches=self._batches.value,
                requests_by_kind={
                    kind: instrument.value
                    for kind, instrument in self._by_kind.items()
                },
                batch_size_histogram={
                    size: instrument.value
                    for size, instrument in self._batch_sizes.items()
                },
                queue_depth=queue_depth,
                max_queue_depth=int(self._queue_depth.highwater),
                latency_p50=p50,
                latency_p95=p95,
                latency_p99=p99,
                cache=cache,
                latency_sample=sample,
                iterations_by_kind={
                    kind: instrument.value
                    for kind, instrument in self._iterations_by_kind.items()
                },
                graphs=self._graphs.value,
                graph_stages=self._graph_stages.value,
                graph_fused=self._graph_fused.value,
                stage_latency_p50=sp50,
                stage_latency_p95=sp95,
                stage_latency_p99=sp99,
                stage_latency_sample=stage_sample,
                graph_levels=self._graph_levels.value,
                graph_stages_by_kind={
                    kind: instrument.value
                    for kind, instrument in self._stages_by_kind.items()
                },
                segments=self._segments.value,
                handoffs=self._handoffs.value,
                handoffs_rejected=self._handoffs_rejected.value,
                max_handoff_depth=int(self._handoff_depth.highwater),
                rate_limited=self._rate_limited.value,
                shed_by_priority={
                    name: instrument.value
                    for name, instrument in self._shed_by_priority.items()
                },
            )

    def describe(
        self,
        queue_depth: int = 0,
        cache: Optional[CacheStats] = None,
    ) -> str:
        """Human-readable one-shard report (snapshot + format)."""
        return self.snapshot(
            queue_depth, cache if cache is not None else CacheStats()
        ).describe()


@dataclass(frozen=True)
class ServiceStats:
    """Fleet-wide snapshot: every shard folded into one view."""

    n_shards: int
    submitted: int
    completed: int
    failed: int
    rejected: int
    shed: int
    expired: int
    batches: int
    requests_by_kind: Mapping[str, int]
    batch_size_histogram: Mapping[int, int]
    queue_depth: int
    max_queue_depth: int
    latency_p50: Optional[float]
    latency_p95: Optional[float]
    cache: CacheStats
    shards: Tuple[ShardStats, ...]
    latency_p99: Optional[float] = None
    iterations_by_kind: Mapping[str, int] = field(default_factory=dict)
    graphs: int = 0
    graph_stages: int = 0
    graph_fused: int = 0
    stage_latency_p50: Optional[float] = None
    stage_latency_p95: Optional[float] = None
    stage_latency_p99: Optional[float] = None
    graph_levels: int = 0
    graph_stages_by_kind: Mapping[str, int] = field(default_factory=dict)
    #: Pipelined-graph segment executions summed across shards.
    segments: int = 0
    #: Mid-pipeline handoffs between shards (and how many were refused).
    handoffs: int = 0
    handoffs_rejected: int = 0
    max_handoff_depth: int = 0
    #: Typed per-client rate-limit rejections summed across shards.
    rate_limited: int = 0
    #: Shed evictions per priority class name, fleet-wide.
    shed_by_priority: Mapping[str, int] = field(default_factory=dict)
    #: The routing table's view: lookups, overrides, tracked key→shard
    #: assignments (``None`` for snapshots built without a service).
    placement: Optional[PlacementSnapshot] = None

    @classmethod
    def aggregate(
        cls,
        shards: Sequence[ShardStats],
        placement: Optional[PlacementSnapshot] = None,
    ) -> "ServiceStats":
        by_kind: "TallyCounter[str]" = TallyCounter()
        histogram: "TallyCounter[int]" = TallyCounter()
        iterations: "TallyCounter[str]" = TallyCounter()
        stages_by_kind: "TallyCounter[str]" = TallyCounter()
        shed_by_priority: "TallyCounter[str]" = TallyCounter()
        pooled: List[float] = []
        pooled_stages: List[float] = []
        cache = CacheStats()
        for shard in shards:
            by_kind.update(shard.requests_by_kind)
            histogram.update(shard.batch_size_histogram)
            iterations.update(shard.iterations_by_kind)
            stages_by_kind.update(shard.graph_stages_by_kind)
            shed_by_priority.update(shard.shed_by_priority)
            pooled.extend(shard.latency_sample)
            pooled_stages.extend(shard.stage_latency_sample)
            cache = cache + shard.cache
        p50, p95, p99 = percentiles(pooled, _FRACTIONS)
        sp50, sp95, sp99 = percentiles(pooled_stages, _FRACTIONS)
        return cls(
            n_shards=len(shards),
            submitted=sum(s.submitted for s in shards),
            completed=sum(s.completed for s in shards),
            failed=sum(s.failed for s in shards),
            rejected=sum(s.rejected for s in shards),
            shed=sum(s.shed for s in shards),
            expired=sum(s.expired for s in shards),
            batches=sum(s.batches for s in shards),
            requests_by_kind=dict(by_kind),
            batch_size_histogram=dict(histogram),
            queue_depth=sum(s.queue_depth for s in shards),
            max_queue_depth=max((s.max_queue_depth for s in shards), default=0),
            latency_p50=p50,
            latency_p95=p95,
            latency_p99=p99,
            cache=cache,
            shards=tuple(shards),
            iterations_by_kind=dict(iterations),
            graphs=sum(s.graphs for s in shards),
            graph_stages=sum(s.graph_stages for s in shards),
            graph_fused=sum(s.graph_fused for s in shards),
            stage_latency_p50=sp50,
            stage_latency_p95=sp95,
            stage_latency_p99=sp99,
            graph_levels=sum(s.graph_levels for s in shards),
            graph_stages_by_kind=dict(stages_by_kind),
            segments=sum(s.segments for s in shards),
            handoffs=sum(s.handoffs for s in shards),
            handoffs_rejected=sum(s.handoffs_rejected for s in shards),
            max_handoff_depth=max(
                (s.max_handoff_depth for s in shards), default=0
            ),
            rate_limited=sum(s.rate_limited for s in shards),
            shed_by_priority=dict(shed_by_priority),
            placement=placement,
        )

    @property
    def mean_batch_size(self) -> float:
        """Requests per flush — >1 means admission batching is working."""
        flushed = sum(size * count for size, count in self.batch_size_histogram.items())
        return flushed / self.batches if self.batches else 0.0

    def describe(self) -> str:
        """Multi-line human-readable report (used by the serving demo)."""
        lines = [
            f"SolverService across {self.n_shards} shard(s)",
            (
                f"  requests:    {self.submitted} submitted, "
                f"{self.completed} completed, {self.failed} failed, "
                f"{self.rejected} rejected, {self.shed} shed, "
                f"{self.expired} expired, "
                f"{self.rate_limited} rate-limited"
            ),
            (
                f"  queue:       {self.queue_depth} pending now, "
                f"high-water {self.max_queue_depth}"
            ),
            (
                f"  batching:    {self.batches} flushes, "
                f"mean batch size {self.mean_batch_size:.2f}"
            ),
            (
                f"  latency:     p50 {_ms(self.latency_p50)}, "
                f"p95 {_ms(self.latency_p95)}, p99 {_ms(self.latency_p99)}"
            ),
            (
                f"  plan cache:  {self.cache.hits} hits / "
                f"{self.cache.misses} misses "
                f"(hit rate {self.cache.hit_rate:.3f}), "
                f"{self.cache.size} plans resident across shards"
            ),
        ]
        if self.requests_by_kind:
            by_kind = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.requests_by_kind.items())
            )
            lines.insert(2, f"  by kind:     {by_kind}")
        if self.shed_by_priority:
            by_class = ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.shed_by_priority.items())
            )
            lines.append(f"  shed by class: {by_class}")
        if self.iterations_by_kind:
            sweeps = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.iterations_by_kind.items())
            )
            lines.append(f"  iterations:  {sweeps} (sweeps on warm plans)")
        if self.graphs:
            lines.append(
                f"  pipelines:   {self.graphs} graph(s), "
                f"{self.graph_stages} stage(s), "
                f"{self.graph_fused} fused, "
                f"mean depth {self.graph_levels / self.graphs:.1f}, "
                f"stage latency p50 {_ms(self.stage_latency_p50)} / "
                f"p95 {_ms(self.stage_latency_p95)} / "
                f"p99 {_ms(self.stage_latency_p99)}"
            )
        if self.graph_stages_by_kind:
            stage_kinds = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.graph_stages_by_kind.items())
            )
            lines.append(f"  stage kinds: {stage_kinds}")
        if self.segments or self.handoffs:
            lines.append(
                f"  segments:    {self.segments} executed, "
                f"{self.handoffs} cross-shard handoff(s) "
                f"({self.handoffs_rejected} rejected, lane high-water "
                f"{self.max_handoff_depth})"
            )
        if self.placement is not None:
            lines.append(f"  placement:   {self.placement.describe()}")
        if self.batch_size_histogram:
            histogram = ", ".join(
                f"{size}x{count}"
                for size, count in sorted(self.batch_size_histogram.items())
            )
            lines.append(f"  batch sizes: {histogram}")
        for shard in self.shards:
            lines.append("  " + shard.describe())
        return "\n".join(lines)
