"""Service observability: per-shard accounting and fleet-wide snapshots.

Each shard worker owns a :class:`ShardTelemetry` — a lock-guarded bundle
of counters (per-kind request counts, per-kind iterative sweep totals,
completions, failures, rejections, deadline expiries), a batch-size
histogram, a high-water queue depth, and a bounded reservoir of recent
request latencies.  ``SolverService.stats()``
snapshots every shard and folds them into one :class:`ServiceStats`:
aggregate counts, the merged batch histogram, p50/p95 latency over the
pooled reservoirs, and plan-cache hit rates summed across shards (via
``CacheStats.__add__``).

Snapshots are immutable values; taking one never blocks the serving path
beyond the per-shard counter locks.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Deque, List, Mapping, Optional, Sequence, Tuple

from ..api.plan import CacheStats
from ..instrumentation import counters as _instrumentation_counters
from .placement import PlacementSnapshot

__all__ = ["ShardStats", "ShardTelemetry", "ServiceStats", "percentile"]

#: How many recent per-request latencies each shard keeps for percentiles.
LATENCY_RESERVOIR_SIZE = 4096

# The process-wide instrumentation counters are plain integers; bumps from
# different shards (each holding only its own telemetry lock) would race,
# so all service-layer increments serialize on this one module lock.
_INSTRUMENTATION_LOCK = threading.Lock()


def _ms(value: Optional[float]) -> str:
    """Milliseconds with an ``n/a`` fallback, for the describe() reports."""
    return "n/a" if value is None else f"{value * 1e3:.2f} ms"


def percentile(sample: Sequence[float], fraction: float) -> Optional[float]:
    """Nearest-rank percentile of ``sample`` (``None`` for an empty sample)."""
    if not sample:
        return None
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"percentile fraction must be in [0, 1], got {fraction}")
    ordered = sorted(sample)
    rank = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass(frozen=True)
class ShardStats:
    """Immutable snapshot of one shard's accounting."""

    shard_id: int
    submitted: int
    completed: int
    failed: int
    rejected: int
    shed: int
    expired: int
    batches: int
    requests_by_kind: Mapping[str, int]
    batch_size_histogram: Mapping[int, int]
    queue_depth: int
    max_queue_depth: int
    latency_p50: Optional[float]
    latency_p95: Optional[float]
    cache: CacheStats
    latency_sample: Tuple[float, ...] = field(repr=False, default=())
    #: Total iterative sweeps executed per kind (jacobi/sor/cg/refine/
    #: power/gauss_seidel); empty for shards that served only direct kinds.
    iterations_by_kind: Mapping[str, int] = field(default_factory=dict)
    #: Whole-pipeline jobs completed on this shard.
    graphs: int = 0
    #: Total stages executed across those pipeline jobs.
    graph_stages: int = 0
    #: Fusion *events* across those jobs: each overlapped matvec pair run
    #: (covering two stages) counts one, as does each matmul→matvec
    #: associativity rewrite.
    graph_fused: int = 0
    stage_latency_p50: Optional[float] = None
    stage_latency_p95: Optional[float] = None
    stage_latency_sample: Tuple[float, ...] = field(repr=False, default=())
    #: Summed pipeline depth (levels) across those jobs — ``graph_levels /
    #: graphs`` is the mean depth; an NN forward pass is as deep as it is
    #: long, a fan-out workload is shallower than its stage count.
    graph_levels: int = 0
    #: Stage executions per kind across pipeline jobs (the per-layer view:
    #: an MLP graph shows up as dense/bias/relu/quantize/dequantize here).
    graph_stages_by_kind: Mapping[str, int] = field(default_factory=dict)
    #: Pipelined-graph segments this shard executed (each a level-aligned
    #: slice of some cross-shard pipelined job).
    segments: int = 0
    #: Mid-pipeline segments handed *to* this shard's handoff lane.
    handoffs: int = 0
    #: Handoffs refused because this shard's handoff lane was full.
    handoffs_rejected: int = 0
    #: High-water depth of this shard's handoff lane.
    max_handoff_depth: int = 0

    def describe(self) -> str:
        """One-shard, one-paragraph report (``ServiceStats.describe`` uses it)."""
        # An unobserved cache (no hits, no misses — e.g. describe() called
        # without a snapshot) has no meaningful rate; 0.000 would read as
        # "completely cold", the opposite of unknown.
        observed = self.cache.hits + self.cache.misses
        hit_rate = f"{self.cache.hit_rate:.3f}" if observed else "n/a"
        line = (
            f"shard {self.shard_id}: {self.submitted} requests, "
            f"{self.batches} flushes, cache hit rate "
            f"{hit_rate}, p95 {_ms(self.latency_p95)}"
        )
        if self.graphs:
            line += (
                f", {self.graphs} pipeline(s) x "
                f"{self.graph_stages / self.graphs:.1f} stages "
                f"(depth {self.graph_levels / self.graphs:.1f}, "
                f"{self.graph_fused} fused, stage p95 "
                f"{_ms(self.stage_latency_p95)})"
            )
        if self.segments or self.handoffs:
            line += (
                f", {self.segments} segment(s) executed, "
                f"{self.handoffs} handoff(s) in "
                f"({self.handoffs_rejected} rejected, lane high-water "
                f"{self.max_handoff_depth})"
            )
        return line


class ShardTelemetry:
    """Thread-safe accounting for one shard worker.

    The submitting thread records admission events (submitted, rejected,
    shed) and the shard worker records execution events (batches,
    completions, failures, expiries); one lock keeps both sides exact.
    """

    def __init__(self, shard_id: int):
        self.shard_id = shard_id
        self._lock = threading.Lock()
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._rejected = 0
        self._shed = 0
        self._expired = 0
        self._batches = 0
        self._by_kind: "Counter[str]" = Counter()
        self._batch_sizes: "Counter[int]" = Counter()
        self._iterations_by_kind: "Counter[str]" = Counter()
        self._max_queue_depth = 0
        self._latencies: Deque[float] = deque(maxlen=LATENCY_RESERVOIR_SIZE)
        self._graphs = 0
        self._graph_stages = 0
        self._graph_fused = 0
        self._graph_levels = 0
        self._graph_stages_by_kind: "Counter[str]" = Counter()
        self._stage_latencies: Deque[float] = deque(
            maxlen=LATENCY_RESERVOIR_SIZE
        )
        self._segments = 0
        self._handoffs = 0
        self._handoffs_rejected = 0
        self._max_handoff_depth = 0

    # -- admission events (submitting threads) -----------------------------------
    def record_submitted(self, kind: str, queue_depth: int) -> None:
        with self._lock:
            self._submitted += 1
            self._by_kind[kind] += 1
            if queue_depth > self._max_queue_depth:
                self._max_queue_depth = queue_depth
        with _INSTRUMENTATION_LOCK:
            _instrumentation_counters.service_requests += 1

    def record_rejected(self) -> None:
        with self._lock:
            self._rejected += 1

    def record_shed(self) -> None:
        with self._lock:
            self._shed += 1

    # -- execution events (the shard worker) -------------------------------------
    def record_batch(self, size: int) -> None:
        with self._lock:
            self._batches += 1
            self._batch_sizes[size] += 1
        with _INSTRUMENTATION_LOCK:
            _instrumentation_counters.service_batches += 1

    def record_completed(self, latency: float) -> None:
        with self._lock:
            self._completed += 1
            self._latencies.append(latency)

    def record_iterations(self, kind: str, iterations: int) -> None:
        """Account the sweeps of one completed multi-iteration solve.

        The shard worker calls this for every solution that reports an
        ``iterations`` stat, so the fleet snapshot can show how much
        iterative work each kind pushed through the warm plan caches.
        """
        with self._lock:
            self._iterations_by_kind[kind] += int(iterations)

    def record_graph(
        self,
        stages: int,
        fused: int,
        stage_latencies: Sequence[float],
        levels: int = 0,
        kinds: Sequence[str] = (),
    ) -> None:
        """Account one completed whole-pipeline job.

        ``stages`` is the executed stage count, ``fused`` the fused
        stages (overlapped pairs + associativity rewrites),
        ``stage_latencies`` the per-stage wall seconds feeding the stage
        latency reservoir, ``levels`` the pipeline depth (distinct
        topological levels), and ``kinds`` the per-stage kind strings
        (an MLP job contributes its layer structure here).
        """
        with self._lock:
            self._graphs += 1
            self._graph_stages += int(stages)
            self._graph_fused += int(fused)
            self._graph_levels += int(levels)
            self._graph_stages_by_kind.update(kinds)
            self._stage_latencies.extend(stage_latencies)

    def record_segment(self) -> None:
        """Account one pipelined-graph segment executed on this shard."""
        with self._lock:
            self._segments += 1

    def record_handoff(self, depth: int) -> None:
        """Account one segment parked in this shard's handoff lane.

        ``depth`` is the lane depth right after the put; the high-water
        mark is the leak detector — a drained service should always show
        a zero *current* lane depth no matter how high the mark went.
        """
        with self._lock:
            self._handoffs += 1
            if depth > self._max_handoff_depth:
                self._max_handoff_depth = depth

    def record_handoff_rejected(self) -> None:
        with self._lock:
            self._handoffs_rejected += 1

    def record_failed(self, latency: float) -> None:
        with self._lock:
            self._failed += 1
            self._latencies.append(latency)

    def record_expired(self) -> None:
        with self._lock:
            self._expired += 1

    # -- snapshot -----------------------------------------------------------------
    def snapshot(self, queue_depth: int, cache: CacheStats) -> ShardStats:
        with self._lock:
            sample = tuple(self._latencies)
            stage_sample = tuple(self._stage_latencies)
            return ShardStats(
                shard_id=self.shard_id,
                submitted=self._submitted,
                completed=self._completed,
                failed=self._failed,
                rejected=self._rejected,
                shed=self._shed,
                expired=self._expired,
                batches=self._batches,
                requests_by_kind=dict(self._by_kind),
                batch_size_histogram=dict(self._batch_sizes),
                queue_depth=queue_depth,
                max_queue_depth=self._max_queue_depth,
                latency_p50=percentile(sample, 0.50),
                latency_p95=percentile(sample, 0.95),
                cache=cache,
                latency_sample=sample,
                iterations_by_kind=dict(self._iterations_by_kind),
                graphs=self._graphs,
                graph_stages=self._graph_stages,
                graph_fused=self._graph_fused,
                stage_latency_p50=percentile(stage_sample, 0.50),
                stage_latency_p95=percentile(stage_sample, 0.95),
                stage_latency_sample=stage_sample,
                graph_levels=self._graph_levels,
                graph_stages_by_kind=dict(self._graph_stages_by_kind),
                segments=self._segments,
                handoffs=self._handoffs,
                handoffs_rejected=self._handoffs_rejected,
                max_handoff_depth=self._max_handoff_depth,
            )

    def describe(
        self,
        queue_depth: int = 0,
        cache: Optional[CacheStats] = None,
    ) -> str:
        """Human-readable one-shard report (snapshot + format)."""
        return self.snapshot(
            queue_depth, cache if cache is not None else CacheStats()
        ).describe()


@dataclass(frozen=True)
class ServiceStats:
    """Fleet-wide snapshot: every shard folded into one view."""

    n_shards: int
    submitted: int
    completed: int
    failed: int
    rejected: int
    shed: int
    expired: int
    batches: int
    requests_by_kind: Mapping[str, int]
    batch_size_histogram: Mapping[int, int]
    queue_depth: int
    max_queue_depth: int
    latency_p50: Optional[float]
    latency_p95: Optional[float]
    cache: CacheStats
    shards: Tuple[ShardStats, ...]
    iterations_by_kind: Mapping[str, int] = field(default_factory=dict)
    graphs: int = 0
    graph_stages: int = 0
    graph_fused: int = 0
    stage_latency_p50: Optional[float] = None
    stage_latency_p95: Optional[float] = None
    graph_levels: int = 0
    graph_stages_by_kind: Mapping[str, int] = field(default_factory=dict)
    #: Pipelined-graph segment executions summed across shards.
    segments: int = 0
    #: Mid-pipeline handoffs between shards (and how many were refused).
    handoffs: int = 0
    handoffs_rejected: int = 0
    max_handoff_depth: int = 0
    #: The routing table's view: lookups, overrides, tracked key→shard
    #: assignments (``None`` for snapshots built without a service).
    placement: Optional[PlacementSnapshot] = None

    @classmethod
    def aggregate(
        cls,
        shards: Sequence[ShardStats],
        placement: Optional[PlacementSnapshot] = None,
    ) -> "ServiceStats":
        by_kind: "Counter[str]" = Counter()
        histogram: "Counter[int]" = Counter()
        iterations: "Counter[str]" = Counter()
        stages_by_kind: "Counter[str]" = Counter()
        pooled: List[float] = []
        pooled_stages: List[float] = []
        cache = CacheStats()
        for shard in shards:
            by_kind.update(shard.requests_by_kind)
            histogram.update(shard.batch_size_histogram)
            iterations.update(shard.iterations_by_kind)
            stages_by_kind.update(shard.graph_stages_by_kind)
            pooled.extend(shard.latency_sample)
            pooled_stages.extend(shard.stage_latency_sample)
            cache = cache + shard.cache
        return cls(
            n_shards=len(shards),
            submitted=sum(s.submitted for s in shards),
            completed=sum(s.completed for s in shards),
            failed=sum(s.failed for s in shards),
            rejected=sum(s.rejected for s in shards),
            shed=sum(s.shed for s in shards),
            expired=sum(s.expired for s in shards),
            batches=sum(s.batches for s in shards),
            requests_by_kind=dict(by_kind),
            batch_size_histogram=dict(histogram),
            queue_depth=sum(s.queue_depth for s in shards),
            max_queue_depth=max((s.max_queue_depth for s in shards), default=0),
            latency_p50=percentile(pooled, 0.50),
            latency_p95=percentile(pooled, 0.95),
            cache=cache,
            shards=tuple(shards),
            iterations_by_kind=dict(iterations),
            graphs=sum(s.graphs for s in shards),
            graph_stages=sum(s.graph_stages for s in shards),
            graph_fused=sum(s.graph_fused for s in shards),
            stage_latency_p50=percentile(pooled_stages, 0.50),
            stage_latency_p95=percentile(pooled_stages, 0.95),
            graph_levels=sum(s.graph_levels for s in shards),
            graph_stages_by_kind=dict(stages_by_kind),
            segments=sum(s.segments for s in shards),
            handoffs=sum(s.handoffs for s in shards),
            handoffs_rejected=sum(s.handoffs_rejected for s in shards),
            max_handoff_depth=max(
                (s.max_handoff_depth for s in shards), default=0
            ),
            placement=placement,
        )

    @property
    def mean_batch_size(self) -> float:
        """Requests per flush — >1 means admission batching is working."""
        flushed = sum(size * count for size, count in self.batch_size_histogram.items())
        return flushed / self.batches if self.batches else 0.0

    def describe(self) -> str:
        """Multi-line human-readable report (used by the serving demo)."""
        lines = [
            f"SolverService across {self.n_shards} shard(s)",
            (
                f"  requests:    {self.submitted} submitted, "
                f"{self.completed} completed, {self.failed} failed, "
                f"{self.rejected} rejected, {self.shed} shed, "
                f"{self.expired} expired"
            ),
            (
                f"  queue:       {self.queue_depth} pending now, "
                f"high-water {self.max_queue_depth}"
            ),
            (
                f"  batching:    {self.batches} flushes, "
                f"mean batch size {self.mean_batch_size:.2f}"
            ),
            f"  latency:     p50 {_ms(self.latency_p50)}, p95 {_ms(self.latency_p95)}",
            (
                f"  plan cache:  {self.cache.hits} hits / "
                f"{self.cache.misses} misses "
                f"(hit rate {self.cache.hit_rate:.3f}), "
                f"{self.cache.size} plans resident across shards"
            ),
        ]
        if self.requests_by_kind:
            by_kind = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.requests_by_kind.items())
            )
            lines.insert(2, f"  by kind:     {by_kind}")
        if self.iterations_by_kind:
            sweeps = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.iterations_by_kind.items())
            )
            lines.append(f"  iterations:  {sweeps} (sweeps on warm plans)")
        if self.graphs:
            lines.append(
                f"  pipelines:   {self.graphs} graph(s), "
                f"{self.graph_stages} stage(s), "
                f"{self.graph_fused} fused, "
                f"mean depth {self.graph_levels / self.graphs:.1f}, "
                f"stage latency p50 {_ms(self.stage_latency_p50)} / "
                f"p95 {_ms(self.stage_latency_p95)}"
            )
        if self.graph_stages_by_kind:
            stage_kinds = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.graph_stages_by_kind.items())
            )
            lines.append(f"  stage kinds: {stage_kinds}")
        if self.segments or self.handoffs:
            lines.append(
                f"  segments:    {self.segments} executed, "
                f"{self.handoffs} cross-shard handoff(s) "
                f"({self.handoffs_rejected} rejected, lane high-water "
                f"{self.max_handoff_depth})"
            )
        if self.placement is not None:
            lines.append(f"  placement:   {self.placement.describe()}")
        if self.batch_size_histogram:
            histogram = ", ".join(
                f"{size}x{count}"
                for size, count in sorted(self.batch_size_histogram.items())
            )
            lines.append(f"  batch sizes: {histogram}")
        for shard in self.shards:
            lines.append("  " + shard.describe())
        return "\n".join(lines)
