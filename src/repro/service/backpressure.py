"""Bounded admission queues and their overload policies.

Each shard worker owns one :class:`BoundedRequestQueue`.  When a queue is
full the configured :data:`policy <BACKPRESSURE_POLICIES>` decides what
gives way:

``"block"``
    The submitting caller waits for space — end-to-end flow control; no
    request is ever dropped (the concurrency soak tests run under this
    policy and assert zero dropped futures).
``"reject"``
    ``put`` raises :class:`~repro.errors.ServiceOverloadedError`
    immediately — load shedding at the front door, the caller retries or
    degrades.
``"shed_oldest"``
    The oldest queued request is evicted to make room and returned to the
    caller, which fails its future with ``ServiceOverloadedError`` —
    freshest-first serving for workloads where a stale answer is worthless.

The queue is a plain deque under one condition variable; ``close()`` wakes
every waiter so service shutdown cannot strand a blocked producer.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, List, Optional, Tuple

from ..errors import ServiceClosedError, ServiceOverloadedError
from .request import SolveRequest

__all__ = ["BACKPRESSURE_POLICIES", "BoundedRequestQueue"]

#: The recognised overload policies, in documentation order.
BACKPRESSURE_POLICIES: Tuple[str, ...] = ("block", "reject", "shed_oldest")


class BoundedRequestQueue:
    """A bounded FIFO of :class:`SolveRequest` with a pluggable full-queue policy."""

    def __init__(self, maxsize: int, policy: str = "block"):
        if maxsize < 1:
            raise ValueError(f"queue maxsize must be >= 1, got {maxsize}")
        if policy not in BACKPRESSURE_POLICIES:
            known = ", ".join(BACKPRESSURE_POLICIES)
            raise ValueError(
                f"unknown backpressure policy {policy!r}; one of: {known}"
            )
        self._maxsize = int(maxsize)
        self._policy = policy
        self._items: Deque[SolveRequest] = deque()
        self._cond = threading.Condition()
        self._closed = False

    # -- introspection ----------------------------------------------------------
    @property
    def maxsize(self) -> int:
        return self._maxsize

    @property
    def policy(self) -> str:
        return self._policy

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    # -- producer side ----------------------------------------------------------
    def put(
        self, request: SolveRequest, timeout: Optional[float] = None
    ) -> Optional[SolveRequest]:
        """Enqueue ``request``, applying the overload policy when full.

        Returns the request *evicted* to make room (``shed_oldest`` only;
        the caller owns failing its future) or ``None``.  Raises
        :class:`ServiceOverloadedError` under ``reject`` (and under
        ``block`` when ``timeout`` elapses), :class:`ServiceClosedError`
        when the queue is closed.
        """
        with self._cond:
            if self._closed:
                raise ServiceClosedError("cannot submit to a closed service")
            if len(self._items) < self._maxsize:
                self._items.append(request)
                self._cond.notify_all()
                return None
            if self._policy == "reject":
                raise ServiceOverloadedError(
                    f"shard queue full ({self._maxsize} pending) "
                    f"under the 'reject' policy"
                )
            if self._policy == "shed_oldest":
                shed = self._items.popleft()
                self._items.append(request)
                self._cond.notify_all()
                return shed
            # "block": wait for a worker to make room.
            limit = None if timeout is None else time.monotonic() + timeout
            while len(self._items) >= self._maxsize:
                remaining = None if limit is None else limit - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise ServiceOverloadedError(
                        f"shard queue still full ({self._maxsize} pending) "
                        f"after blocking {timeout:.3f}s"
                    )
                self._cond.wait(remaining)
                if self._closed:
                    raise ServiceClosedError(
                        "service closed while waiting for queue space"
                    )
            self._items.append(request)
            self._cond.notify_all()
            return None

    # -- consumer side ----------------------------------------------------------
    def get(self, timeout: Optional[float] = None) -> Optional[SolveRequest]:
        """Dequeue one request, waiting up to ``timeout`` seconds.

        Returns ``None`` on timeout or when the queue is closed and empty
        (the worker's signal to re-check its stop flag / exit).
        """
        with self._cond:
            limit = None if timeout is None else time.monotonic() + timeout
            while not self._items:
                if self._closed:
                    return None
                remaining = None if limit is None else limit - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)
            request = self._items.popleft()
            self._cond.notify_all()
            return request

    def drain(self, limit: Optional[int] = None) -> List[SolveRequest]:
        """Dequeue up to ``limit`` immediately-available requests (no wait)."""
        with self._cond:
            count = len(self._items) if limit is None else min(limit, len(self._items))
            drained = [self._items.popleft() for _ in range(count)]
            if drained:
                self._cond.notify_all()
            return drained

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        """Refuse new producers and wake every waiter.

        Already-queued requests stay dequeueable so a draining worker can
        finish them (or fail them with ``ServiceClosedError`` on a
        non-draining shutdown).
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
