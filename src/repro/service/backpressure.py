"""Bounded admission queues and their overload policies.

Each shard worker owns one :class:`BoundedRequestQueue`.  When a queue is
full the configured :data:`policy <BACKPRESSURE_POLICIES>` decides what
gives way:

``"block"``
    The submitting caller waits for space — end-to-end flow control; no
    request is ever dropped (the concurrency soak tests run under this
    policy and assert zero dropped futures).
``"reject"``
    ``put`` raises :class:`~repro.errors.ServiceOverloadedError`
    immediately — load shedding at the front door, the caller retries or
    degrades.
``"shed_oldest"``
    A queued request is evicted to make room and returned to the caller,
    which fails its future with ``ServiceOverloadedError``.  The victim
    is chosen QoS-first: lowest :attr:`~repro.service.request.SolveRequest.priority`
    class goes first, nearest-expired deadline first within a class
    (deadline-less requests shed last within their class), oldest-queued
    on a full tie — the historical freshest-first behaviour for uniform
    traffic, priority-ordered deadline-aware shedding the moment classes
    differ.  An arriving request that *is* the weakest candidate sheds
    itself: the queue never evicts a higher class to admit a lower one.

The queue is a plain deque under one condition variable; ``close()`` wakes
every waiter so service shutdown cannot strand a blocked producer.

Cross-shard pipelined graph execution adds a second, higher-priority
*handoff lane*: when a shard finishes one segment of a pipelined graph,
the next level's segments enter their target shards through
:meth:`BoundedRequestQueue.put_handoff` — never blocking (the dispatching
worker thread must not stall) and never shedding (a mid-pipeline segment
carries upstream work that would be lost), but bounded by
``handoff_capacity`` so a stalled shard surfaces
:class:`~repro.errors.ServiceOverloadedError` instead of queueing without
limit.  Consumers drain handoffs before admissions — in-flight pipelines
complete before new work is admitted, which is what keeps the pipeline
moving and bounds the handoff lane in practice.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, List, Optional, Tuple

from ..errors import ServiceClosedError, ServiceOverloadedError
from .request import SolveRequest

__all__ = ["BACKPRESSURE_POLICIES", "BoundedRequestQueue"]

#: The recognised overload policies, in documentation order.
BACKPRESSURE_POLICIES: Tuple[str, ...] = ("block", "reject", "shed_oldest")


class BoundedRequestQueue:
    """A bounded FIFO of :class:`SolveRequest` with a pluggable full-queue policy."""

    def __init__(
        self,
        maxsize: int,
        policy: str = "block",
        handoff_capacity: Optional[int] = None,
    ):
        if maxsize < 1:
            raise ValueError(f"queue maxsize must be >= 1, got {maxsize}")
        if policy not in BACKPRESSURE_POLICIES:
            known = ", ".join(BACKPRESSURE_POLICIES)
            raise ValueError(
                f"unknown backpressure policy {policy!r}; one of: {known}"
            )
        if handoff_capacity is not None and handoff_capacity < 1:
            raise ValueError(
                f"handoff_capacity must be >= 1, got {handoff_capacity}"
            )
        self._maxsize = int(maxsize)
        self._policy = policy
        self._handoff_capacity = (
            4 * self._maxsize if handoff_capacity is None
            else int(handoff_capacity)
        )
        self._items: Deque[SolveRequest] = deque()
        self._handoffs: Deque[SolveRequest] = deque()
        self._cond = threading.Condition()
        self._closed = False

    # -- introspection ----------------------------------------------------------
    @property
    def maxsize(self) -> int:
        return self._maxsize

    @property
    def policy(self) -> str:
        return self._policy

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def handoff_capacity(self) -> int:
        return self._handoff_capacity

    @property
    def handoff_depth(self) -> int:
        """Mid-pipeline segments currently parked in the handoff lane."""
        with self._cond:
            return len(self._handoffs)

    def __len__(self) -> int:
        """Total undequeued requests — admissions plus parked handoffs.

        Counting both lanes matters to the draining shutdown path: a
        worker exits only when *nothing* is left to execute.
        """
        with self._cond:
            return len(self._items) + len(self._handoffs)

    # -- producer side ----------------------------------------------------------
    def put(
        self, request: SolveRequest, timeout: Optional[float] = None
    ) -> Optional[SolveRequest]:
        """Enqueue ``request``, applying the overload policy when full.

        Returns the request *evicted* to make room (``shed_oldest`` only;
        the caller owns failing its future — the evicted request may be
        ``request`` itself when it is the weakest candidate) or ``None``.
        Raises :class:`ServiceOverloadedError` under ``reject`` (and
        under ``block`` when ``timeout`` elapses),
        :class:`ServiceClosedError` when the queue is closed.
        """
        with self._cond:
            if self._closed:
                raise ServiceClosedError("cannot submit to a closed service")
            if len(self._items) < self._maxsize:
                self._items.append(request)
                self._cond.notify_all()
                return None
            if self._policy == "reject":
                raise ServiceOverloadedError(
                    f"shard queue full ({self._maxsize} pending) "
                    f"under the 'reject' policy"
                )
            if self._policy == "shed_oldest":
                position = self._shed_victim(request)
                if position < 0:
                    return request
                # Evict by position, not by value: SolveRequest equality
                # compares operand arrays, so list.remove would be both
                # wrong (could drop a value-equal sibling) and broken
                # (numpy arrays refuse bool coercion).
                victim = self._items[position]
                del self._items[position]
                self._items.append(request)
                self._cond.notify_all()
                return victim
            # "block": wait for a worker to make room.
            limit = None if timeout is None else time.monotonic() + timeout
            while len(self._items) >= self._maxsize:
                remaining = None if limit is None else limit - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise ServiceOverloadedError(
                        f"shard queue still full ({self._maxsize} pending) "
                        f"after blocking {timeout:.3f}s"
                    )
                self._cond.wait(remaining)
                if self._closed:
                    raise ServiceClosedError(
                        "service closed while waiting for queue space"
                    )
            self._items.append(request)
            self._cond.notify_all()
            return None

    def _shed_victim(self, incoming: SolveRequest) -> int:
        """Index of the queued request to evict, or -1 for ``incoming``.

        Candidates are the queued admissions plus ``incoming`` itself —
        never the handoff lane (mid-pipeline segments carry upstream
        work).  The weakest candidate loses: lowest priority class
        first; within a class, nearest deadline first (no deadline sorts
        last — an expiring request is worth less than one with time to
        spare); oldest arrival on a full tie, with ``incoming`` counted
        newest.  Called under ``self._cond``.
        """
        far = float("inf")

        def weakness(request: SolveRequest, position: int):
            deadline = far if request.deadline is None else request.deadline
            return (request.priority, deadline, position)

        victim = -1
        # The incoming request is the newest arrival by construction.
        victim_rank = weakness(incoming, len(self._items))
        for position, queued in enumerate(self._items):
            rank = weakness(queued, position)
            if rank < victim_rank:
                victim, victim_rank = position, rank
        return victim

    def put_handoff(self, request: SolveRequest) -> int:
        """Park a mid-pipeline segment in the priority handoff lane.

        Never blocks (dispatch runs on a worker thread) and never sheds
        (the segment carries already-executed upstream levels); a lane at
        ``handoff_capacity`` raises
        :class:`~repro.errors.ServiceOverloadedError` so the dispatching
        worker can fail the whole pipelined request instead of queueing
        without bound.  Returns the lane depth after the put, for the
        shard's handoff telemetry.
        """
        with self._cond:
            if self._closed:
                raise ServiceClosedError(
                    "cannot hand a segment to a closed service"
                )
            if len(self._handoffs) >= self._handoff_capacity:
                raise ServiceOverloadedError(
                    f"shard handoff lane full ({self._handoff_capacity} "
                    f"parked segments); downstream shard cannot keep up"
                )
            self._handoffs.append(request)
            self._cond.notify_all()
            return len(self._handoffs)

    # -- consumer side ----------------------------------------------------------
    def get(self, timeout: Optional[float] = None) -> Optional[SolveRequest]:
        """Dequeue one request, waiting up to ``timeout`` seconds.

        Handoffs drain first — an in-flight pipeline's next segment beats
        newly-admitted work, the systolic discipline that keeps upstream
        results streaming instead of pooling.  Returns ``None`` on
        timeout or when the queue is closed and empty (the worker's
        signal to re-check its stop flag / exit).
        """
        with self._cond:
            limit = None if timeout is None else time.monotonic() + timeout
            while not self._items and not self._handoffs:
                if self._closed:
                    return None
                remaining = None if limit is None else limit - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)
            if self._handoffs:
                request = self._handoffs.popleft()
            else:
                request = self._items.popleft()
            self._cond.notify_all()
        # Tracer-clock stamp for queue-wait spans; one clock read per
        # dequeue, cheap enough to do unconditionally.
        request.dequeued_at = time.perf_counter()
        return request

    def drain(self, limit: Optional[int] = None) -> List[SolveRequest]:
        """Dequeue up to ``limit`` immediately-available requests (no wait).

        Handoffs first, then admissions — the same priority ``get`` uses.
        """
        with self._cond:
            available = len(self._handoffs) + len(self._items)
            count = available if limit is None else min(limit, available)
            drained: List[SolveRequest] = []
            for _ in range(count):
                if self._handoffs:
                    drained.append(self._handoffs.popleft())
                else:
                    drained.append(self._items.popleft())
            if drained:
                self._cond.notify_all()
        now = time.perf_counter()
        for request in drained:
            request.dequeued_at = now
        return drained

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        """Refuse new producers and wake every waiter.

        Already-queued requests stay dequeueable so a draining worker can
        finish them (or fail them with ``ServiceClosedError`` on a
        non-draining shutdown).
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
