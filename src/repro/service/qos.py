"""Admission quality-of-service: priority classes and client rate limits.

Two small, independently testable policies the service front door
composes:

* **Priority classes.**  Every :class:`~repro.service.request.SolveRequest`
  carries an integer priority (higher = more important); the named
  classes ``"low"`` / ``"normal"`` / ``"high"`` map to 0/1/2 via
  :func:`resolve_priority`.  Priorities matter exactly once — when a
  full ``shed_oldest`` queue must pick a victim
  (:meth:`~repro.service.backpressure.BoundedRequestQueue.put`): the
  lowest class goes first, nearest-expired first within a class, oldest
  within a tie — so under overload the high classes keep their SLO
  while the low classes degrade, Clipper-style.  Handoff lanes are
  exempt: a mid-pipeline segment carries upstream work and is never a
  shed candidate.

* **Per-client token buckets.**  A :class:`ClientRateLimiter` holds one
  :class:`TokenBucket` per client id (plus an optional default for
  unlisted clients); ``submit`` consults it before queueing and raises
  the *typed* :class:`~repro.errors.RateLimitedError` — distinguishable
  from queue overload — when the client is out of tokens.  Requests
  without a client id are never rate-limited.

Both policies take an injectable monotonic ``clock`` so tests can step
time deterministically (the same discipline as the admission batcher's
window deadline — wall-clock steps must never change admission
behaviour).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Union

__all__ = [
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "PRIORITY_NAMES",
    "ClientRateLimiter",
    "RateLimit",
    "TokenBucket",
    "priority_name",
    "resolve_priority",
]

PRIORITY_LOW = 0
PRIORITY_NORMAL = 1
PRIORITY_HIGH = 2

#: Name → level for the named classes ``submit`` accepts.
PRIORITY_NAMES: Mapping[str, int] = {
    "low": PRIORITY_LOW,
    "normal": PRIORITY_NORMAL,
    "high": PRIORITY_HIGH,
}

_LEVEL_NAMES = {level: name for name, level in PRIORITY_NAMES.items()}


def resolve_priority(priority: Union[str, int]) -> int:
    """Normalize a priority argument to its integer level.

    Accepts the named classes (``"low"``/``"normal"``/``"high"``,
    case-insensitive) or any integer — custom levels between and beyond
    the named ones are legal; only their *order* matters.
    """
    if isinstance(priority, str):
        try:
            return PRIORITY_NAMES[priority.lower()]
        except KeyError:
            known = ", ".join(sorted(PRIORITY_NAMES))
            raise ValueError(
                f"unknown priority class {priority!r}; one of: {known} "
                f"(or an integer level)"
            ) from None
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise TypeError(
            f"priority must be a class name or an integer level, "
            f"got {type(priority).__name__}"
        )
    return priority


def priority_name(level: int) -> str:
    """The class name of ``level`` (custom levels print as ``p<level>``)."""
    return _LEVEL_NAMES.get(level, f"p{level}")


@dataclass(frozen=True)
class RateLimit:
    """One client's admission budget: sustained rate plus burst headroom.

    ``rate`` is tokens (requests) per second; ``burst`` is the bucket
    capacity — how far a quiet client can get ahead of its sustained
    rate.  ``burst`` defaults to ``rate`` when unset.
    """

    rate: float
    burst: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0 req/s, got {self.rate}")
        if self.burst is not None and self.burst < 1:
            raise ValueError(f"burst must be >= 1 token, got {self.burst}")

    @property
    def capacity(self) -> float:
        return float(self.rate if self.burst is None else self.burst)


class TokenBucket:
    """A classic token bucket over an injectable monotonic clock.

    Refills continuously at ``limit.rate`` tokens/second up to
    ``limit.capacity``; :meth:`try_acquire` is non-blocking — admission
    control sheds, it never queues the caller.  Thread-safe.
    """

    def __init__(
        self,
        limit: RateLimit,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._limit = limit
        self._clock = clock
        self._tokens = limit.capacity
        self._updated = clock()
        self._lock = threading.Lock()

    @property
    def limit(self) -> RateLimit:
        return self._limit

    @property
    def tokens(self) -> float:
        """The current token balance (refilled to now)."""
        with self._lock:
            self._refill()
            return self._tokens

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(
                self._limit.capacity,
                self._tokens + elapsed * self._limit.rate,
            )
        self._updated = now

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; False (and no debit) otherwise."""
        with self._lock:
            self._refill()
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False


class ClientRateLimiter:
    """Per-client admission budgets for the service front door.

    ``limits`` maps client ids to their :class:`RateLimit`;
    ``default`` (optional) applies to any client id not listed.
    Requests with no client id always pass — rate limiting is opt-in
    per request, identity is the caller's claim.  Thread-safe; buckets
    materialize lazily on a client's first request.
    """

    def __init__(
        self,
        limits: Optional[Mapping[str, RateLimit]] = None,
        default: Optional[RateLimit] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._limits = dict(limits) if limits else {}
        self._default = default
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._rejections: Dict[str, int] = {}
        self._lock = threading.Lock()

    def limit_for(self, client_id: str) -> Optional[RateLimit]:
        """The limit governing ``client_id`` (``None`` = unlimited)."""
        return self._limits.get(client_id, self._default)

    def admit(self, client_id: Optional[str]) -> bool:
        """Debit one token for ``client_id``; False when out of budget."""
        if client_id is None:
            return True
        limit = self.limit_for(client_id)
        if limit is None:
            return True
        with self._lock:
            bucket = self._buckets.get(client_id)
            if bucket is None:
                bucket = TokenBucket(limit, clock=self._clock)
                self._buckets[client_id] = bucket
        if bucket.try_acquire():
            return True
        with self._lock:
            self._rejections[client_id] = (
                self._rejections.get(client_id, 0) + 1
            )
        return False

    def rejections(self) -> Dict[str, int]:
        """Rate-limit rejections per client id (lifetime)."""
        with self._lock:
            return dict(self._rejections)
