"""The unit of work flowing through the serving layer.

A :class:`SolveRequest` pairs one solve call (kind, operands, execution
arguments, options) with the ``concurrent.futures.Future`` the caller
holds, the plan key that routes it, and the timing fields the telemetry
and deadline machinery need.  Requests are created by
:class:`~repro.service.service.SolverService.submit` and consumed by
exactly one shard worker; the future is resolved exactly once.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..api.plan import PlanKey
from ..api.config import ExecutionOptions

__all__ = ["SolveRequest"]


@dataclass
class SolveRequest:
    """One in-flight solve: operands, routing key, future, and timing.

    ``deadline`` is an absolute ``time.monotonic()`` instant (or ``None``);
    a worker that dequeues the request after it fails the future with
    :class:`~repro.errors.DeadlineExceededError` instead of executing.
    ``kwargs`` carries kind-specific execution arguments (``lower=False``,
    ``x0=...``); a request with kwargs is never batch-flushed because
    ``solve_batch`` has no per-entry argument channel.
    """

    kind: str
    operands: Tuple[Any, ...]
    plan_key: PlanKey
    options: Optional[ExecutionOptions] = None
    kwargs: Dict[str, Any] = field(default_factory=dict)
    deadline: Optional[float] = None
    future: "Future[Any]" = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.monotonic)

    @property
    def batchable(self) -> bool:
        """Whether the request may ride a multi-entry ``solve_batch`` flush."""
        return not self.kwargs

    def expired(self, now: Optional[float] = None) -> bool:
        """True when the request's deadline has already passed."""
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline

    def latency(self, now: Optional[float] = None) -> float:
        """Seconds since the request entered the service."""
        return (time.monotonic() if now is None else now) - self.enqueued_at

    def fail(self, exc: BaseException) -> bool:
        """Fail the future; False when it was already resolved/cancelled.

        Callers gate their failure telemetry on the return value so a
        caller-cancelled future is never double-counted.
        """
        try:
            self.future.set_exception(exc)
            return True
        except Exception:
            return False
