"""The unit of work flowing through the serving layer.

A :class:`SolveRequest` pairs one solve call (kind, operands, execution
arguments, options) with the ``concurrent.futures.Future`` the caller
holds, the plan key that routes it, and the timing fields the telemetry
and deadline machinery need.  Requests are created by
:class:`~repro.service.service.SolverService.submit` and consumed by
exactly one shard worker; the future is resolved exactly once.

Whole-pipeline jobs (``SolverService.submit_graph``) ride the same
request type with a :class:`GraphJob` payload: the routing key is then
the tuple of the graph's per-stage plan keys, so a multi-stage graph
always lands on the one shard holding every stage plan warm, and the
worker compiles/executes it through its shard-local
:class:`~repro.graph.compiler.GraphCompiler`.

Cross-shard *pipelined* graph jobs split instead into per-level segment
requests: each carries a
:class:`~repro.service.pipeline.SegmentTask` in ``segment`` and resolves
the shared parent future through its
:class:`~repro.service.pipeline.PipelinedGraphJob` rather than its own
(never-surfaced) future.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional, Tuple, TYPE_CHECKING

from ..api.config import ExecutionOptions
from ..obs.tracing import Span, Tracer
from .qos import PRIORITY_NORMAL

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .pipeline import SegmentTask

__all__ = ["GraphJob", "RequestTrace", "SolveRequest"]


@dataclass
class RequestTrace:
    """Trace context riding one request through the service.

    ``root`` is the request's root span (opened by ``submit`` on the
    client track); it is closed exactly once — by :meth:`SolveRequest.resolve`
    on success, by :meth:`SolveRequest.fail` on any failure path — so a
    shed/expired/errored request can never leave it open.  ``admitted_at``
    is the tracer-clock instant the request entered its shard queue,
    recorded so the worker can backdate a ``queue_wait`` span once the
    request is dequeued (spans with unknowable ends are never opened).
    """

    tracer: Tracer
    root: Span
    admitted_at: Optional[float] = None


@dataclass(frozen=True)
class GraphJob:
    """A whole-pipeline payload: the graph plus its compile policy.

    ``fuse`` opts into the matmul→matvec associativity rewrite (changes
    floating-point association, hence off by default — see
    :class:`~repro.graph.compiler.GraphCompiler`).
    """

    graph: Any
    fuse: bool = False


@dataclass
class SolveRequest:
    """One in-flight solve: operands, routing key, future, and timing.

    ``deadline`` is an absolute ``time.monotonic()`` instant (or ``None``);
    a worker that dequeues the request after it fails the future with
    :class:`~repro.errors.DeadlineExceededError` instead of executing.
    ``kwargs`` carries kind-specific execution arguments (``lower=False``,
    ``x0=...``); a request with kwargs is never batch-flushed because
    ``solve_batch`` has no per-entry argument channel.  ``graph`` carries
    a whole-pipeline :class:`GraphJob` (the request then has no operands
    of its own and is likewise never batch-flushed).

    ``plan_key`` is the routing key: the usual 4-tuple
    ``(kind, shapes, w, options)`` for single solves, and
    ``("__graph__", stage keys, w, options)`` for pipeline jobs — always
    hashable, always stable for a given workload shape.

    ``priority`` is the request's admission class (higher = more
    important; the named classes map through
    :func:`~repro.service.qos.resolve_priority`) — consulted only when a
    full ``shed_oldest`` queue picks a victim.  ``client_id`` names the
    submitting client for per-client rate limiting and accounting
    (``None`` = anonymous, never rate-limited).
    """

    kind: str
    operands: Tuple[Any, ...]
    plan_key: Hashable
    options: Optional[ExecutionOptions] = None
    kwargs: Dict[str, Any] = field(default_factory=dict)
    priority: int = PRIORITY_NORMAL
    client_id: Optional[str] = None
    graph: Optional[GraphJob] = None
    #: One placed segment of a cross-shard pipelined graph job; the worker
    #: executes it against the parent job's shared state instead of this
    #: request's own future.
    segment: Optional["SegmentTask"] = None
    deadline: Optional[float] = None
    future: "Future[Any]" = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.monotonic)
    #: Trace context (``None`` when the owning service is not tracing).
    trace: Optional[RequestTrace] = None
    #: Tracer-clock instant the queue handed this request to a worker;
    #: stamped unconditionally by the queue (one clock read) so traced
    #: requests can reconstruct their queue wait.
    dequeued_at: Optional[float] = None

    @property
    def batchable(self) -> bool:
        """Whether the request may ride a multi-entry ``solve_batch`` flush."""
        return not self.kwargs and self.graph is None and self.segment is None

    def expired(self, now: Optional[float] = None) -> bool:
        """True when the request's deadline has already passed."""
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline

    def latency(self, now: Optional[float] = None) -> float:
        """Seconds since the request entered the service."""
        return (time.monotonic() if now is None else now) - self.enqueued_at

    def resolve(self, value: Any) -> bool:
        """Resolve the future and close the trace root as successful.

        The span close is unconditional (and idempotent), so the trace
        ends coherently even if the caller cancelled the future first.
        """
        if self.trace is not None:
            self.trace.root.finish()
        try:
            self.future.set_result(value)
            return True
        except Exception:
            return False

    def fail(self, exc: BaseException) -> bool:
        """Fail the future; False when it was already resolved/cancelled.

        Callers gate their failure telemetry on the return value so a
        caller-cancelled future is never double-counted.  The trace root
        is closed as failed regardless — no failure path may leave an
        open span.
        """
        if self.trace is not None:
            self.trace.root.finish(status="error", error=exc)
        try:
            self.future.set_exception(exc)
            return True
        except Exception:
            return False
