"""Applications of the DBT methodology listed in Section 4 of the paper."""

from .gauss_seidel import GaussSeidelResult, SystolicGaussSeidel
from .lu import InverseResult, LUResult, SystolicLU
from .sparse import (
    BlockSparseDBTTransform,
    BlockSparseMatVec,
    SparseMatVecSolution,
)
from .triangular import SystolicTriangularSolver, TriangularSolveResult

__all__ = [
    "BlockSparseDBTTransform",
    "BlockSparseMatVec",
    "GaussSeidelResult",
    "InverseResult",
    "LUResult",
    "SparseMatVecSolution",
    "SystolicGaussSeidel",
    "SystolicLU",
    "SystolicTriangularSolver",
    "TriangularSolveResult",
]
