"""Gauss-Seidel iteration — now a deprecation shim over :mod:`repro.iterative`.

The original extension implemented the splitting

    ``(D + L) x_{k+1} = b - U x_k``

directly.  That implementation moved into the plan-cached iterative
subsystem as :class:`~repro.iterative.sor.SORSolver` with ``omega = 1``
(SOR *is* weighted Gauss-Seidel, and the ``omega == 1`` code path runs
the exact legacy arithmetic, bit for bit).  This module keeps the public
seed API — :class:`SystolicGaussSeidel` and :class:`GaussSeidelResult` —
as a thin shim so existing callers and tests keep working; new code
should use ``Solver.solve("sor", ...)`` or
:class:`~repro.iterative.sor.SORSolver` directly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.plans import CachedMatVec

__all__ = ["GaussSeidelResult", "SystolicGaussSeidel"]


@dataclass
class GaussSeidelResult:
    """Outcome of a Gauss-Seidel run (legacy result shape)."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norm: float
    residual_history: List[float] = field(default_factory=list)
    array_steps: int = 0

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise ValueError("iterations must be >= 0")


class SystolicGaussSeidel:
    """Deprecated shim: SOR with ``omega = 1`` behind the seed's API."""

    def __init__(
        self,
        w: int,
        tolerance: float = 1e-10,
        max_iterations: int = 200,
        matvec: Optional[CachedMatVec] = None,
        backend: str = "auto",
    ):
        warnings.warn(
            "SystolicGaussSeidel is deprecated; use "
            "repro.iterative.SORSolver (omega=1) or Solver.solve('sor', ...)",
            DeprecationWarning,
            stacklevel=2,
        )
        if tolerance <= 0:
            raise ValueError(f"tolerance must be > 0, got {tolerance}")
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        # Imported lazily: repro.iterative.sor itself imports the
        # extensions package (for the triangular pipeline), so a
        # module-level import here would be circular.
        from ..iterative.criteria import ConvergenceCriteria
        from ..iterative.sor import SORSolver

        self._solver = SORSolver(
            w,
            omega=1.0,
            criteria=ConvergenceCriteria(
                atol=tolerance,
                rtol=0.0,
                max_iter=max_iterations,
                # The legacy solver had no divergence guard: it ran to the
                # iteration cap and reported converged=False.
                divergence_ratio=float("inf"),
            ),
            backend=backend,
            matvec=matvec,
        )

    @property
    def w(self) -> int:
        return self._solver.w

    def solve(
        self,
        matrix: np.ndarray,
        b: np.ndarray,
        x0: Optional[np.ndarray] = None,
    ) -> GaussSeidelResult:
        """Iterate ``(D + L) x_{k+1} = b - U x_k`` until the residual converges."""
        result = self._solver.solve(matrix, b, x0)
        return GaussSeidelResult(
            x=result.x,
            iterations=result.iterations,
            converged=result.converged,
            residual_norm=result.residual_norm,
            residual_history=result.residual_history,
            array_steps=result.array_steps,
        )
