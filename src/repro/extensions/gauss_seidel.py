"""Gauss-Seidel iteration driven by the DBT matrix-vector pipeline.

Section 4 lists the Gauss-Seidel iterative method among the problems the
authors solved with the same methodology (report /8/, unavailable).  The
splitting form of the iteration is

    ``(D + L) x_{k+1} = b - U x_k``

where ``D + L`` is the lower triangular part of ``A`` (diagonal included)
and ``U`` its strictly upper part.  Each sweep therefore consists of one
dense matrix-vector product — executed on the linear systolic array via
:class:`~repro.core.matvec.SizeIndependentMatVec` — followed by a
triangular solve handled by
:class:`~repro.extensions.triangular.SystolicTriangularSolver`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import ShapeError
from ..matrices.dense import as_matrix, as_vector
from ..matrices.padding import validate_array_size
from ..core.plans import CachedMatVec
from .triangular import SystolicTriangularSolver

__all__ = ["GaussSeidelResult", "SystolicGaussSeidel"]


@dataclass
class GaussSeidelResult:
    """Outcome of a Gauss-Seidel run."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norm: float
    residual_history: List[float] = field(default_factory=list)
    array_steps: int = 0

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise ValueError("iterations must be >= 0")


class SystolicGaussSeidel:
    """Gauss-Seidel solver whose products run on the linear systolic array."""

    def __init__(
        self,
        w: int,
        tolerance: float = 1e-10,
        max_iterations: int = 200,
        matvec: Optional[CachedMatVec] = None,
        backend: str = "auto",
    ):
        self._w = validate_array_size(w)
        if tolerance <= 0:
            raise ValueError(f"tolerance must be > 0, got {tolerance}")
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        self._tolerance = tolerance
        self._max_iterations = max_iterations
        # One shared engine: the sweep's dense product and the triangular
        # solver's block products reuse the same per-shape plans.
        self._matvec = (
            matvec if matvec is not None else CachedMatVec(self._w, backend=backend)
        )
        self._triangular = SystolicTriangularSolver(self._w, matvec=self._matvec)

    @property
    def w(self) -> int:
        return self._w

    def solve(
        self,
        matrix: np.ndarray,
        b: np.ndarray,
        x0: Optional[np.ndarray] = None,
    ) -> GaussSeidelResult:
        """Iterate ``(D + L) x_{k+1} = b - U x_k`` until the residual converges."""
        matrix = as_matrix(matrix, "matrix")
        b = as_vector(b, "b")
        n = matrix.shape[0]
        if matrix.shape[0] != matrix.shape[1]:
            raise ShapeError(f"Gauss-Seidel needs a square matrix, got {matrix.shape}")
        if b.shape[0] != n:
            raise ShapeError(f"b has length {b.shape[0]}, expected {n}")
        if np.any(np.abs(np.diag(matrix)) < 1e-300):
            raise ShapeError("Gauss-Seidel needs nonzero diagonal entries")

        strict_upper = np.triu(matrix, k=1)
        lower_with_diag = np.tril(matrix)
        x = np.zeros(n, dtype=float) if x0 is None else as_vector(x0, "x0").copy()
        if x.shape[0] != n:
            raise ShapeError(f"x0 has length {x.shape[0]}, expected {n}")

        matvec = self._matvec
        triangular = self._triangular
        history: List[float] = []
        array_steps = 0
        converged = False
        iterations = 0

        for iteration in range(1, self._max_iterations + 1):
            iterations = iteration
            # rhs = b - U x_k, with the product on the array.  A matrix of
            # zeros (n == 1, say) still goes through the array so that the
            # measured step counts stay comparable across problem sizes.
            product = matvec.solve(strict_upper, x)
            array_steps += product.measured_steps
            rhs = b - product.y

            solve = triangular.solve_lower(lower_with_diag, rhs)
            array_steps += solve.array_steps
            x = solve.x

            residual = float(np.linalg.norm(matrix @ x - b))
            history.append(residual)
            if residual <= self._tolerance:
                converged = True
                break

        return GaussSeidelResult(
            x=x,
            iterations=iterations,
            converged=converged,
            residual_norm=history[-1] if history else float("inf"),
            residual_history=history,
            array_steps=array_steps,
        )
