"""Blocked LU decomposition and triangular inversion on the DBT pipelines.

The last applications Section 4 attributes to the methodology are "L-U
decomposition and inverses of triangular and dense matrices".  This module
implements right-looking blocked LU factorization (without pivoting, as in
the systolic literature of the period) and triangular/dense inversion where

* every trailing-submatrix update ``A_22 <- A_22 - A_21 A_12`` — the cubic
  part of the work — runs on the hexagonal array via
  :class:`~repro.core.matmul.SizeIndependentMatMul`,
* the panel factorizations and small triangular solves (the quadratic
  part) run on the host, standing in for the specialised boundary cells of
  a hardware LU array.

The results report the array/host split so that the examples can show the
array's share approaching 1 as the problem grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import ShapeError
from ..matrices.dense import as_matrix
from ..matrices.padding import block_count, validate_array_size
from ..core.plans import CachedMatMul
from .triangular import SystolicTriangularSolver

__all__ = ["LUResult", "InverseResult", "SystolicLU"]


@dataclass
class LUResult:
    """Blocked LU factorization ``A = L U`` plus work accounting."""

    l: np.ndarray  # noqa: E741 - the L factor, named for the math
    u: np.ndarray
    array_steps: int
    array_operations: int
    host_operations: int
    update_calls: int

    @property
    def array_share(self) -> float:
        total = self.array_operations + self.host_operations
        if total == 0:
            return 0.0
        return self.array_operations / total

    def residual(self, matrix: np.ndarray) -> float:
        """``||A - L U||`` for the matrix the factorization was computed from."""
        return float(np.linalg.norm(np.asarray(matrix, dtype=float) - self.l @ self.u))


@dataclass
class InverseResult:
    """Matrix inverse plus work accounting."""

    inverse: np.ndarray
    array_steps: int
    array_operations: int
    host_operations: int

    @property
    def array_share(self) -> float:
        total = self.array_operations + self.host_operations
        if total == 0:
            return 0.0
        return self.array_operations / total


class SystolicLU:
    """Blocked LU factorization and inversion using the systolic pipelines."""

    def __init__(
        self,
        w: int,
        matmul: Optional[CachedMatMul] = None,
        triangular: Optional[SystolicTriangularSolver] = None,
        backend: str = "auto",
    ):
        self._w = validate_array_size(w)
        self._matmul = (
            matmul if matmul is not None else CachedMatMul(self._w, backend=backend)
        )
        self._triangular = (
            triangular
            if triangular is not None
            else SystolicTriangularSolver(self._w, backend=backend)
        )

    @property
    def w(self) -> int:
        return self._w

    # -- factorization --------------------------------------------------------------
    def factor(self, matrix: np.ndarray) -> LUResult:
        """Right-looking blocked LU without pivoting.

        The matrix must be square and have nonsingular leading blocks (the
        usual requirement for unpivoted LU); diagonally dominant and
        symmetric positive definite matrices qualify.
        """
        matrix = as_matrix(matrix, "matrix")
        n = matrix.shape[0]
        if matrix.shape[0] != matrix.shape[1]:
            raise ShapeError(f"LU needs a square matrix, got {matrix.shape}")

        w = self._w
        blocks = block_count(n, w)
        work = matrix.copy()
        lower = np.eye(n, dtype=float)
        upper = np.zeros((n, n), dtype=float)
        array_steps = 0
        array_operations = 0
        host_operations = 0
        update_calls = 0

        for step in range(blocks):
            lo = step * w
            hi = min(n, (step + 1) * w)
            pivot = work[lo:hi, lo:hi]
            l_block, u_block = self._factor_block(pivot)
            host_operations += (hi - lo) ** 3 // 3 + (hi - lo) ** 2
            lower[lo:hi, lo:hi] = l_block
            upper[lo:hi, lo:hi] = u_block

            if hi < n:
                # Panel solves: L21 U11 = A21 and L11 U12 = A12.
                a21 = work[hi:, lo:hi]
                a12 = work[lo:hi, hi:]
                l21 = self._solve_right_upper(a21, u_block)
                u12 = self._solve_left_lower(a12, l_block)
                host_operations += a21.size * (hi - lo) + a12.size * (hi - lo)
                lower[hi:, lo:hi] = l21
                upper[lo:hi, hi:] = u12

                # Trailing update on the hexagonal array:
                # A22 <- A22 - L21 U12 = (-L21) U12 + A22.
                update = self._matmul.solve(-l21, u12, work[hi:, hi:])
                array_steps += update.measured_steps
                array_operations += l21.shape[0] * l21.shape[1] * u12.shape[1]
                update_calls += 1
                work[hi:, hi:] = update.c

        return LUResult(
            l=lower,  # noqa: E741
            u=upper,
            array_steps=array_steps,
            array_operations=array_operations,
            host_operations=host_operations,
            update_calls=update_calls,
        )

    # -- inversion ---------------------------------------------------------------------
    def invert_triangular(self, matrix: np.ndarray, lower: bool = True) -> InverseResult:
        """Invert a triangular matrix by solving ``T X = I`` column block by block."""
        matrix = as_matrix(matrix, "matrix")
        n = matrix.shape[0]
        if matrix.shape[0] != matrix.shape[1]:
            raise ShapeError(f"inversion needs a square matrix, got {matrix.shape}")
        identity = np.eye(n, dtype=float)
        inverse = np.zeros((n, n), dtype=float)
        array_steps = 0
        array_operations = 0
        host_operations = 0
        for column in range(n):
            solve = (
                self._triangular.solve_lower(matrix, identity[:, column])
                if lower
                else self._triangular.solve_upper(matrix, identity[:, column])
            )
            inverse[:, column] = solve.x
            array_steps += solve.array_steps
            array_operations += solve.array_operations
            host_operations += solve.host_operations
        return InverseResult(
            inverse=inverse,
            array_steps=array_steps,
            array_operations=array_operations,
            host_operations=host_operations,
        )

    def invert(self, matrix: np.ndarray) -> InverseResult:
        """Invert a dense matrix as ``A^{-1} = U^{-1} L^{-1}`` via blocked LU."""
        matrix = as_matrix(matrix, "matrix")
        factorization = self.factor(matrix)
        inv_l = self.invert_triangular(factorization.l, lower=True)
        inv_u = self.invert_triangular(factorization.u, lower=False)
        product = self._matmul.solve(inv_u.inverse, inv_l.inverse)
        array_steps = (
            factorization.array_steps
            + inv_l.array_steps
            + inv_u.array_steps
            + product.measured_steps
        )
        array_operations = (
            factorization.array_operations
            + inv_l.array_operations
            + inv_u.array_operations
            + matrix.shape[0] ** 3
        )
        host_operations = (
            factorization.host_operations
            + inv_l.host_operations
            + inv_u.host_operations
        )
        return InverseResult(
            inverse=product.c,
            array_steps=array_steps,
            array_operations=array_operations,
            host_operations=host_operations,
        )

    # -- small host kernels ---------------------------------------------------------------
    @staticmethod
    def _factor_block(block: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Unblocked LU of one ``w x w`` (or smaller) pivot block."""
        size = block.shape[0]
        l_block = np.eye(size, dtype=float)
        u_block = block.copy()
        for k in range(size):
            pivot = u_block[k, k]
            if abs(pivot) < 1e-300:
                raise ShapeError(
                    "zero pivot encountered; unpivoted LU needs nonsingular leading blocks"
                )
            for i in range(k + 1, size):
                factor = u_block[i, k] / pivot
                l_block[i, k] = factor
                u_block[i, k:] -= factor * u_block[k, k:]
                u_block[i, k] = 0.0
        return l_block, u_block

    @staticmethod
    def _solve_right_upper(a21: np.ndarray, u11: np.ndarray) -> np.ndarray:
        """Solve ``X U11 = A21`` for ``X`` (U11 upper triangular)."""
        return np.linalg.solve(u11.T, a21.T).T

    @staticmethod
    def _solve_left_lower(a12: np.ndarray, l11: np.ndarray) -> np.ndarray:
        """Solve ``L11 X = A12`` for ``X`` (L11 unit lower triangular)."""
        return np.linalg.solve(l11, a12)
