"""Triangular system solution built on the DBT matrix-vector pipeline.

Section 4 of the paper reports that the same methodology was applied to
"triangular systems of linear and matrix equations" in the authors'
technical report /8/, which is not publicly available.  This module
re-derives the application from what the ISCA paper does make available:

* the system ``L x = b`` (or ``U x = b``) is processed by blocks of the
  array size ``w``;
* all block matrix-vector products — the bulk of the arithmetic — are
  executed on the linear systolic array through
  :class:`~repro.core.matvec.SizeIndependentMatVec`;
* only the ``w x w`` triangular solves on the diagonal blocks are done by
  a scalar routine, standing in for the specialised boundary cell that a
  hardware triangular solver array would provide (documented as a
  substitution in ``DESIGN.md``).

The per-solve report keeps track of how many operations ran on the array
versus on the host so that examples and tests can show the array carries
the dominant share as the problem grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import ShapeError
from ..matrices.dense import as_matrix, as_vector
from ..matrices.padding import block_count, validate_array_size
from ..core.plans import CachedMatVec

__all__ = ["TriangularSolveResult", "SystolicTriangularSolver"]


@dataclass
class TriangularSolveResult:
    """Solution of one triangular system plus the array/host work split."""

    x: np.ndarray
    array_steps: int
    array_operations: int
    host_operations: int
    block_solves: int
    matvec_calls: int = 0
    residual_norm: float = field(default=0.0)

    @property
    def array_share(self) -> float:
        """Fraction of arithmetic executed on the systolic array."""
        total = self.array_operations + self.host_operations
        if total == 0:
            return 0.0
        return self.array_operations / total


class SystolicTriangularSolver:
    """Solve ``T x = b`` for dense triangular ``T`` using the array for products.

    ``matvec`` optionally injects a shared matrix-vector engine (anything
    with the ``solve(matrix, x, b=None)`` surface of
    :class:`~repro.core.plans.CachedMatVec`); by default the solver owns a
    :class:`~repro.core.plans.CachedMatVec`, so the per-block products —
    whose shapes repeat across solves — reuse their execution plans.
    ``backend`` selects how those products execute (``"auto"`` runs the
    vectorized diagonal-sweep engine); it is ignored when a shared
    ``matvec`` engine is injected, since that engine carries its own.
    """

    def __init__(
        self,
        w: int,
        matvec: Optional[CachedMatVec] = None,
        backend: str = "auto",
    ):
        self._w = validate_array_size(w)
        self._matvec = (
            matvec if matvec is not None else CachedMatVec(self._w, backend=backend)
        )

    @property
    def w(self) -> int:
        return self._w

    def solve_lower(self, matrix: np.ndarray, b: np.ndarray) -> TriangularSolveResult:
        """Forward substitution for a lower triangular system."""
        return self._solve(matrix, b, lower=True)

    def solve_upper(self, matrix: np.ndarray, b: np.ndarray) -> TriangularSolveResult:
        """Backward substitution for an upper triangular system."""
        return self._solve(matrix, b, lower=False)

    def _solve(self, matrix: np.ndarray, b: np.ndarray, lower: bool) -> TriangularSolveResult:
        matrix = as_matrix(matrix, "matrix")
        b = as_vector(b, "b")
        n = matrix.shape[0]
        if matrix.shape[0] != matrix.shape[1]:
            raise ShapeError(f"triangular solve needs a square matrix, got {matrix.shape}")
        if b.shape[0] != n:
            raise ShapeError(f"b has length {b.shape[0]}, expected {n}")
        if np.any(np.abs(np.diag(matrix)) < 1e-300):
            raise ShapeError("triangular matrix has a (numerically) zero diagonal entry")

        w = self._w
        blocks = block_count(n, w)
        solver = self._matvec
        x = np.zeros(n, dtype=float)
        array_steps = 0
        array_operations = 0
        host_operations = 0
        matvec_calls = 0
        block_solves = 0

        order: List[int] = list(range(blocks)) if lower else list(range(blocks - 1, -1, -1))
        for index in order:
            row_lo = index * w
            row_hi = min(n, (index + 1) * w)
            rhs = b[row_lo:row_hi].copy()

            # Subtract the contribution of the already-solved blocks; this is
            # the part that runs on the systolic array.
            solved_cols = (
                slice(0, row_lo) if lower else slice(row_hi, n)
            )
            solved = x[solved_cols]
            if solved.size > 0:
                off_diagonal = matrix[row_lo:row_hi, solved_cols]
                solution = solver.solve(off_diagonal, solved)
                rhs -= solution.y
                array_steps += solution.measured_steps
                array_operations += off_diagonal.shape[0] * off_diagonal.shape[1]
                host_operations += row_hi - row_lo  # the subtraction itself
                matvec_calls += 1

            # Solve the diagonal block with a scalar routine (the boundary
            # cell substitution).
            diag_block = matrix[row_lo:row_hi, row_lo:row_hi]
            x[row_lo:row_hi] = self._solve_block(diag_block, rhs, lower)
            size = row_hi - row_lo
            host_operations += size * (size + 1) // 2
            block_solves += 1

        residual = float(np.linalg.norm(matrix @ x - b))
        return TriangularSolveResult(
            x=x,
            array_steps=array_steps,
            array_operations=array_operations,
            host_operations=host_operations,
            block_solves=block_solves,
            matvec_calls=matvec_calls,
            residual_norm=residual,
        )

    @staticmethod
    def _solve_block(block: np.ndarray, rhs: np.ndarray, lower: bool) -> np.ndarray:
        """Scalar forward/backward substitution for one diagonal block."""
        size = block.shape[0]
        out = np.zeros(size, dtype=float)
        indices = range(size) if lower else range(size - 1, -1, -1)
        for i in indices:
            if lower:
                acc = rhs[i] - block[i, :i] @ out[:i]
            else:
                acc = rhs[i] - block[i, i + 1 :] @ out[i + 1 :]
            out[i] = acc / block[i, i]
        return out
