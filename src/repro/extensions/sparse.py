"""Block-sparse DBT: skipping zero blocks of the dense operand.

The conclusions of the paper point out the natural refinement of DBT for
matrices "of a known degree of sparsity": "transformation algorithms can be
devised and developed, to exclude the need of zero-valued elements
sub-matrices.  A reduction of computational time would be the consequence."
The same section also notes (for the matrix-matrix case) that chaining
independent pieces sometimes needs "separation of subproblems with zero
value blocks".

This module implements that refinement for the matrix-vector pipeline:

* the operand is partitioned into ``w x w`` blocks as usual and the blocks
  that are entirely zero are never streamed into the array;
* within one original block row, the nonzero blocks are chained exactly as
  DBT-by-rows chains all blocks: the upper triangles walk the nonzero
  columns in order and each strictly-lower triangle is paired with the next
  nonzero column (wrapping to the first one), so every nonzero triangle
  enters the array exactly once and the band remains completely filled with
  *useful* data;
* between two consecutive non-empty block rows one zero *separator* block
  row is inserted.  The separator decouples the ``x`` block needed by the
  previous row's wrap-around triangle from the ``x`` block needed by the
  next row's first triangle (the two original block columns generally
  differ for a sparse pattern), and it keeps the feedback chain intact with
  the same constant delay ``w`` — it is precisely the "separation by zero
  value blocks" device the paper describes;
* original block rows that are entirely zero never enter the array at all:
  their result is just the corresponding ``b`` block.

For a matrix with ``z`` nonzero blocks out of ``n_bar * m_bar`` the
transformed band has ``z + (r - 1)`` block rows (``r`` = number of
non-empty block rows) instead of ``n_bar * m_bar``, and the execution time
shrinks accordingly:  ``T = 2 w (z + r - 1) + 2w - 3``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..backends.registry import COMPILED, VECTORIZED, resolve_backend
from ..backends.vectorized import build_banded_linear_run
from ..errors import TransformError
from ..instrumentation import counters
from ..matrices.banded import BandMatrix
from ..matrices.blocks import BlockGrid
from ..matrices.dense import as_matrix, as_vector
from ..matrices.padding import pad_vector, validate_array_size
from ..systolic.feedback import ExternalSource, FeedbackSource
from ..systolic.linear_array import LinearContraflowArray, LinearProblem, LinearRunResult
from ..core.analytic import matvec_steps
from ..matrices.padding import block_count

__all__ = ["BandRowPlan", "BlockSparseDBTTransform", "BlockSparseMatVec", "SparseMatVecSolution"]


@dataclass(frozen=True)
class BandRowPlan:
    """One band block row of the sparse transformation.

    ``upper_source`` / ``lower_source`` are original block indices, or
    ``None`` for the zero triangles of a separator row.  ``x_block`` is the
    original block column whose ``x`` block feeds this band block row, and
    ``is_final`` marks the band block row whose output is the finished
    result of original block row ``original_row``.
    """

    original_row: int
    upper_source: Optional[Tuple[int, int]]
    lower_source: Optional[Tuple[int, int]]
    x_block: int
    is_first: bool
    is_final: bool
    is_separator: bool = False


class BlockSparseDBTTransform:
    """DBT-by-rows restricted to the nonzero blocks of the operand."""

    def __init__(self, matrix: np.ndarray, w: int, tolerance: float = 0.0):
        counters.bump("transform_constructions")
        self._w = validate_array_size(w)
        if tolerance < 0.0:
            raise TransformError(f"tolerance must be >= 0, got {tolerance}")
        matrix = as_matrix(matrix, "matrix")
        self._original_shape = matrix.shape
        self._tolerance = float(tolerance)
        self._grid = BlockGrid(matrix, self._w)
        self._nonzero_columns = self._find_nonzero_columns()
        self._plans = self._build_plans()
        self._band, self._x_tail_block = self._assemble_band()

    # -- pattern analysis -----------------------------------------------------------
    def _find_nonzero_columns(self) -> List[List[int]]:
        columns: List[List[int]] = []
        for r in range(self._grid.block_rows):
            present = [
                s
                for s in range(self._grid.block_cols)
                if np.max(np.abs(self._grid.block(r, s))) > self._tolerance
            ]
            columns.append(present)
        return columns

    def _build_plans(self) -> List[BandRowPlan]:
        plans: List[BandRowPlan] = []
        included = [r for r, cols in enumerate(self._nonzero_columns) if cols]
        for position, r in enumerate(included):
            columns = self._nonzero_columns[r]
            count = len(columns)
            # A separator is only needed when the wrap-around column of this
            # row differs from the first column of the next included row;
            # when they coincide (always the case for a fully dense pattern)
            # the plain DBT-by-rows chaining already works.
            needs_separator = (
                position < len(included) - 1
                and self._nonzero_columns[included[position + 1]][0] != columns[0]
            )
            for index, s in enumerate(columns):
                next_column = columns[(index + 1) % count]
                is_last_real = index == count - 1
                plans.append(
                    BandRowPlan(
                        original_row=r,
                        upper_source=(r, s),
                        lower_source=(r, next_column),
                        x_block=s,
                        is_first=index == 0,
                        is_final=is_last_real and not needs_separator,
                    )
                )
            if needs_separator:
                # The separator carries the x block the wrap-around lower
                # triangle needs, computes nothing, and delivers the row's
                # final result through the regular feedback path.
                plans.append(
                    BandRowPlan(
                        original_row=r,
                        upper_source=None,
                        lower_source=None,
                        x_block=columns[0],
                        is_first=False,
                        is_final=True,
                        is_separator=True,
                    )
                )
        return plans

    # -- band assembly -----------------------------------------------------------------
    def _assemble_band(self) -> Tuple[BandMatrix, int]:
        w = self._w
        rows = len(self._plans) * w
        if rows == 0:
            # Entirely zero matrix: nothing enters the array.
            return BandMatrix(1, 1, 0, 0), 0
        band = BandMatrix(rows, rows + w - 1, lower=0, upper=w - 1)
        for k, plan in enumerate(self._plans):
            base = k * w
            upper = (
                np.triu(self._grid.block(*plan.upper_source))
                if plan.upper_source is not None
                else np.zeros((w, w))
            )
            lower = (
                np.tril(self._grid.block(*plan.lower_source), k=-1)
                if plan.lower_source is not None
                else np.zeros((w, w))
            )
            for a in range(w):
                for b in range(a, w):
                    band.set(base + a, base + b, upper[a, b])
                for b in range(a):
                    band.set(base + a, base + w + b, lower[a, b])
        tail_block = self._plans[-1].lower_source[1] if self._plans[-1].lower_source else 0
        return band, tail_block

    # -- geometry ------------------------------------------------------------------------
    @property
    def w(self) -> int:
        return self._w

    @property
    def original_shape(self) -> Tuple[int, int]:
        return self._original_shape

    @property
    def plans(self) -> Sequence[BandRowPlan]:
        return tuple(self._plans)

    @property
    def band(self) -> BandMatrix:
        return self._band.copy()

    @property
    def block_row_count(self) -> int:
        """Band block rows actually streamed (nonzero blocks + separators)."""
        return len(self._plans)

    @property
    def nonzero_block_count(self) -> int:
        return sum(len(cols) for cols in self._nonzero_columns)

    @property
    def separator_count(self) -> int:
        return sum(1 for plan in self._plans if plan.is_separator)

    @property
    def skipped_block_count(self) -> int:
        """Original blocks excluded from the band (the paper's time saving)."""
        total = self._grid.block_rows * self._grid.block_cols
        return total - self.nonzero_block_count

    @property
    def empty_rows(self) -> List[int]:
        """Original block rows that never enter the array."""
        return [r for r, cols in enumerate(self._nonzero_columns) if not cols]

    def dense_block_row_count(self) -> int:
        """Band block rows the plain (dense) DBT would stream."""
        return self._grid.block_rows * self._grid.block_cols

    # -- transformed data -----------------------------------------------------------------
    def transform_x(self, x: np.ndarray) -> np.ndarray:
        x = as_vector(x, "x")
        if x.shape[0] != self._original_shape[1]:
            raise TransformError(
                f"x has length {x.shape[0]}, expected {self._original_shape[1]}"
            )
        padded = pad_vector(x, self._w)
        w = self._w
        if not self._plans:
            return np.zeros(0)
        out = np.zeros(len(self._plans) * w + w - 1, dtype=float)
        for k, plan in enumerate(self._plans):
            source = plan.x_block * w
            out[k * w : (k + 1) * w] = padded[source : source + w]
        tail_source = self._x_tail_block * w
        out[len(self._plans) * w :] = padded[tail_source : tail_source + w - 1]
        return out

    def x_tags(self) -> List[tuple]:
        w = self._w
        tags: List[tuple] = []
        for plan in self._plans:
            base = plan.x_block * w
            tags.extend(("x", base + offset) for offset in range(w))
        tags.extend(("x", self._x_tail_block * w + offset) for offset in range(w - 1))
        return tags

    def build_y_sources(self, b: Optional[np.ndarray]) -> List[object]:
        n = self._original_shape[0]
        if b is None:
            b_vec = np.zeros(n, dtype=float)
        else:
            b_vec = as_vector(b, "b")
            if b_vec.shape[0] != n:
                raise TransformError(f"b has length {b_vec.shape[0]}, expected {n}")
        padded = pad_vector(b_vec, self._w)
        w = self._w
        sources: List[object] = []
        for plan in self._plans:
            for offset in range(w):
                element = plan.original_row * w + offset
                if plan.is_first:
                    sources.append(
                        ExternalSource(value=float(padded[element]), tag=("b", element))
                    )
                else:
                    sources.append(FeedbackSource(tag=("y", element)))
        return sources

    def output_tags(self) -> List[tuple]:
        w = self._w
        tags: List[tuple] = []
        pass_counter: Dict[int, int] = {}
        for plan in self._plans:
            for offset in range(w):
                element = plan.original_row * w + offset
                if plan.is_final:
                    tags.append(("y", element))
                else:
                    index = pass_counter.get(element, 0)
                    tags.append(("y", element, index))
            if not plan.is_final:
                for offset in range(w):
                    element = plan.original_row * w + offset
                    pass_counter[element] = pass_counter.get(element, 0) + 1
        return tags

    def recover_y(self, band_outputs: np.ndarray, b: Optional[np.ndarray]) -> np.ndarray:
        """Rebuild ``y``: array outputs for non-empty rows, ``b`` for empty ones."""
        w = self._w
        n = self._original_shape[0]
        if b is None:
            b_vec = np.zeros(n, dtype=float)
        else:
            b_vec = as_vector(b, "b")
        padded_b = pad_vector(b_vec, w)
        band_outputs = np.asarray(band_outputs, dtype=float)
        expected = len(self._plans) * w
        if band_outputs.shape != (expected,):
            raise TransformError(
                f"expected {expected} band outputs, got {band_outputs.shape}"
            )
        out = padded_b.copy()[: self._grid.block_rows * w]
        for k, plan in enumerate(self._plans):
            if not plan.is_final:
                continue
            r = plan.original_row
            out[r * w : (r + 1) * w] = band_outputs[k * w : (k + 1) * w]
        return out[:n].copy()


@dataclass
class SparseMatVecSolution:
    """Result of a block-sparse size-independent matrix-vector execution."""

    y: np.ndarray
    w: int
    transform: BlockSparseDBTTransform
    run: Optional[LinearRunResult]

    @property
    def measured_steps(self) -> int:
        """Array steps spent (zero when the whole operand is zero)."""
        return self.run.total_cycles if self.run is not None else 0

    @property
    def dense_steps(self) -> int:
        """Steps the plain dense DBT would need on the same problem."""
        n, m = self.transform.original_shape
        return matvec_steps(
            block_count(n, self.w), block_count(m, self.w), self.w
        )

    @property
    def saving(self) -> float:
        """Fraction of the dense execution time saved by skipping zero blocks."""
        if self.dense_steps == 0:
            return 0.0
        return 1.0 - self.measured_steps / self.dense_steps

    @property
    def measured_utilization(self) -> float:
        return self.run.report.utilization if self.run is not None else 0.0


class BlockSparseMatVec:
    """``y = A x + b`` for block-sparse dense-stored ``A`` on a ``w``-cell array.

    The transformation is value dependent (it follows the sparsity
    pattern), so it is rebuilt per solve on either backend; ``backend``
    only selects how the resulting band problem executes — the
    cycle-accurate simulator or the vectorized diagonal sweeps (the
    ``"auto"`` default).
    """

    def __init__(self, w: int, tolerance: float = 0.0, backend: str = "auto"):
        self._w = validate_array_size(w)
        self._tolerance = tolerance
        self._backend = resolve_backend(backend)
        self._array = LinearContraflowArray(self._w)

    @property
    def w(self) -> int:
        return self._w

    @property
    def backend(self) -> str:
        return self._backend

    def solve(
        self,
        matrix: np.ndarray,
        x: np.ndarray,
        b: Optional[np.ndarray] = None,
    ) -> SparseMatVecSolution:
        matrix = as_matrix(matrix, "matrix")
        x = as_vector(x, "x")
        if x.shape[0] != matrix.shape[1]:
            raise TransformError(
                f"x has length {x.shape[0]} but the matrix has {matrix.shape[1]} columns"
            )
        transform = BlockSparseDBTTransform(matrix, self._w, tolerance=self._tolerance)
        if transform.block_row_count == 0:
            y = np.zeros(matrix.shape[0]) if b is None else as_vector(b, "b").copy()
            return SparseMatVecSolution(y=y, w=self._w, transform=transform, run=None)

        if self._backend in (VECTORIZED, COMPILED):
            # The sparse band plan is value dependent (it follows the
            # sparsity pattern), so there is nothing to lower ahead of
            # time: the compiled backend shares the vectorized sweep.
            run = self._sweep(transform, x, b)
        else:
            problem = LinearProblem(
                band=transform.band,
                x=transform.transform_x(x),
                y_sources=transform.build_y_sources(b),
                x_tags=transform.x_tags(),
                output_tags=transform.output_tags(),
                useful_operations=transform.nonzero_block_count * self._w * self._w,
            )
            run = self._array.run(problem)
        y = transform.recover_y(run.y_per_problem[0], b)
        return SparseMatVecSolution(y=y, w=self._w, transform=transform, run=run)

    def _sweep(
        self,
        transform: BlockSparseDBTTransform,
        x: np.ndarray,
        b: Optional[np.ndarray],
    ) -> LinearRunResult:
        """Diagonal-sweep execution of the sparse band problem.

        Each band block row folds its ``w`` diagonal segments in cell
        order on top of its initial value (its ``b`` block for the first
        row of an original block row, the previous row's output — the
        ``w``-register feedback value — otherwise), reproducing the
        simulator's per-row accumulation order exactly.
        """
        w = self._w
        plans = transform.plans
        band = transform.band
        band_rows = len(plans) * w
        diagonals = [band.diagonal(d) for d in range(w)]
        x_t = transform.transform_x(x)
        n = transform.original_shape[0]
        b_vec = np.zeros(n) if b is None else as_vector(b, "b")
        padded_b = pad_vector(b_vec, w)
        outputs = np.empty(band_rows, dtype=float)
        feedback_rows: List[int] = []
        previous: Optional[np.ndarray] = None
        for k, plan in enumerate(plans):
            base = k * w
            segment = outputs[base : base + w]
            if plan.is_first:
                start = plan.original_row * w
                segment[:] = padded_b[start : start + w]
            else:
                segment[:] = previous
                feedback_rows.extend(range(base, base + w))
            for d in range(w):
                segment += diagonals[d][base : base + w] * x_t[base + d : base + d + w]
            previous = segment
        return build_banded_linear_run(
            w,
            band_rows,
            outputs,
            useful_operations=transform.nonzero_block_count * w * w,
            feedback_rows=feedback_rows,
        )
