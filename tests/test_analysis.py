"""Unit tests for figure regeneration and experiment reporting."""

from __future__ import annotations

import pytest

from repro.analysis.figures import (
    render_fig1_block_structure,
    render_fig2_concrete_case,
    render_fig3_dataflow,
    render_fig4_matmul_blocks,
    render_fig5_spiral_topology,
    render_fig6_recovery_map,
)
from repro.analysis.report import ExperimentReport, ExperimentRow


class TestFigureRendering:
    def test_fig1_lists_every_band_block_row(self):
        text = render_fig1_block_structure(2, 3, 3)
        assert "U_0,0" in text and "U_1,2" in text
        assert "L_0,1" in text and "L_1,0" in text
        assert text.count("feedback") == 4  # two non-initial passes per block row
        assert "x'_0" in text

    def test_fig2_shows_partition_cut(self):
        text = render_fig2_concrete_case()
        assert "n=6, m=9, w=3" in text
        assert "cut after band block row 2" in text

    def test_fig3_reports_39_steps(self):
        text = render_fig3_dataflow()
        assert "39 steps" in text
        assert "x0" in text and "x8" in text
        assert "Clock:" in text

    def test_fig4_lists_operand_blocks(self):
        text = render_fig4_matmul_blocks()
        assert "U^A_0,0" in text
        assert "low(B_0,0)" in text
        assert "tail" in text

    def test_fig5_topology(self):
        text = render_fig5_spiral_topology(3)
        assert "auto-feedback" in text
        assert "3 PEs in loop" in text

    def test_fig6_recovery_map(self):
        text = render_fig6_recovery_map()
        assert "chain lengths" in text
        assert "(0, 0)" in text

    def test_parametrized_sizes(self):
        assert "n_bar=3, m_bar=2" in render_fig1_block_structure(3, 2, 2)
        assert "w=4" in render_fig5_spiral_topology(4) or "4x4" in render_fig5_spiral_topology(4)


class TestExperimentReport:
    def test_integer_rows_require_exact_match(self):
        row = ExperimentRow(label="steps", paper=39, measured=39)
        assert row.matches
        assert not ExperimentRow(label="steps", paper=39, measured=40).matches

    def test_float_rows_allow_one_percent(self):
        assert ExperimentRow("eta", 0.5, 0.501).matches
        assert not ExperimentRow("eta", 0.5, 0.54).matches

    def test_zero_paper_value(self):
        assert ExperimentRow("zero", 0, 0.0).matches
        assert not ExperimentRow("zero", 0, 1.0).matches
        assert ExperimentRow("zero", 0, 0.0).ratio == 1.0

    def test_ratio(self):
        assert ExperimentRow("x", 2, 3).ratio == pytest.approx(1.5)

    def test_report_accumulates_and_formats(self):
        report = ExperimentReport("T1", "matrix-vector time")
        report.add("steps (6x9, w=3)", 39, 39)
        report.add("steps (8x8, w=4)", 37, 37)
        assert report.all_match
        assert report.mismatches() == []
        table = report.format_table()
        assert "T1" in table
        assert "matrix-vector time" in table
        assert table.count("yes") == 2

    def test_report_flags_mismatches(self):
        report = ExperimentReport("X")
        report.add("bad", 10, 12)
        assert not report.all_match
        assert len(report.mismatches()) == 1
        assert "NO" in report.format_table()

    def test_empty_report_formats(self):
        table = ExperimentReport("empty").format_table()
        assert "metric" in table
