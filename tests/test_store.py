"""Plan persistence: round-trip fidelity and corruption robustness.

Two families of guarantees:

* **Round-trip bit-identity** — for every primary problem kind (and both
  ``dtype_mode`` settings of the NN dense kind), a plan compiled with a
  store attached, reloaded into a *fresh* solver, executes the same
  operands to bit-identical values with **zero** plan builds.
* **Fail-open reads** — a store artifact that is truncated, bit-flipped,
  version-bumped, magic-corrupted or replaced with garbage must never
  crash a load: every such artifact is reported as a miss-with-error
  (``plan_store_errors`` bumped), the solver silently recompiles, and
  the healthy write-through replaces the bad artifact on disk.

Plus the store's own contract details: stable content-hash filenames
(``canonical_key_bytes``-derived, ``PYTHONHASHSEED``-independent),
atomic writes, readonly mode, ``warm_start`` preloading through the
service, and the :class:`~repro.errors.PlanStoreError` write-side
failure surface.
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest

from repro.api import ArraySpec, ExecutionOptions, Solver
from repro.errors import PlanStoreError
from repro.instrumentation import counters
from repro.iterative import ConvergenceCriteria
from repro.service import SolverService, canonical_key_bytes
from repro.store import FORMAT_VERSION, MAGIC, PlanStore
from repro.store.format import HEADER_SIZE, decode_plan, encode_plan

W = 4


def _criteria():
    return ConvergenceCriteria(atol=1e-12, max_iter=50)


def _workloads(rng):
    """(label, kind, operands, kwargs, options) per primary kind/mode."""
    n = 6
    a = rng.normal(size=(n, n))
    dominant = a + np.diag(np.abs(a).sum(axis=1) + 1.0)
    spd = dominant @ dominant.T + n * np.eye(n)
    lower = np.tril(rng.normal(size=(n, n))) + n * np.eye(n)
    int_matrix = rng.integers(-128, 128, size=(5, 7)).astype(np.int8)
    int_x = rng.integers(-128, 128, size=7).astype(np.int8)
    iter_opts = ExecutionOptions(criteria=_criteria())
    return [
        ("matvec", "matvec", (a, rng.normal(size=n)), {}, None),
        ("matmul", "matmul", (a, rng.normal(size=(n, 4))), {}, None),
        ("jacobi", "jacobi", (dominant, rng.normal(size=n)), {}, iter_opts),
        ("cg", "cg", (spd, rng.normal(size=n)), {}, iter_opts),
        ("sor", "sor", (dominant, rng.normal(size=n)), {}, iter_opts),
        ("power", "power", (spd,), {}, iter_opts),
        ("refine", "refine", (dominant, rng.normal(size=n)), {}, iter_opts),
        ("lu", "lu", (dominant,), {}, None),
        (
            "triangular", "triangular",
            (lower, rng.normal(size=n)), {"lower": True}, None,
        ),
        (
            "dense-float64", "dense",
            (a, rng.normal(size=n)), {},
            ExecutionOptions(dtype_mode="float64"),
        ),
        (
            "dense-int8", "dense",
            (int_matrix, int_x), {"x_zero_point": 3},
            ExecutionOptions(dtype_mode="int8"),
        ),
        ("relu", "relu", (rng.normal(size=n),), {}, None),
        ("bias", "bias", (rng.normal(size=n), rng.normal(size=n)), {}, None),
    ]


class TestRoundTrip:
    def test_every_kind_round_trips_bit_identically(self, tmp_path):
        """Store-restored plans replay every kind to identical bits."""
        rng = np.random.default_rng(20260808)
        workloads = _workloads(rng)
        writer = Solver(ArraySpec(W), store=PlanStore(tmp_path))
        baseline = {}
        for label, kind, operands, kwargs, options in workloads:
            solution = writer.solve(kind, *operands, options=options, **kwargs)
            baseline[label] = solution.values

        reader_store = PlanStore(tmp_path, readonly=True)
        reader = Solver(ArraySpec(W), store=reader_store)
        before = counters.snapshot()
        for label, kind, operands, kwargs, options in workloads:
            replayed = reader.solve(kind, *operands, options=options, **kwargs)
            assert np.array_equal(replayed.values, baseline[label]), (
                f"{label}: store round-trip changed the values"
            )
        delta = counters.delta(before)
        assert delta.plan_builds == 0, (
            f"{delta.plan_builds} rebuilds despite a fully-warmed store"
        )
        assert delta.plan_store_hits == len(workloads)
        assert delta.plan_store_errors == 0

    def test_filenames_are_stable_content_hashes(self, tmp_path):
        solver = Solver(ArraySpec(W), store=PlanStore(tmp_path))
        rng = np.random.default_rng(0)
        a, x = rng.normal(size=(5, 5)), rng.normal(size=5)
        solver.solve("matvec", a, x)
        store = PlanStore(tmp_path)
        (key,) = store.keys()
        # The artifact name is derived from the canonical key encoding —
        # the same bytes `stable_placement_hash` digests — so a store
        # written by any process maps keys to the same files.
        import hashlib

        expected = hashlib.blake2b(
            canonical_key_bytes(key), digest_size=16
        ).hexdigest() + ".plan"
        assert store.path_for(key).name == expected
        assert key in store and len(store) == 1

    def test_encode_decode_inverse(self, tmp_path):
        solver = Solver(ArraySpec(W))
        plan = solver.plan("matvec", shape=(5, 5))
        key, decoded = decode_plan(encode_plan(plan))
        assert key == plan.key
        assert decoded.kind == plan.kind
        assert decoded.shapes == plan.shapes
        assert decoded.options == plan.options


class TestCorruptionFuzz:
    """Seeded fuzz: no damaged artifact may crash a read path."""

    def _seed_artifact(self, tmp_path):
        solver = Solver(ArraySpec(W), store=PlanStore(tmp_path))
        rng = np.random.default_rng(1)
        a, x = rng.normal(size=(6, 6)), rng.normal(size=6)
        solver.solve("matvec", a, x)
        store = PlanStore(tmp_path)
        (key,) = store.keys()
        return store.path_for(key), key, (a, x)

    def _assert_falls_back(self, tmp_path, operands, expected_errors=1):
        """A fresh solver over the damaged store recompiles, no raise."""
        before = counters.snapshot()
        solver = Solver(ArraySpec(W), store=PlanStore(tmp_path))
        solution = solver.solve("matvec", *operands)
        delta = counters.delta(before)
        assert solution.values.shape == operands[1].shape
        assert delta.plan_builds == 1, "fallback recompile did not happen"
        assert delta.plan_store_errors >= expected_errors
        return solver

    def test_truncations_never_crash(self, tmp_path):
        path, key, operands = self._seed_artifact(tmp_path)
        blob = path.read_bytes()
        rng = random.Random(42)
        cut_points = {0, 1, HEADER_SIZE - 1, HEADER_SIZE, len(blob) - 1} | {
            rng.randrange(len(blob)) for _ in range(10)
        }
        for cut in sorted(cut_points):
            path.write_bytes(blob[:cut])
            self._assert_falls_back(tmp_path, operands)
            # The fallback's write-through healed the artifact; re-damage
            # from the pristine blob each round.
            assert path.read_bytes() == blob

    def test_bit_flips_never_crash(self, tmp_path):
        path, key, operands = self._seed_artifact(tmp_path)
        blob = bytearray(path.read_bytes())
        rng = random.Random(1337)
        for _ in range(24):
            position = rng.randrange(len(blob))
            mutated = bytearray(blob)
            mutated[position] ^= 1 << rng.randrange(8)
            path.write_bytes(bytes(mutated))
            before = counters.snapshot()
            solver = Solver(ArraySpec(W), store=PlanStore(tmp_path))
            solution = solver.solve("matvec", *operands)
            delta = counters.delta(before)
            # A header/payload flip is caught by magic/version/checksum
            # validation and recompiles; builds + store hits must account
            # for every request either way, and nothing ever raises.
            assert delta.plan_builds + delta.plan_store_hits == 1
            assert np.allclose(
                solution.values, operands[0] @ operands[1], atol=1e-9
            )

    def test_version_bump_falls_back(self, tmp_path):
        path, key, operands = self._seed_artifact(tmp_path)
        blob = bytearray(path.read_bytes())
        offset = len(MAGIC)
        blob[offset:offset + 4] = (FORMAT_VERSION + 1).to_bytes(4, "big")
        path.write_bytes(bytes(blob))
        self._assert_falls_back(tmp_path, operands)

    def test_bad_magic_falls_back(self, tmp_path):
        path, key, operands = self._seed_artifact(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[:len(MAGIC)] = b"NOTAPLAN"
        path.write_bytes(bytes(blob))
        self._assert_falls_back(tmp_path, operands)

    def test_garbage_file_falls_back(self, tmp_path):
        path, key, operands = self._seed_artifact(tmp_path)
        path.write_bytes(random.Random(7).randbytes(512))
        self._assert_falls_back(tmp_path, operands)

    def test_plans_iterator_skips_invalid_artifacts(self, tmp_path):
        path, key, operands = self._seed_artifact(tmp_path)
        (tmp_path / "junk.plan").write_bytes(b"not a plan at all")
        store = PlanStore(tmp_path)
        loaded = list(store.plans())
        assert len(loaded) == 1 and loaded[0][0] == key
        assert store.stats.errors == 1


class TestStoreSurface:
    def test_readonly_store_never_writes(self, tmp_path):
        store = PlanStore(tmp_path, readonly=True)
        solver = Solver(ArraySpec(W), store=store)
        rng = np.random.default_rng(2)
        solver.solve("matvec", rng.normal(size=(4, 4)), rng.normal(size=4))
        assert len(os.listdir(tmp_path)) == 0
        assert store.stats.writes == 0

    def test_unwritable_root_raises_plan_store_error(self, tmp_path, monkeypatch):
        # chmod is no barrier when the suite runs as root; fail the
        # atomic-replace seam itself.
        store = PlanStore(tmp_path)
        plan = Solver(ArraySpec(W)).plan("matvec", shape=(4, 4))
        monkeypatch.setattr(
            "repro.store.store.os.replace",
            lambda *_a, **_k: (_ for _ in ()).throw(OSError("disk full")),
        )
        with pytest.raises(PlanStoreError):
            store.save(plan.key, plan)
        assert store.stats.writes == 0

    def test_write_through_is_counted_not_raised_on_solve(
        self, tmp_path, monkeypatch
    ):
        """An unwritable store slows nothing and fails nothing."""
        store = PlanStore(tmp_path)
        solver = Solver(ArraySpec(W), store=store)
        monkeypatch.setattr(
            "repro.store.store.os.replace",
            lambda *_a, **_k: (_ for _ in ()).throw(OSError("disk full")),
        )
        before = counters.snapshot()
        rng = np.random.default_rng(3)
        a, x = rng.normal(size=(4, 4)), rng.normal(size=4)
        solution = solver.solve("matvec", a, x)
        assert np.allclose(solution.values, a @ x, atol=1e-9)
        assert counters.delta(before).plan_store_errors >= 1

    def test_adopt_plan_rejects_mismatched_geometry(self, tmp_path):
        plan = Solver(ArraySpec(W)).plan("matvec", shape=(4, 4))
        with pytest.raises(ValueError):
            Solver(ArraySpec(W + 1)).adopt_plan(plan)

    def test_service_warm_start_preloads_placed_shards(self, tmp_path):
        rng = np.random.default_rng(4)
        pairs = [
            (rng.normal(size=(n, n)), rng.normal(size=n)) for n in (4, 6, 9)
        ]
        service = SolverService(W, n_shards=2, store=PlanStore(tmp_path))
        for a, x in pairs:
            service.submit("matvec", a, x).result(30.0)
        expected = {a.shape for a, _x in pairs}
        service.close()

        cold = SolverService(W, n_shards=2, store=PlanStore(tmp_path))
        try:
            # warm_start ran in the constructor; replaying builds nothing.
            before = counters.snapshot()
            for a, x in pairs:
                result = cold.submit("matvec", a, x).result(30.0)
                assert np.allclose(result.values, a @ x, atol=1e-9)
            assert counters.delta(before).plan_builds == 0
            assert len(expected) == 3
        finally:
            cold.close()

    def test_warm_start_skips_foreign_geometry(self, tmp_path):
        rng = np.random.default_rng(5)
        a, x = rng.normal(size=(5, 5)), rng.normal(size=5)
        service = SolverService(W, n_shards=1, store=PlanStore(tmp_path))
        service.submit("matvec", a, x).result(30.0)
        service.close()
        other = SolverService(
            W + 2, n_shards=1, store=PlanStore(tmp_path, readonly=True)
        )
        try:
            assert other.warm_start() == 0
        finally:
            other.close()

    def test_clear_empties_the_store(self, tmp_path):
        store = PlanStore(tmp_path)
        solver = Solver(ArraySpec(W), store=store)
        rng = np.random.default_rng(6)
        solver.solve("matvec", rng.normal(size=(4, 4)), rng.normal(size=4))
        assert len(store) == 1
        store.clear()
        assert len(store) == 0 and list(store.plans()) == []
