"""Service-level tests for iterative workloads: warm shards, exact telemetry.

The headline: an 8-thread soak pushing mixed iterative + direct requests
through 4 shards performs **zero plan recompiles after warmup** — every
plan (the façade-level engines *and* the sweeps' inner per-shape plans)
compiles during a warmup pass and stays resident on its home shard — and
every concurrent result is bit-identical to a single-threaded solve.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import List, Tuple

import numpy as np
import pytest

from repro.api import ArraySpec, Solver
from repro.instrumentation import counters
from repro.service import SolverService

W = 4
N_SHARDS = 4
N_CLIENTS = 8
REQUESTS_PER_CLIENT = 25


def spd_dominant(rng: np.random.Generator, n: int) -> np.ndarray:
    a = rng.normal(size=(n, n))
    matrix = (a + a.T) / 2.0
    matrix += (np.abs(matrix).sum(axis=1).max() + 1.0) * np.eye(n)
    return matrix


def mixed_problems(rng: np.random.Generator) -> List[Tuple[str, Tuple]]:
    """Mixed iterative + direct request set (square systems share shapes)."""
    a8, a10 = spd_dominant(rng, 8), spd_dominant(rng, 10)
    return [
        ("jacobi", (a8, rng.normal(size=8))),
        ("cg", (a10, rng.normal(size=10))),
        ("sor", (a8, rng.normal(size=8))),
        ("refine", (a10, rng.normal(size=10))),
        ("gauss_seidel", (a8, rng.normal(size=8))),
        ("matvec", (rng.normal(size=(12, 9)), rng.normal(size=9))),
        ("matmul", (rng.normal(size=(6, 6)), rng.normal(size=(6, 6)))),
    ]


class TestIterativeServiceSoak:
    def test_soak_zero_recompiles_after_warmup_bit_identical(self, rng):
        problems = mixed_problems(rng)
        reference = Solver(ArraySpec(W))
        expected = [
            reference.solve(kind, *operands).values for kind, operands in problems
        ]

        service = SolverService(
            ArraySpec(W),
            n_shards=N_SHARDS,
            backpressure="block",
            queue_depth=16,
            max_batch_delay=0.001,
        )
        futures: "list[list[Future]]" = [[] for _ in range(N_CLIENTS)]
        errors: "list[BaseException]" = []
        try:
            # Warmup: one request per distinct plan key compiles every
            # façade-level engine and, by running a full solve, every
            # inner per-shape sweep plan on its home shard.
            for kind, operands in problems:
                service.solve(kind, *operands)
            warm = service.stats()
            assert warm.cache.misses == len(problems)

            before = counters.snapshot()

            def client(client_id: int) -> None:
                try:
                    for i in range(REQUESTS_PER_CLIENT):
                        kind, operands = problems[(client_id + i) % len(problems)]
                        futures[client_id].append(service.submit(kind, *operands))
                except BaseException as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(client_id,))
                for client_id in range(N_CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert errors == []

            total = 0
            for client_id, client_futures in enumerate(futures):
                assert len(client_futures) == REQUESTS_PER_CLIENT
                for i, future in enumerate(client_futures):
                    solution = future.result(timeout=120)
                    index = (client_id + i) % len(problems)
                    value, want = solution.values, expected[index]
                    if isinstance(want, tuple):  # lu-style multi-part values
                        assert all(np.array_equal(v, w) for v, w in zip(value, want))
                    else:
                        assert np.array_equal(value, want)
                    total += 1
            assert total == N_CLIENTS * REQUESTS_PER_CLIENT
        finally:
            service.close()

        stats = service.stats()
        assert stats.completed == total + len(problems)
        assert stats.failed == stats.rejected == stats.shed == stats.expired == 0
        # Zero recompiles after warmup, at both cache levels: no new
        # misses in any shard's plan cache, and no plan builds anywhere
        # (counters only move on misses, so zero stays exact even though
        # the increments themselves are lock-free).
        assert stats.cache.misses == warm.cache.misses
        assert counters.delta(before).plan_builds == 0

    def test_iteration_telemetry_per_kind(self, rng):
        a = spd_dominant(rng, 8)
        b = rng.normal(size=8)
        with SolverService(ArraySpec(W), n_shards=2) as service:
            jacobi = service.solve("jacobi", a, b)
            cg = service.solve("cg", a, b)
            service.solve("matvec", rng.normal(size=(6, 6)), rng.normal(size=6))
            stats = service.stats()
            assert stats.iterations_by_kind["jacobi"] == jacobi.stats["iterations"]
            assert stats.iterations_by_kind["cg"] == cg.stats["iterations"]
            assert "matvec" not in stats.iterations_by_kind
            assert sum(
                shard.iterations_by_kind.get("jacobi", 0) for shard in stats.shards
            ) == jacobi.stats["iterations"]
            described = stats.describe()
            assert "iterations:" in described and "jacobi=" in described

    def test_iterative_kwargs_flow_through_service(self, rng):
        a = spd_dominant(rng, 6)
        b = rng.normal(size=6)
        exact = np.linalg.solve(a, b)
        with SolverService(ArraySpec(W), n_shards=2) as service:
            solution = service.solve("jacobi", a, b, x0=exact)
            assert solution.stats["iterations"] == 1
            assert solution.stats["converged"]

    def test_iterative_errors_stay_with_the_request(self, rng):
        from repro.errors import ConvergenceError

        diverging = np.array([[1.0, 3.0], [3.0, 1.0]])
        healthy = spd_dominant(rng, 6)
        b6 = rng.normal(size=6)
        with SolverService(ArraySpec(W), n_shards=2) as service:
            bad = service.submit("jacobi", diverging, np.ones(2))
            good = service.submit("jacobi", healthy, b6)
            with pytest.raises(ConvergenceError):
                bad.result(timeout=60)
            assert np.allclose(
                good.result(timeout=60).values, np.linalg.solve(healthy, b6), atol=1e-8
            )
